//! §VI-C robustness: what happens when profiles are uninformative, and
//! when the homogeneity check detects mixed clusters.

use metam::core::engine::SearchInputs;
use metam::core::task::LinearSyntheticTask;
use metam::profile::synthetic::FixedProfile;
use metam::profile::ProfileSet;
use metam::Session;
use metam::{Metam, MetamConfig, StopReason};
use metam_datagen::supervised::{build_supervised, SupervisedConfig};
use metam_discovery::path::PathConfig;
use metam_discovery::{generate_candidates, DiscoveryIndex, Materializer};
use metam_table::{Column, Table};
use std::sync::Arc;

/// "What if all profiles are uninformative?" — Metam still finds the
/// optimal augmentation set; only the query bill grows toward Uniform's.
#[test]
fn all_uninformative_profiles_still_find_solution() {
    let scenario = build_supervised(&SupervisedConfig {
        seed: 41,
        n_rows: 300,
        n_informative: 1,
        n_duplicates: 0,
        n_irrelevant_tables: 6,
        n_erroneous_tables: 3,
        ..Default::default()
    });
    let mut noise_only = ProfileSet::new();
    for u in 0..5 {
        noise_only.push(Box::new(FixedProfile::uninformative(
            format!("noise_{u}"),
            10_000,
            41 ^ u,
        )));
    }
    let prepared = Session::from_scenario(scenario)
        .profiles(noise_only)
        .seed(41)
        .prepare()
        .expect("prepare");
    let relevance = prepared.relevance.clone().expect("scenarios carry truth");
    let result = Metam::new(MetamConfig {
        max_queries: 250,
        seed: 41,
        ..Default::default()
    })
    .run(&prepared.inputs());
    assert!(
        result.utility > result.base_utility + 0.05,
        "{} → {}",
        result.base_utility,
        result.utility
    );
    assert!(
        result.selected.iter().any(|&id| relevance[id] > 0.0),
        "the planted signal must still be found"
    );
}

/// Homogeneity checking: when profiles lie (dissimilar utilities inside one
/// cluster), the log|C|-sample test notices and the search falls back to
/// singleton clusters — and still succeeds.
#[test]
fn homogeneity_check_survives_lying_profiles() {
    // Candidates over a toy repository; synthetic task where candidate 3 is
    // the only useful one.
    let rows = 25;
    let din = Table::from_columns(
        "din",
        vec![Column::from_strings(
            Some("k".into()),
            (0..rows).map(|i| Some(format!("k{i}"))).collect(),
        )],
    )
    .unwrap();
    let n = 10;
    let mut tables = Vec::new();
    for t in 0..n {
        tables.push(Arc::new(
            Table::from_columns(
                format!("t{t}"),
                vec![
                    Column::from_strings(
                        Some("key".into()),
                        (0..rows).map(|i| Some(format!("k{i}"))).collect(),
                    ),
                    Column::from_floats(
                        Some(format!("v{t}")),
                        (0..rows).map(|i| Some(i as f64)).collect(),
                    ),
                ],
            )
            .unwrap(),
        ));
    }
    let index = DiscoveryIndex::build(tables.clone());
    let cfg = PathConfig {
        max_hops: 1,
        ..Default::default()
    };
    let candidates = generate_candidates(&din, &index, &cfg, 100);
    let materializer = Materializer::new(tables);

    let mut weights = vec![0.0; candidates.len()];
    weights[3] = 0.5;
    let task = LinearSyntheticTask { base: 0.3, weights };
    // All candidates share one profile vector — a maximally lying cluster:
    // identical profiles, very different utilities.
    let profiles = vec![vec![0.5, 0.5]; candidates.len()];
    let names = vec!["a".to_string(), "b".to_string()];
    let inputs = SearchInputs {
        din: &din,
        target_column: None,
        candidates: &candidates,
        profiles: &profiles,
        profile_names: &names,
        materializer: &materializer,
        task: &task,
        threads: 1,
    };
    let result = Metam::new(MetamConfig {
        theta: Some(0.75),
        max_queries: 300,
        check_homogeneity: true,
        seed: 9,
        ..Default::default()
    })
    .run(&inputs);
    assert_eq!(
        result.stop_reason,
        StopReason::ThetaReached,
        "u={}",
        result.utility
    );
    assert_eq!(result.selected, vec![3]);
}

/// With honest clusters, the homogeneity probe passes and costs only the
/// log|C| sampling queries.
#[test]
fn homogeneity_check_cheap_when_clusters_honest() {
    let scenario = build_supervised(&SupervisedConfig {
        seed: 43,
        n_rows: 250,
        n_informative: 1,
        n_duplicates: 1,
        n_irrelevant_tables: 5,
        n_erroneous_tables: 2,
        ..Default::default()
    });
    let prepared = metam::Session::from_scenario(scenario)
        .seed(43)
        .prepare()
        .expect("prepare");
    let with_check = Metam::new(MetamConfig {
        max_queries: 200,
        check_homogeneity: true,
        seed: 43,
        ..Default::default()
    })
    .run(&prepared.inputs());
    let without_check = Metam::new(MetamConfig {
        max_queries: 200,
        check_homogeneity: false,
        seed: 43,
        ..Default::default()
    })
    .run(&prepared.inputs());
    // Both must reach comparable utility; the probe is an overhead, not a
    // quality change.
    assert!(
        (with_check.utility - without_check.utility).abs() < 0.1,
        "with={} without={}",
        with_check.utility,
        without_check.utility
    );
}
