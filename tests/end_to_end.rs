//! Cross-crate integration tests: the full pipeline on generated
//! scenarios, checking the paper's headline claims at test scale.

use metam::Session;
use metam::{run_method, Metam, MetamConfig, Method, StopReason};
use metam_datagen::supervised::{build_supervised, SupervisedConfig};

fn small_classification(seed: u64) -> metam::datagen::Scenario {
    build_supervised(&SupervisedConfig {
        seed,
        n_rows: 350,
        n_informative: 2,
        n_duplicates: 1,
        n_irrelevant_tables: 8,
        n_erroneous_tables: 6,
        n_redundant_tables: 4,
        ..Default::default()
    })
}

#[test]
fn metam_improves_utility_end_to_end() {
    let prepared = Session::from_scenario(small_classification(1))
        .seed(1)
        .prepare()
        .expect("prepare");
    let result = Metam::new(MetamConfig {
        max_queries: 120,
        seed: 1,
        ..Default::default()
    })
    .run(&prepared.inputs());
    assert!(
        result.utility > result.base_utility + 0.05,
        "expected a real lift: {} → {}",
        result.base_utility,
        result.utility
    );
    assert!(!result.selected.is_empty());
}

#[test]
fn metam_finds_planted_augmentations() {
    let prepared = Session::from_scenario(small_classification(2))
        .seed(2)
        .prepare()
        .expect("prepare");
    let relevance = prepared.relevance.clone().expect("scenarios carry truth");
    let result = Metam::new(MetamConfig {
        max_queries: 150,
        seed: 2,
        ..Default::default()
    })
    .run(&prepared.inputs());
    // At least one selected augmentation must be planted ground truth.
    assert!(
        result.selected.iter().any(|&id| relevance[id] > 0.0),
        "selected {:?} are all junk",
        result
            .selected
            .iter()
            .map(|&id| prepared.candidates[id].name.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn p1_solutions_are_small() {
    // Property P1: k ≪ n. With ~60 candidates the solution stays tiny.
    let prepared = Session::from_scenario(small_classification(3))
        .seed(3)
        .prepare()
        .expect("prepare");
    let n = prepared.candidates.len();
    assert!(n > 30, "scenario should have many candidates, got {n}");
    let result = Metam::new(MetamConfig {
        max_queries: 150,
        seed: 3,
        ..Default::default()
    })
    .run(&prepared.inputs());
    assert!(
        result.selected.len() <= 6,
        "solution should be small (P1): {} of {n}",
        result.selected.len()
    );
}

#[test]
fn all_methods_produce_valid_traces() {
    let prepared = Session::from_scenario(small_classification(4))
        .seed(4)
        .prepare()
        .expect("prepare");
    let methods = [
        Method::Metam(MetamConfig {
            seed: 4,
            ..Default::default()
        }),
        Method::Uniform { seed: 4 },
        Method::Overlap,
        Method::Mw { seed: 4 },
        Method::IArda {
            classification: true,
            seed: 4,
        },
        Method::JoinAll,
    ];
    for m in &methods {
        let r = run_method(m, &prepared.inputs(), None, 40);
        assert!(r.queries <= 40, "{}: {}", r.method, r.queries);
        assert!(
            r.trace
                .windows(2)
                .all(|w| w[0].utility <= w[1].utility + 1e-12),
            "{}: trace must be nondecreasing",
            r.method
        );
        assert!(
            (0.0..=1.0).contains(&r.utility),
            "{}: {}",
            r.method,
            r.utility
        );
    }
}

#[test]
fn runs_are_reproducible() {
    let prepared_a = Session::from_scenario(small_classification(5))
        .seed(5)
        .prepare()
        .expect("prepare");
    let prepared_b = Session::from_scenario(small_classification(5))
        .seed(5)
        .prepare()
        .expect("prepare");
    let cfg = MetamConfig {
        max_queries: 80,
        seed: 5,
        ..Default::default()
    };
    let a = Metam::new(cfg.clone()).run(&prepared_a.inputs());
    let b = Metam::new(cfg).run(&prepared_b.inputs());
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.queries, b.queries);
    assert_eq!(a.utility, b.utility);
}

#[test]
fn theta_run_is_minimal() {
    // Definition 6: removing any element of the returned set must break θ.
    let prepared = Session::from_scenario(small_classification(6))
        .seed(6)
        .prepare()
        .expect("prepare");
    let theta = 0.70;
    let result = Metam::new(MetamConfig {
        theta: Some(theta),
        max_queries: 200,
        seed: 6,
        ..Default::default()
    })
    .run(&prepared.inputs());
    if result.stop_reason == StopReason::ThetaReached {
        let inputs = prepared.inputs();
        let mut engine = metam::core::engine::QueryEngine::new(&inputs, usize::MAX);
        let full: std::collections::BTreeSet<usize> = result.selected.iter().copied().collect();
        assert!(engine.utility_of(&full).unwrap() >= theta);
        for &id in &result.selected {
            let mut without = full.clone();
            without.remove(&id);
            assert!(
                engine.utility_of(&without).unwrap() < theta,
                "solution not minimal: {id} is removable"
            );
        }
    }
}
