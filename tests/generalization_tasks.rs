//! §VI-A.4 generalization: entity linking, fair classification and
//! clustering, end to end through the full pipeline.

use metam::Session;
use metam::{run_method, Metam, MetamConfig, Method, StopReason};

#[test]
fn entity_linking_found_in_few_queries() {
    let scenario =
        metam::datagen::linking::build_linking(&metam::datagen::linking::LinkingConfig {
            seed: 21,
            n_irrelevant_tables: 30,
            ..Default::default()
        });
    let prepared = Session::from_scenario(scenario)
        .seed(21)
        .prepare()
        .expect("prepare");
    let relevance = prepared.relevance.clone().expect("scenarios carry truth");
    let result = Metam::new(MetamConfig {
        theta: Some(0.95),
        max_queries: 120,
        seed: 21,
        ..Default::default()
    })
    .run(&prepared.inputs());
    assert_eq!(
        result.stop_reason,
        StopReason::ThetaReached,
        "u={}",
        result.utility
    );
    assert!(result.utility > 0.95);
    assert!(
        result.selected.iter().any(|&id| relevance[id] > 0.0),
        "the state column must be selected"
    );
    // The paper reports a handful of queries; leave generous slack for the
    // smaller candidate pool here.
    assert!(result.queries <= 80, "queries={}", result.queries);
}

#[test]
fn fair_classification_prefers_fair_useful_feature() {
    let scenario =
        metam::datagen::fairness::build_fairness(&metam::datagen::fairness::FairnessConfig {
            seed: 22,
            ..Default::default()
        });
    let prepared = Session::from_scenario(scenario)
        .seed(22)
        .prepare()
        .expect("prepare");
    let relevance = prepared.relevance.clone().expect("scenarios carry truth");
    let result = Metam::new(MetamConfig {
        max_queries: 80,
        seed: 22,
        ..Default::default()
    })
    .run(&prepared.inputs());
    assert!(
        result.utility > result.base_utility + 0.04,
        "{} → {}",
        result.base_utility,
        result.utility
    );
    assert!(
        result.selected.iter().any(|&id| relevance[id] > 0.0),
        "a fair+useful employment feature must be selected: {:?}",
        result
            .selected
            .iter()
            .map(|&i| prepared.candidates[i].name.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn clustering_finds_oni_quickly() {
    let scenario = metam::datagen::clustering::build_clustering(
        &metam::datagen::clustering::ClusteringConfig {
            seed: 23,
            ..Default::default()
        },
    );
    let prepared = Session::from_scenario(scenario)
        .seed(23)
        .prepare()
        .expect("prepare");
    assert!(prepared.candidates.len() >= 8, "paper: 8 candidates");
    let result = Metam::new(MetamConfig {
        theta: Some(0.9),
        max_queries: 40,
        seed: 23,
        ..Default::default()
    })
    .run(&prepared.inputs());
    assert_eq!(
        result.stop_reason,
        StopReason::ThetaReached,
        "u={}",
        result.utility
    );
    assert!(
        result.queries <= 25,
        "small candidate set ⇒ few queries: {}",
        result.queries
    );
}

#[test]
fn unions_task_improves_with_good_batches() {
    let scenario = metam::datagen::unions::build_unions(&metam::datagen::unions::UnionsConfig {
        seed: 24,
        ..Default::default()
    });
    let prepared = Session::from_scenario(scenario)
        .seed(24)
        .prepare()
        .expect("prepare");
    let relevance = prepared.relevance.clone().expect("scenarios carry truth");
    let result = run_method(
        &Method::Metam(MetamConfig {
            seed: 24,
            ..Default::default()
        }),
        &prepared.inputs(),
        None,
        60,
    );
    assert!(
        result.utility >= result.base_utility,
        "{} → {}",
        result.base_utility,
        result.utility
    );
    // If anything was selected, the good batches must dominate.
    if !result.selected.is_empty() {
        let good = result
            .selected
            .iter()
            .filter(|&&id| relevance[id] > 0.0)
            .count();
        assert!(
            good * 2 >= result.selected.len(),
            "mostly good batches expected: {good}/{}",
            result.selected.len()
        );
    }
}
