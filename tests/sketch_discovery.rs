//! Sketch-backed discovery end to end: persisted `.mks` records must be
//! a lossless stand-in for the tables they summarize.
//!
//! The contract under test — candidate generation from persisted catalog
//! sketches is **indistinguishable** from candidate generation over loaded
//! tables: byte-identical record round trips, version bumps and corruption
//! demote to re-profiling (which heals the record in place), and the
//! candidate set on a real fixture matches the in-memory path exactly.

use std::path::PathBuf;
use std::sync::Arc;

use metam::core::{assemble, AssembleOptions, Repository};
use metam::lake::prepare::{repository_descriptors, repository_tables};
use metam::lake::{export_scenario, parse_task, sketch, LakeCatalog};
use metam::profile::default_profiles;
use metam::Session;
use metam_datagen::causal_scenario::{build_causal, CausalConfig, CausalKind};
use metam_datagen::Scenario;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metam-sketch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The causal how-to fixture shared with `causal_end_to_end.rs` /
/// `observability.rs` — a realistic lake with planted relevant, erroneous,
/// and confounder tables.
fn howto_scenario() -> Scenario {
    build_causal(&CausalConfig {
        seed: 32,
        kind: CausalKind::HowTo,
        n_irrelevant_tables: 20,
        n_erroneous_tables: 6,
        n_confounder_tables: 8,
        ..Default::default()
    })
}

#[test]
fn persisted_records_roundtrip_bit_identically_through_disk() {
    // Record-level contract via the public API: scan writes one `.mks`
    // per file, and decoding it yields the exact sketch computed from the
    // loaded table — same slots, cardinalities, nulls, ranges.
    let dir = tmp_dir("roundtrip");
    let scenario = howto_scenario();
    export_scenario(&scenario, &dir).expect("export");
    let catalog = LakeCatalog::scan(&dir).expect("scan");

    for entry in catalog.entries() {
        let from_disk = sketch::load(&dir, entry).expect("record exists and validates");
        let table = catalog.load_table(&entry.name).expect("load");
        let from_table = sketch::TableSketch::from_table(&table);
        assert_eq!(
            from_disk, from_table,
            "persisted sketch for {} must equal the freshly computed one",
            entry.name
        );
        // And the encode→decode cycle is bit-stable: re-encoding what we
        // decoded reproduces the on-disk bytes exactly.
        let path = sketch::sketch_path(&dir, &entry.file_name);
        let bytes = std::fs::read(&path).expect("read record");
        let (fp, decoded) = sketch::decode(&bytes).expect("decode");
        assert_eq!(sketch::encode(fp, &decoded), bytes, "{}", entry.name);
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_bump_invalidates_and_rescan_heals() {
    let dir = tmp_dir("version");
    let scenario = howto_scenario();
    export_scenario(&scenario, &dir).expect("export");
    let first = LakeCatalog::scan(&dir).expect("scan");
    assert_eq!(first.sketch_misses(), first.len(), "cold lake writes all");

    // Forge a future-version record with a *valid* checksum: bump the
    // version field, then re-seal. Freshness must reject it on version
    // alone — a newer writer's records are not readable by this build.
    let entry = first.get("din").expect("din entry");
    let path = sketch::sketch_path(&dir, &entry.file_name);
    let mut bytes = std::fs::read(&path).expect("read record");
    let bumped = (sketch::SKETCH_VERSION + 1).to_le_bytes();
    bytes[4..8].copy_from_slice(&bumped);
    let body_len = bytes.len() - 8;
    let seal = sketch::checksum(&bytes[..body_len]).to_le_bytes();
    bytes[body_len..].copy_from_slice(&seal);
    std::fs::write(&path, &bytes).expect("write forged record");
    assert!(
        sketch::load(&dir, entry).is_none(),
        "future version rejected"
    );

    // Re-scan: the one demoted file re-profiles and heals its record back
    // to the current version; everything else stays a sketch hit.
    let second = LakeCatalog::scan(&dir).expect("rescan");
    assert_eq!(second.sketch_misses(), 1, "only the forged record demotes");
    assert_eq!(second.sketch_hits(), second.len() - 1);
    let healed = std::fs::read(&path).expect("read healed record");
    assert_eq!(
        u32::from_le_bytes(healed[4..8].try_into().expect("4 bytes")),
        sketch::SKETCH_VERSION,
        "healed record is written at the current version"
    );
    assert!(
        sketch::load(&dir, entry).is_some(),
        "record validates again"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_record_self_heals_during_prepare() {
    // A record that rots *after* scan (so the manifest still trusts it)
    // must not poison prepare: `sketch_descriptors` falls back to the
    // table payload for that one file, produces the same descriptor, and
    // rewrites the record in place.
    let dir = tmp_dir("heal");
    let scenario = howto_scenario();
    export_scenario(&scenario, &dir).expect("export");
    LakeCatalog::scan(&dir).expect("warm scan");

    let catalog = LakeCatalog::scan(&dir).expect("scan");
    let n_tables = catalog.len();
    let victim = catalog
        .entries()
        .iter()
        .find(|e| e.name != "din")
        .expect("repository table")
        .clone();
    let path = sketch::sketch_path(&dir, &victim.file_name);
    let mut bytes = std::fs::read(&path).expect("read record");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("corrupt record");

    let sketch_counters = catalog.sketch_load_counters();
    let prepared = Session::from_catalog(catalog)
        .din("din")
        .task_spec("regression:critical_reading")
        .seed(32)
        .prepare()
        .expect("prepare");
    assert!(!prepared.candidates.is_empty());
    assert_eq!(
        sketch_counters.hits(),
        n_tables - 2,
        "every record but the corrupt one serves its descriptor"
    );
    assert_eq!(sketch_counters.misses(), 1, "one table-load fallback");

    // The fallback healed the record on disk: it validates again and
    // matches the sketch of the table it summarizes.
    let healed = sketch::load(&dir, &victim).expect("healed record validates");
    let catalog = LakeCatalog::scan(&dir).expect("rescan");
    assert_eq!(catalog.sketch_hits(), catalog.len(), "no demotions left");
    let table = catalog.load_table(&victim.name).expect("load");
    assert_eq!(healed, sketch::TableSketch::from_table(&table));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sketch_backed_candidates_match_in_memory_build_on_howto_fixture() {
    // Lake-wide parity on the causal how-to fixture: preparing from
    // persisted sketches (descriptors + lazy provider) yields a candidate
    // set **byte-identical** to `DiscoveryIndex::build` over eagerly
    // loaded tables — same candidates, same order, same join paths.
    let dir = tmp_dir("parity");
    let scenario = howto_scenario();
    export_scenario(&scenario, &dir).expect("export");
    let catalog = Arc::new(LakeCatalog::scan(&dir).expect("scan"));

    let options = AssembleOptions {
        seed: 32,
        ..Default::default()
    };
    let task = || parse_task("regression:critical_reading", 32).expect("task");

    let din = catalog.load_table("din").expect("din");
    let target_column = din.column_index("critical_reading").ok();
    let tables = repository_tables(&catalog, &din, None).expect("tables");
    let eager = assemble(
        din,
        tables,
        target_column,
        task().task,
        &default_profiles(),
        &options,
    );

    let din = catalog.load_table("din").expect("din");
    let (descriptors, provider) = repository_descriptors(&catalog, &din, None).expect("sketches");
    let lazy = assemble(
        din,
        Repository::Deferred {
            descriptors,
            provider: Box::new(provider),
        },
        target_column,
        task().task,
        &default_profiles(),
        &options,
    );

    assert!(
        !eager.candidates.is_empty(),
        "fixture must yield candidates"
    );
    assert_eq!(
        eager.candidates, lazy.candidates,
        "sketch-backed candidate set must be identical to the in-memory build"
    );
    assert_eq!(
        eager.profiles, lazy.profiles,
        "profile vectors must be identical too"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
