//! Property-based tests over the core invariants, with random utilities
//! and profile vectors.

use std::collections::BTreeSet;

use metam::core::cluster::cluster_partition;
use metam::core::engine::{QueryEngine, SearchInputs};
use metam::core::minimal::identify_minimal;
use metam::core::task::{LinearSyntheticTask, NonMonotoneTask};
use metam::core::trace::{resample, utility_at, TracePoint};
use metam::{Metam, MetamConfig};
use metam_discovery::path::PathConfig;
use metam_discovery::{generate_candidates, DiscoveryIndex, Materializer};
use metam_table::{Column, Table};
use proptest::prelude::*;
use std::sync::Arc;

fn fixture(n: usize) -> (Table, Vec<metam_discovery::Candidate>, Materializer) {
    let rows = 20;
    let din = Table::from_columns(
        "din",
        vec![Column::from_strings(
            Some("k".into()),
            (0..rows).map(|i| Some(format!("k{i}"))).collect(),
        )],
    )
    .unwrap();
    let mut tables = Vec::new();
    for t in 0..n {
        tables.push(Arc::new(
            Table::from_columns(
                format!("t{t}"),
                vec![
                    Column::from_strings(
                        Some("key".into()),
                        (0..rows).map(|i| Some(format!("k{i}"))).collect(),
                    ),
                    Column::from_floats(
                        Some(format!("v{t}")),
                        (0..rows).map(|i| Some(i as f64)).collect(),
                    ),
                ],
            )
            .unwrap(),
        ));
    }
    let index = DiscoveryIndex::build(tables.clone());
    let cfg = PathConfig {
        max_hops: 1,
        ..Default::default()
    };
    let candidates = generate_candidates(&din, &index, &cfg, 10 * n.max(1));
    (din, candidates, Materializer::new(tables))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The ε-cover invariant (Algorithm 2): every point is within ε of its
    /// center, for arbitrary profile vectors.
    #[test]
    fn cluster_radius_never_exceeds_epsilon(
        profiles in prop::collection::vec(
            prop::collection::vec(0.0f64..1.0, 3), 1..80),
        eps in 0.01f64..0.5,
        seed: u64,
    ) {
        let clustering = cluster_partition(&profiles, eps, seed);
        prop_assert!(clustering.radius() <= eps + 1e-9);
        // And it is a partition.
        let mut all: Vec<usize> = clustering.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..profiles.len()).collect::<Vec<_>>());
    }

    /// Metam's reported utility always matches re-evaluating its selected
    /// set, and never falls below the base utility.
    #[test]
    fn reported_utility_is_consistent(
        weights in prop::collection::vec(0.0f64..0.2, 6),
        seed in 0u64..50,
    ) {
        let (din, candidates, mat) = fixture(6);
        let task = LinearSyntheticTask { base: 0.3, weights: weights.clone() };
        let profiles: Vec<Vec<f64>> = (0..candidates.len())
            .map(|i| vec![(i % 5) as f64 / 5.0])
            .collect();
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let result = Metam::new(MetamConfig {
            max_queries: 200, seed, ..Default::default()
        }).run(&inputs);
        prop_assert!(result.utility >= result.base_utility - 1e-12);
        let mut engine = QueryEngine::new(&inputs, usize::MAX);
        let set: BTreeSet<usize> = result.selected.iter().copied().collect();
        let recheck = engine.utility_of(&set).unwrap();
        prop_assert!((recheck - result.utility).abs() < 1e-9,
            "reported {} vs recheck {}", result.utility, recheck);
    }

    /// IDENTIFY-MINIMAL postcondition, for random additive utilities:
    /// the result keeps θ and no element is removable.
    #[test]
    fn identify_minimal_is_minimal(
        weights in prop::collection::vec(0.0f64..0.3, 5),
        theta_frac in 0.2f64..0.9,
    ) {
        let (din, candidates, mat) = fixture(5);
        let task = LinearSyntheticTask { base: 0.1, weights: weights.clone() };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, usize::MAX);
        let full: BTreeSet<usize> = (0..candidates.len()).collect();
        let full_u = engine.utility_of(&full).unwrap();
        let theta = 0.1 + theta_frac * (full_u - 0.1);
        let minimal = identify_minimal(&mut engine, &full, theta);
        prop_assert!(engine.utility_of(&minimal).unwrap() >= theta - 1e-12);
        for &id in &minimal {
            let mut without = minimal.clone();
            without.remove(&id);
            prop_assert!(engine.utility_of(&without).unwrap() < theta);
        }
    }

    /// Certification invariant under arbitrary (possibly harmful) deltas.
    #[test]
    fn certified_extension_never_decreases(
        deltas in prop::collection::vec(-0.3f64..0.3, 6),
    ) {
        let (din, candidates, mat) = fixture(6);
        let task = NonMonotoneTask { base: 0.5, deltas };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, usize::MAX);
        let base: BTreeSet<usize> = BTreeSet::new();
        let base_u = engine.utility_of(&base).unwrap();
        for c in 0..candidates.len() {
            let (eff, _, _) = engine.utility_extend(&base, c, true).unwrap();
            prop_assert!(eff >= base_u - 1e-12);
        }
    }

    /// Trace resampling is consistent with pointwise lookup.
    #[test]
    fn resample_matches_utility_at(
        utilities in prop::collection::vec(0.0f64..1.0, 1..30),
        budget in 1usize..100,
    ) {
        let trace: Vec<TracePoint> = utilities
            .iter()
            .enumerate()
            .scan(0.0f64, |best, (i, &u)| {
                *best = best.max(u);
                Some(TracePoint { queries: i + 1, utility: *best })
            })
            .collect();
        let grid: Vec<usize> = (0..=budget).step_by(7.max(budget / 5)).collect();
        let sampled = resample(&trace, &grid);
        for (q, u) in sampled {
            prop_assert_eq!(u, utility_at(&trace, q));
        }
    }
}
