//! End-to-end protocol tests for the `metam serve` daemon.
//!
//! Everything here talks to a real bound TCP socket. The session-backed
//! tests start daemons through `metam::serve::start` — the exact path the
//! CLI takes — and assert the ISSUE acceptance bar: concurrent `discover`
//! replies bit-identical to in-process sessions, typed rejections beyond
//! the admission ceiling, graceful drain ordering, and a connection that
//! survives every malformed line we can throw at it. The admission and
//! drain tests substitute a gated stub handler via `metam_serve::bind` so
//! they can hold requests in-flight deterministically.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use metam::lake::{export_scenario, LakeCatalog};
use metam::obs::json::{self, Value};
use metam::serve::{DiscoverOutput, LakeRegistry, ServeConfig};
use metam::session::Session;
use metam::{MetamConfig, Method};
use metam_datagen::supervised::{build_supervised, SupervisedConfig};
use metam_datagen::Scenario;

/// Tests that run real sessions (and therefore flush the process-global
/// `lake.load.*` metrics registry) serialize on this lock so the counter
/// regression test sees only its own deltas.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock_serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(PoisonError::into_inner)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metam-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_scenario(seed: u64) -> Scenario {
    build_supervised(&SupervisedConfig {
        seed,
        n_rows: 240,
        n_informative: 2,
        n_duplicates: 1,
        n_irrelevant_tables: 4,
        n_erroneous_tables: 2,
        n_redundant_tables: 1,
        classification: true,
        ..Default::default()
    })
}

fn demo_lake(tag: &str, seed: u64) -> PathBuf {
    let dir = tmp_dir(tag);
    export_scenario(&small_scenario(seed), &dir).expect("export scenario as a lake");
    dir
}

/// One NDJSON client connection: write a request line, read a reply line.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client {
            reader,
            writer: stream,
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("send request bytes");
        self.writer.flush().expect("flush request");
    }

    fn read_reply(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply line");
        assert!(
            reply.ends_with('\n'),
            "replies are newline-terminated lines, got {reply:?}"
        );
        reply.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        assert!(!line.contains('\n'));
        self.send_raw(format!("{line}\n").as_bytes());
        self.read_reply()
    }
}

fn one_shot(addr: SocketAddr, line: &str) -> String {
    Client::connect(addr).roundtrip(line)
}

fn parse_reply(reply: &str) -> Value {
    json::parse(reply).unwrap_or_else(|e| panic!("reply must be valid JSON ({e}): {reply}"))
}

fn as_arr(v: &Value) -> &[Value] {
    match v {
        Value::Arr(items) => items,
        other => panic!("expected a JSON array, got {other:?}"),
    }
}

/// Assert a `"ok":false` reply and return its typed `error` kind label.
fn error_kind(reply: &str) -> String {
    let v = parse_reply(reply);
    assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "reply: {reply}");
    v.get("error")
        .and_then(Value::as_str)
        .unwrap_or_else(|| panic!("error replies carry a kind: {reply}"))
        .to_string()
}

fn assert_ok(reply: &str) -> Value {
    let v = parse_reply(reply);
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "reply: {reply}");
    v
}

fn status_field(addr: SocketAddr, field: &str) -> f64 {
    let v = assert_ok(&one_shot(addr, "{\"verb\":\"status\"}"));
    v.get(field)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("status reply has numeric {field:?}"))
}

/// Poll `status` until `pred` holds (the daemon's queue state is only
/// observable through the wire, so tests wait on it like a client would).
fn wait_for_status(addr: SocketAddr, what: &str, pred: impl Fn(&Value) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let v = assert_ok(&one_shot(addr, "{\"verb\":\"status\"}"));
        if pred(&v) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for status: {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Zero the two wall-clock fields so reports from different runs of the
/// same deterministic search compare bit-identical. (The `scrub_timing`
/// helper in parallel_search.rs matches `"secs":` keys, which does not
/// cover `"prepare_secs":` / `"search_secs":`.)
fn scrub_secs(json: &str) -> String {
    let mut out = String::new();
    let mut rest = json;
    loop {
        let hit = ["\"prepare_secs\":", "\"search_secs\":"]
            .iter()
            .filter_map(|k| rest.find(k).map(|p| p + k.len()))
            .min();
        let Some(pos) = hit else {
            out.push_str(rest);
            return out;
        };
        out.push_str(&rest[..pos]);
        out.push('0');
        let tail = &rest[pos..];
        let end = tail
            .find([',', '}'])
            .expect("a JSON number field ends with , or }");
        rest = &tail[end..];
    }
}

/// Extract the embedded `discover --json` report from a discover reply.
/// The server renders `report` as the last field for exactly this kind of
/// splice-free consumption.
fn report_of(reply: &str) -> String {
    let key = "\"report\":";
    let pos = reply.find(key).expect("discover replies embed a report") + key.len();
    let body = &reply[pos..];
    assert!(body.ends_with('}'), "report is the final reply field");
    body[..body.len() - 1].to_string()
}

/// A turnstile for stub discover handlers: requests block inside the
/// worker until the test opens the gate, making queue depths observable.
#[derive(Default)]
struct Gate {
    state: Mutex<bool>,
    cv: Condvar,
}

impl Gate {
    fn wait_open(&self) {
        let mut open = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while !*open {
            open = self.cv.wait(open).unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn open(&self) {
        *self.state.lock().unwrap_or_else(PoisonError::into_inner) = true;
        self.cv.notify_all();
    }
}

/// A daemon whose discover handler parks on `gate` and then echoes the
/// request seed — enough to observe admission and drain behavior without
/// paying for real searches.
fn gated_server(
    lake: &std::path::Path,
    config: ServeConfig,
    gate: Arc<Gate>,
) -> metam::serve::RunningServer {
    let registry = LakeRegistry::open(&[("demo".to_string(), lake.to_path_buf())])
        .expect("open stub registry");
    metam_serve::bind(
        config,
        registry,
        Box::new(move |request, _catalog| {
            gate.wait_open();
            Ok(DiscoverOutput {
                report_json: format!("{{\"seed\":{}}}", request.seed),
                cache_json: "{}".to_string(),
            })
        }),
    )
    .expect("bind stub daemon")
}

fn tiny_lake(tag: &str) -> PathBuf {
    let dir = tmp_dir(tag);
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join("alpha.csv"), "x,y\n1,2\n3,4\n").expect("write csv");
    dir
}

fn discover_line(lake: &str, seed: u64) -> String {
    format!(
        "{{\"verb\":\"discover\",\"lake\":{lake:?},\"din\":\"din\",\
         \"task\":\"classification:label\",\"seed\":{seed},\"budget\":40,\"threads\":1}}"
    )
}

// ---------------------------------------------------------------------------
// Satellite 2: every malformed input is a typed reply on a surviving
// connection — never a panic, never a dropped socket.
// ---------------------------------------------------------------------------

#[test]
fn malformed_input_yields_typed_replies_on_a_surviving_connection() {
    let _serial = lock_serial();
    let dir = demo_lake("robust", 3);
    let server = metam::serve::start(
        &[("demo".to_string(), dir.clone())],
        ServeConfig {
            workers: 1,
            queue: 4,
            max_line_bytes: 512,
            ..ServeConfig::default()
        },
    )
    .expect("start daemon");
    let addr = server.addr();

    // Every probe goes down the SAME connection; each must produce exactly
    // one typed reply and leave the connection usable for the next.
    let mut client = Client::connect(addr);
    assert_eq!(
        error_kind(&client.roundtrip("this is not json")),
        "bad_request"
    );
    assert_eq!(error_kind(&client.roundtrip("[1,2,3]")), "bad_request");
    assert_eq!(
        error_kind(&client.roundtrip("{\"verb\":\"frobnicate\"}")),
        "unknown_verb"
    );
    assert_eq!(
        error_kind(&client.roundtrip(
            "{\"verb\":\"discover\",\"din\":\"din\",\"task\":\"classification:label\"}"
        )),
        "bad_request",
        "missing lake field"
    );
    assert_eq!(
        error_kind(&client.roundtrip(&discover_line("nope", 1))),
        "unknown_lake"
    );
    // Budget 0 parses fine but the session refuses it: a bad_request from
    // the worker, not a panic or an internal error.
    let zero_budget = "{\"verb\":\"discover\",\"lake\":\"demo\",\"din\":\"din\",\
                       \"task\":\"classification:label\",\"budget\":0}";
    assert_eq!(error_kind(&client.roundtrip(zero_budget)), "bad_request");
    // A 600-byte line exceeds max_line_bytes=512: typed `oversized` reply,
    // line discarded, connection intact.
    let huge = format!("{}\n", "x".repeat(600));
    client.send_raw(huge.as_bytes());
    assert_eq!(error_kind(&client.read_reply()), "oversized");
    // Blank lines are skipped, not answered: the next reply on the wire
    // belongs to the status request that follows.
    client.send_raw(b"\n");
    let status = assert_ok(&client.roundtrip("{\"verb\":\"status\"}"));
    assert_eq!(status.get("verb").and_then(Value::as_str), Some("status"));

    assert_ok(&client.roundtrip("{\"verb\":\"shutdown\"}"));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// The acceptance bar: 8 concurrent TCP discovers, bit-identical to the
// same sessions run in-process.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_discovers_match_in_process_sessions_bit_for_bit() {
    let _serial = lock_serial();
    let dir = demo_lake("bitid", 7);
    let seeds: Vec<u64> = (1..=8).collect();

    let server = metam::serve::start(
        &[("demo".to_string(), dir.clone())],
        ServeConfig {
            workers: 8,
            queue: 8,
            ..ServeConfig::default()
        },
    )
    .expect("start daemon");
    let addr = server.addr();

    // All 8 requests in flight at once, each on its own connection.
    let handles: Vec<_> = seeds
        .iter()
        .map(|&seed| {
            std::thread::spawn(move || {
                let reply = one_shot(addr, &discover_line("demo", seed));
                assert_ok(&reply);
                report_of(&reply)
            })
        })
        .collect();
    let served: Vec<String> = handles
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();

    assert_ok(&one_shot(addr, "{\"verb\":\"shutdown\"}"));
    server.join();

    // The reference runs: the identical sessions, in-process, over one
    // shared catalog of the same lake directory.
    let catalog = Arc::new(LakeCatalog::scan(&dir).expect("scan reference catalog"));
    for (i, &seed) in seeds.iter().enumerate() {
        let mut report = Session::from_shared_catalog(Arc::clone(&catalog))
            .din("din")
            .task_spec("classification:label")
            .seed(seed)
            .budget(40)
            .threads(1)
            .run(Method::Metam(MetamConfig::default()))
            .expect("in-process session");
        // Serve replies omit the process-global metrics section; mirror
        // that here so only wall-clock fields need scrubbing.
        report.metrics = None;
        assert_eq!(
            scrub_secs(&served[i]),
            scrub_secs(&report.to_json()),
            "seed {seed}: daemon report must be bit-identical to the in-process run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Admission: the (N+1)th request beyond the ceiling is a typed rejection,
// and budget caps refuse work before it takes a queue slot.
// ---------------------------------------------------------------------------

#[test]
fn requests_beyond_the_ceiling_are_rejected_with_a_typed_reply() {
    let dir = tiny_lake("admission");
    let gate = Arc::new(Gate::default());
    // workers=2 + queue=2 → ceiling of 4 outstanding requests.
    let server = gated_server(
        &dir,
        ServeConfig {
            workers: 2,
            queue: 2,
            max_budget: Some(50),
            ..ServeConfig::default()
        },
        Arc::clone(&gate),
    );
    let addr = server.addr();

    // A budget over the server cap never reaches the queue: typed
    // rejection while the queue is still empty.
    let greedy = "{\"verb\":\"discover\",\"lake\":\"demo\",\"din\":\"d\",\
                  \"task\":\"t\",\"budget\":100}";
    assert_eq!(error_kind(&one_shot(addr, greedy)), "rejected");

    // Fill the ceiling: 2 in-flight (parked on the gate) + 2 queued.
    let clients: Vec<_> = (1..=4)
        .map(|seed| {
            std::thread::spawn(move || {
                let line = format!(
                    "{{\"verb\":\"discover\",\"lake\":\"demo\",\"din\":\"d\",\
                     \"task\":\"t\",\"budget\":10,\"seed\":{seed}}}"
                );
                one_shot(addr, &line)
            })
        })
        .collect();
    wait_for_status(addr, "2 active + 2 queued", |v| {
        v.get("active").and_then(Value::as_f64) == Some(2.0)
            && v.get("queued").and_then(Value::as_f64) == Some(2.0)
    });

    // The 5th request over the full ceiling: typed rejection, connection
    // answered immediately even though all workers are busy.
    let fifth = "{\"verb\":\"discover\",\"lake\":\"demo\",\"din\":\"d\",\
                 \"task\":\"t\",\"budget\":10,\"seed\":5}";
    assert_eq!(error_kind(&one_shot(addr, fifth)), "rejected");
    assert!(
        status_field(addr, "rejected") >= 2.0,
        "both rejections counted"
    );

    // Open the gate: all four admitted requests complete with their own
    // seeds (FIFO per worker; no reply is lost or crossed).
    gate.open();
    let mut seeds_seen: Vec<u64> = clients
        .into_iter()
        .map(|h| {
            let reply = h.join().expect("client thread");
            let v = assert_ok(&reply);
            assert_eq!(v.get("verb").and_then(Value::as_str), Some("discover"));
            v.get("report")
                .and_then(|r| r.get("seed"))
                .and_then(Value::as_f64)
                .expect("stub echoes the seed") as u64
        })
        .collect();
    seeds_seen.sort_unstable();
    assert_eq!(seeds_seen, vec![1, 2, 3, 4]);

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Satellite 1: graceful shutdown — in-flight work drains to completion,
// new work gets a typed `shutting_down` reply, join() returns.
// ---------------------------------------------------------------------------

#[test]
fn shutdown_drains_in_flight_work_before_refusing_new_requests() {
    let dir = tiny_lake("drain");
    let gate = Arc::new(Gate::default());
    let server = gated_server(
        &dir,
        ServeConfig {
            workers: 1,
            queue: 4,
            ..ServeConfig::default()
        },
        Arc::clone(&gate),
    );
    let addr = server.addr();

    // Park one discover in-flight on the gate.
    let in_flight = std::thread::spawn(move || {
        one_shot(
            addr,
            "{\"verb\":\"discover\",\"lake\":\"demo\",\"din\":\"d\",\
             \"task\":\"t\",\"seed\":42}",
        )
    });
    wait_for_status(addr, "one request in flight", |v| {
        v.get("active").and_then(Value::as_f64) == Some(1.0)
    });

    // Shutdown is acknowledged while work is still running...
    let ack = assert_ok(&one_shot(addr, "{\"verb\":\"shutdown\"}"));
    assert_eq!(
        ack.get("draining_active").and_then(Value::as_f64),
        Some(1.0),
        "the ack reports the in-flight request it is waiting for"
    );
    // ...new work is refused with a typed reply...
    let late = "{\"verb\":\"discover\",\"lake\":\"demo\",\"din\":\"d\",\"task\":\"t\"}";
    assert_eq!(error_kind(&one_shot(addr, late)), "shutting_down");
    // ...and introspection stays answerable during the drain.
    let status = assert_ok(&one_shot(addr, "{\"verb\":\"status\"}"));
    assert_eq!(status.get("shutting_down"), Some(&Value::Bool(true)));

    // Release the gate: the in-flight request completes successfully
    // (drain means finish, not abort), then join() returns.
    gate.open();
    let reply = in_flight.join().expect("in-flight client");
    let v = assert_ok(&reply);
    assert_eq!(
        v.get("report")
            .and_then(|r| r.get("seed"))
            .and_then(Value::as_f64),
        Some(42.0)
    );
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Satellite 6 regression: concurrent sessions over one shared catalog
// flush each load into the metrics registry exactly once.
// ---------------------------------------------------------------------------

#[test]
fn shared_catalog_sessions_flush_each_load_exactly_once() {
    let _serial = lock_serial();
    let dir = demo_lake("counters", 5);
    let catalog = Arc::new(LakeCatalog::scan(&dir).expect("scan"));
    let load = catalog.load_counters();

    let registry_before = |name: &str| metam::obs::metrics_snapshot().counter(name).unwrap_or(0);
    let before_hits = registry_before("lake.load.mtc_hits");
    let before_misses = registry_before("lake.load.csv_fallbacks");
    let lifetime_before = load.hits() + load.misses();

    // 8 concurrent sessions over the SAME catalog. Under the old
    // cumulative flush, each prepare re-reported every load since catalog
    // creation, over-counting roughly quadratically.
    let handles: Vec<_> = (0..8u64)
        .map(|seed| {
            let catalog = Arc::clone(&catalog);
            std::thread::spawn(move || {
                Session::from_shared_catalog(catalog)
                    .din("din")
                    .task_spec("classification:label")
                    .seed(seed)
                    .budget(5)
                    .run(Method::Metam(MetamConfig::default()))
                    .expect("session over shared catalog")
            })
        })
        .collect();
    for h in handles {
        h.join().expect("session thread");
    }

    let lifetime_delta = load.hits() + load.misses() - lifetime_before;
    assert!(lifetime_delta >= 8, "each session loads at least the din");
    // Loads after the last prepare-time flush (search-time lazy
    // materialization) are still pending; account for them explicitly.
    let (pending_hits, pending_misses) = load.take_unflushed();
    let registry_delta = (registry_before("lake.load.mtc_hits") - before_hits)
        + (registry_before("lake.load.csv_fallbacks") - before_misses);
    assert_eq!(
        registry_delta + pending_hits as u64 + pending_misses as u64,
        lifetime_delta as u64,
        "every load is flushed to the registry exactly once, even with \
         8 sessions sharing one catalog"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Hot-catalog freshness: `lakes`, explicit `scan`, and stale-hit
// revalidation through the `profile` verb.
// ---------------------------------------------------------------------------

#[test]
fn scan_and_stale_hits_refresh_the_hot_catalog_in_place() {
    let _serial = lock_serial();
    let dir = tiny_lake("fresh");
    std::fs::write(dir.join("beta.csv"), "a,b\n5,6\n").expect("write csv");
    let server = metam::serve::start(
        &[("demo".to_string(), dir.clone())],
        ServeConfig {
            workers: 1,
            queue: 4,
            ..ServeConfig::default()
        },
    )
    .expect("start daemon");
    let addr = server.addr();

    let lakes = assert_ok(&one_shot(addr, "{\"verb\":\"lakes\"}"));
    let entry = &as_arr(lakes.get("lakes").expect("lakes field"))[0];
    assert_eq!(entry.get("name").and_then(Value::as_str), Some("demo"));
    assert_eq!(entry.get("tables").and_then(Value::as_f64), Some(2.0));

    // A file lands in the lake; an explicit `scan` verb picks it up.
    std::fs::write(dir.join("gamma.csv"), "c\n9\n").expect("write csv");
    let scanned = assert_ok(&one_shot(addr, "{\"verb\":\"scan\",\"lake\":\"demo\"}"));
    assert_eq!(scanned.get("tables").and_then(Value::as_f64), Some(3.0));

    // Another file lands; NO explicit scan this time. The next hot-path
    // request notices the stale fingerprints and revalidates in place.
    std::fs::write(dir.join("delta.csv"), "d\n1\n").expect("write csv");
    let profiled = assert_ok(&one_shot(addr, "{\"verb\":\"profile\",\"lake\":\"demo\"}"));
    let tables: Vec<String> = as_arr(
        profiled
            .get("profile")
            .and_then(|p| p.get("tables"))
            .expect("profile reply lists tables"),
    )
    .iter()
    .filter_map(|entry| entry.get("table").and_then(Value::as_str))
    .map(String::from)
    .collect();
    assert!(
        tables.iter().any(|t| t == "delta"),
        "stale hit revalidated the catalog: {tables:?}"
    );

    assert_ok(&one_shot(addr, "{\"verb\":\"shutdown\"}"));
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
