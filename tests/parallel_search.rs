//! Parallel-search determinism guarantees: the worker-thread count is a
//! pure wall-clock knob. A run with `threads(N)` must be **bit-identical**
//! to the sequential run — same solution, same utility bits, same query
//! accounting, same trace, same observer event stream, same JSONL trace
//! (timing fields aside, which are wall-clock by nature).

use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

use metam::core::engine::SearchInputs;
use metam::discovery::CandidateId;
use metam::obs;
use metam::{
    run_method_with_observer, MetamConfig, Method, Prepared, QueryEvent, QueryKind, RunObserver,
    RunResult, Session, StopReason,
};
use metam_datagen::causal_scenario::{build_causal, CausalConfig, CausalKind};

/// The trace sink is process-global; tests that install one take this lock
/// so parallel test threads never see each other's lines.
static SINK_LOCK: Mutex<()> = Mutex::new(());

/// An in-memory `Write` sink the test keeps a handle on.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap_or_else(PoisonError::into_inner)).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Owned copy of one [`QueryEvent`], minus the wall-clock duration (the
/// only field allowed to differ across thread counts).
#[derive(Debug, Clone, PartialEq)]
struct OwnedQuery {
    query: usize,
    kind: QueryKind,
    set: Vec<CandidateId>,
    candidate: Option<CandidateId>,
    utility: f64,
    best_utility: f64,
    delta: f64,
    queries_remaining: usize,
}

#[derive(Debug, Default)]
struct EventRecorder {
    events: Vec<OwnedQuery>,
    finish: Option<StopReason>,
}

impl RunObserver for EventRecorder {
    fn on_query(&mut self, event: &QueryEvent<'_>) {
        self.events.push(OwnedQuery {
            query: event.query,
            kind: event.kind,
            set: event.set.to_vec(),
            candidate: event.candidate,
            utility: event.utility,
            best_utility: event.best_utility,
            delta: event.delta,
            queries_remaining: event.queries_remaining,
        });
    }

    fn on_finish(&mut self, stop_reason: StopReason) {
        self.finish = Some(stop_reason);
    }
}

/// The seed-32 causal how-to fixture from `tests/observability.rs`, with a
/// caller-chosen search worker count.
fn howto_prepared(threads: usize) -> Prepared {
    let scenario = build_causal(&CausalConfig {
        seed: 32,
        kind: CausalKind::HowTo,
        n_irrelevant_tables: 20,
        n_erroneous_tables: 6,
        n_confounder_tables: 8,
        ..Default::default()
    });
    Session::from_scenario(scenario)
        .seed(32)
        .threads(threads)
        .prepare()
        .expect("prepare")
}

/// Blank the numeric value after every `"ts":` / `"secs":` key so JSONL
/// lines compare equal across runs that only differ in wall-clock.
fn scrub_timing(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        let mut rest = line;
        while let Some(pos) = ["\"ts\":", "\"secs\":"]
            .iter()
            .filter_map(|k| rest.find(k).map(|p| p + k.len()))
            .min()
        {
            out.push_str(&rest[..pos]);
            out.push('0');
            let tail = &rest[pos..];
            let end = tail.find([',', '}']).unwrap_or(tail.len());
            rest = &tail[end..];
        }
        out.push_str(rest);
        out.push('\n');
    }
    out
}

fn assert_bit_identical(seq: &RunResult, par: &RunResult, threads: usize) {
    assert_eq!(seq.selected, par.selected, "solution @ {threads} threads");
    assert_eq!(
        seq.utility.to_bits(),
        par.utility.to_bits(),
        "utility bits @ {threads} threads"
    );
    assert_eq!(
        seq.base_utility.to_bits(),
        par.base_utility.to_bits(),
        "base utility bits @ {threads} threads"
    );
    assert_eq!(seq.queries, par.queries, "budget spend @ {threads} threads");
    assert_eq!(seq.trace, par.trace, "trace @ {threads} threads");
}

/// The headline regression: Metam on the causal how-to fixture with a
/// 4-worker pool is bit-identical to the sequential run — report, trace,
/// observer event stream, and the emitted JSONL trace (timing scrubbed).
#[test]
fn parallel_metam_is_bit_identical_to_sequential() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::disable();
    let method = Method::Metam(MetamConfig {
        seed: 32,
        ..Default::default()
    });

    let mut runs = Vec::new();
    for threads in [1, 4] {
        let prepared = howto_prepared(threads);
        assert_eq!(prepared.threads, threads, "thread plumbing");
        let buf = SharedBuf::default();
        obs::install_writer(Box::new(buf.clone()));
        let mut rec = EventRecorder::default();
        let result =
            run_method_with_observer(&method, &prepared.inputs(), Some(1.0), 250, &mut rec);
        obs::flush();
        obs::disable();
        runs.push((result, rec, scrub_timing(&buf.contents())));
    }
    let (par, par_rec, par_trace) = runs.pop().expect("parallel run");
    let (seq, seq_rec, seq_trace) = runs.pop().expect("sequential run");

    assert_bit_identical(&seq, &par, 4);
    // Regression pin shared with tests/observability.rs: the thread count
    // must never change the spend on this fixture (seed 32, how-to).
    assert_eq!(par.queries, 30, "seed-32 how-to query-count pin");

    // The observer saw the same run, event for event (kinds, sets,
    // per-plan candidates, utilities, remaining budget).
    assert_eq!(seq_rec.events, par_rec.events, "event streams");
    assert_eq!(seq_rec.finish, par_rec.finish, "stop reason");

    // The JSONL traces are line-identical once wall-clock is scrubbed.
    assert_eq!(seq_trace, par_trace, "JSONL traces");
    assert!(
        par_trace.contains("\"event\":\"query\""),
        "trace captured query lines"
    );
}

/// The converted baseline path: Uniform's windowed greedy scan is
/// bit-identical across thread counts too (including an oversized pool).
#[test]
fn parallel_uniform_is_bit_identical_to_sequential() {
    let method = Method::Uniform { seed: 7 };
    let seq = {
        let prepared = howto_prepared(1);
        run_method_with_observer(
            &method,
            &prepared.inputs(),
            None,
            60,
            &mut metam::NoopObserver,
        )
    };
    for threads in [3, 64] {
        let prepared = howto_prepared(threads);
        let par = run_method_with_observer(
            &method,
            &prepared.inputs(),
            None,
            60,
            &mut metam::NoopObserver,
        );
        assert_bit_identical(&seq, &par, threads);
    }
}

/// The data plane is thread-mobile: a whole session (and its prepared
/// state) can move across threads, and the search inputs can be shared by
/// worker threads. Pure compile-time assertions.
#[test]
fn session_and_prepared_are_send() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Session>();
    assert_send::<Prepared>();
    assert_sync::<SearchInputs<'static>>();
}
