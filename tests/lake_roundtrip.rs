//! The lake subsystem's self-validating round trip: export a synthetic
//! scenario (with planted ground truth) as a CSV lake on disk, scan it
//! back through the catalog, run goal-oriented discovery over the files,
//! and check that the search still recovers the planted augmentations.
//!
//! This exercises every lake layer at once: CSV writer → reader, catalog
//! scan, manifest persistence + cache invalidation, candidate generation
//! over file-backed tables, and the search itself.

use std::path::PathBuf;

use metam::lake::{export_scenario, LakeCatalog};
use metam::{Metam, MetamConfig, Session};
use metam_datagen::supervised::{build_supervised, SupervisedConfig};
use metam_datagen::Scenario;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metam-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_scenario(seed: u64) -> Scenario {
    build_supervised(&SupervisedConfig {
        seed,
        n_rows: 300,
        n_informative: 2,
        n_duplicates: 1,
        n_irrelevant_tables: 6,
        n_erroneous_tables: 3,
        n_redundant_tables: 2,
        classification: true,
        ..Default::default()
    })
}

#[test]
fn exported_lake_rediscovers_planted_candidates() {
    let dir = tmp_dir("discover");
    let scenario = small_scenario(11);
    export_scenario(&scenario, &dir).expect("export");

    let catalog = LakeCatalog::scan(&dir).expect("scan");
    assert_eq!(
        catalog.len(),
        scenario.tables.len() + 1,
        "every repo table plus din.csv is cataloged"
    );

    let din = catalog.load_table("din").expect("din");
    assert_eq!(din.nrows(), scenario.din.nrows());
    assert_eq!(din.ncols(), scenario.din.ncols());

    let prepared = Session::from_catalog(catalog)
        .din("din")
        .task_spec("classification:label")
        .seed(11)
        .prepare()
        .expect("prepare");
    assert!(
        !prepared.candidates.is_empty(),
        "discovery over the file-backed lake must find candidates"
    );
    // The planted signal survives the CSV round trip: at least one
    // candidate maps to a ground-truth-relevant (table, column) pair.
    let planted: Vec<&str> = prepared
        .candidates
        .iter()
        .filter(|c| {
            scenario
                .ground_truth
                .is_relevant(&c.source_table, &c.column_name)
        })
        .map(|c| c.name.as_str())
        .collect();
    assert!(
        !planted.is_empty(),
        "planted candidates must be rediscoverable from disk"
    );

    let result = Metam::new(MetamConfig {
        theta: Some(0.9),
        max_queries: 400,
        seed: 11,
        ..Default::default()
    })
    .run(&prepared.inputs());

    assert!(
        result.utility >= result.base_utility,
        "augmentation must not hurt: base={} final={}",
        result.base_utility,
        result.utility
    );
    assert!(
        result.utility > result.base_utility + 0.01,
        "planted signal must lift utility: base={} final={}",
        result.base_utility,
        result.utility
    );
    assert!(
        !result.selected.is_empty(),
        "the search must select at least one augmentation"
    );
    assert!(
        result.selected.iter().any(|&id| {
            let c = &prepared.candidates[id];
            scenario
                .ground_truth
                .is_relevant(&c.source_table, &c.column_name)
        }),
        "at least one selected augmentation must be a planted one: {:?}",
        result
            .selected
            .iter()
            .map(|&id| prepared.candidates[id].name.clone())
            .collect::<Vec<_>>()
    );
    assert!(result.queries <= result.budget);
    assert_eq!(result.queries_remaining(), result.budget - result.queries);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_scan_hits_the_profile_cache() {
    let dir = tmp_dir("cache");
    let scenario = small_scenario(5);
    export_scenario(&scenario, &dir).expect("export");

    let first = LakeCatalog::scan(&dir).expect("first scan");
    assert_eq!(first.cache_hits(), 0);
    assert_eq!(first.cache_misses(), first.len());

    // Unchanged lake ⇒ every profile comes from the persisted cache.
    let second = LakeCatalog::scan(&dir).expect("second scan");
    assert_eq!(second.cache_hits(), second.len(), "all files unchanged");
    assert_eq!(second.cache_misses(), 0);
    assert_eq!(
        second.entries(),
        first.entries(),
        "cached profiles are identical"
    );

    // Touching one file invalidates exactly that file.
    let touched = dir.join("din.csv");
    let mut text = std::fs::read_to_string(&touched).unwrap();
    text.push_str("extra,0,0,extra\n");
    std::fs::write(&touched, text).unwrap();
    let third = LakeCatalog::scan(&dir).expect("third scan");
    assert_eq!(third.cache_misses(), 1, "only the touched file re-profiles");
    assert_eq!(third.cache_hits(), third.len() - 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn null_marker_strings_roundtrip_without_spurious_nulls() {
    // Regression: string cells spelling a null marker ("NA", "-", …) or a
    // number used to collapse on CSV read-back. The writer now quotes
    // them and the reader keeps quoted cells verbatim, so
    // export_scenario → scan → load_table is value-lossless.
    use metam_datagen::{GroundTruth, Scenario, TaskSpec};
    use metam_table::{Column, Table, Value};
    use std::sync::Arc;

    let tricky: Vec<Option<String>> = vec![
        Some("NA".into()),
        Some("-".into()),
        Some("null".into()),
        Some("42".into()),
        Some("plain".into()),
        None,
    ];
    let keys: Vec<Option<String>> = (0..tricky.len()).map(|i| Some(format!("z{i}"))).collect();
    let notes = Arc::new(
        Table::from_columns(
            "notes",
            vec![
                Column::from_strings(Some("zip".into()), keys.clone()),
                Column::from_strings(Some("note".into()), tricky.clone()),
            ],
        )
        .unwrap(),
    );
    let scenario = Scenario {
        name: "markers".into(),
        din: Table::from_columns(
            "d",
            vec![
                Column::from_strings(Some("zip".into()), keys),
                Column::from_ints(Some("label".into()), (0..6).map(|i| Some(i % 2)).collect()),
            ],
        )
        .unwrap(),
        tables: vec![notes],
        spec: TaskSpec::Classification {
            target: "label".into(),
        },
        ground_truth: GroundTruth::default(),
        union_tables: Vec::new(),
        eval_table: None,
    };

    let dir = tmp_dir("markers");
    export_scenario(&scenario, &dir).expect("export");
    let catalog = LakeCatalog::scan(&dir).expect("scan");
    let loaded = catalog.load_table("notes").expect("load");
    let note_col = loaded.column_by_name("note").expect("note column");
    assert_eq!(note_col.null_count(), 1, "only the real null is null");
    for (r, cell) in tricky.iter().enumerate() {
        let expect = cell.clone().map_or(Value::Null, Value::Str);
        assert_eq!(note_col.get(r), expect, "row {r}");
    }

    // The same guarantee holds when the load is served by the `.mtc`
    // columnar cache (scan populated it) — and when it heals from CSV.
    let counters = catalog.load_counters();
    assert_eq!(counters.hits(), 1, "load came from the columnar cache");
    let _ = std::fs::remove_dir_all(metam::lake::cache::cache_dir(&dir));
    let from_csv = catalog.load_table("notes").expect("reload");
    assert_eq!(from_csv, loaded, "CSV fallback is value-identical");
    assert_eq!(counters.misses(), 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn discover_loads_only_din_and_candidate_tables_from_the_cache() {
    // A sketch-backed prepare builds the discovery index from persisted
    // catalog records, so the only table payloads that load are the input
    // dataset plus the tables some candidate's join path actually touches
    // — and every one of those loads deserializes from `.mtc`, not CSV
    // (asserted via the shared counters, which outlive the catalog's move
    // into the session).
    let dir = tmp_dir("mtc-discover");
    let scenario = small_scenario(17);
    export_scenario(&scenario, &dir).expect("export");

    let catalog = LakeCatalog::scan(&dir).expect("scan");
    let n_tables = catalog.len();
    let repo_names = catalog.repository_names(&["din"]);
    let counters = catalog.load_counters();
    let sketch_counters = catalog.sketch_load_counters();
    let prepared = Session::from_catalog(catalog)
        .din("din")
        .task_spec("classification:label")
        .seed(17)
        .prepare()
        .expect("prepare");
    assert!(!prepared.candidates.is_empty());

    // Candidate generation itself ran entirely off sketch records.
    assert_eq!(
        sketch_counters.hits(),
        n_tables - 1,
        "every repository descriptor comes from its persisted sketch"
    );
    assert_eq!(sketch_counters.misses(), 0, "no table-load fallbacks");

    // Payload loads are bounded by what the candidates touch: din plus
    // each distinct table on some candidate's join path.
    let mut touched: Vec<&str> = prepared
        .candidates
        .iter()
        .flat_map(|c| c.path.hops.iter())
        .map(|h| repo_names[h.table].as_str())
        .collect();
    touched.sort_unstable();
    touched.dedup();
    assert_eq!(
        counters.hits(),
        1 + touched.len(),
        "loads = din + candidate-path tables, nothing else"
    );
    assert_eq!(counters.misses(), 0, "no CSV re-parsing on a warm lake");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lake_prepare_matches_in_memory_prepare_candidates() {
    // The same scenario, prepared in memory and via the on-disk round
    // trip, must discover the same (table, column) candidate set — the
    // CSV layer may retype values but must not change what joins.
    let dir = tmp_dir("parity");
    let scenario = small_scenario(23);
    export_scenario(&scenario, &dir).expect("export");

    let in_memory = Session::from_scenario(scenario)
        .seed(23)
        .prepare()
        .expect("prepare");
    let catalog = LakeCatalog::scan(&dir).expect("scan");
    let from_disk = Session::from_catalog(catalog)
        .din("din")
        .task_spec("classification:label")
        .seed(23)
        .prepare()
        .expect("prepare");

    let key = |cands: &[metam_discovery::Candidate]| {
        let mut keys: Vec<(String, String)> = cands
            .iter()
            .map(|c| (c.source_table.clone(), c.column_name.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    };
    let mem = key(&in_memory.candidates);
    let disk = key(&from_disk.candidates);
    let missing: Vec<_> = mem.iter().filter(|k| !disk.contains(k)).collect();
    assert!(
        missing.is_empty(),
        "candidates lost in the CSV round trip: {missing:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
