//! The lake subsystem's self-validating round trip: export a synthetic
//! scenario (with planted ground truth) as a CSV lake on disk, scan it
//! back through the catalog, run goal-oriented discovery over the files,
//! and check that the search still recovers the planted augmentations.
//!
//! This exercises every lake layer at once: CSV writer → reader, catalog
//! scan, manifest persistence + cache invalidation, candidate generation
//! over file-backed tables, and the search itself.

use std::path::PathBuf;

use metam::lake::{export_scenario, LakeCatalog};
use metam::{Metam, MetamConfig, Session};
use metam_datagen::supervised::{build_supervised, SupervisedConfig};
use metam_datagen::Scenario;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metam-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_scenario(seed: u64) -> Scenario {
    build_supervised(&SupervisedConfig {
        seed,
        n_rows: 300,
        n_informative: 2,
        n_duplicates: 1,
        n_irrelevant_tables: 6,
        n_erroneous_tables: 3,
        n_redundant_tables: 2,
        classification: true,
        ..Default::default()
    })
}

#[test]
fn exported_lake_rediscovers_planted_candidates() {
    let dir = tmp_dir("discover");
    let scenario = small_scenario(11);
    export_scenario(&scenario, &dir).expect("export");

    let catalog = LakeCatalog::scan(&dir).expect("scan");
    assert_eq!(
        catalog.len(),
        scenario.tables.len() + 1,
        "every repo table plus din.csv is cataloged"
    );

    let din = catalog.load_table("din").expect("din");
    assert_eq!(din.nrows(), scenario.din.nrows());
    assert_eq!(din.ncols(), scenario.din.ncols());

    let prepared = Session::from_catalog(catalog)
        .din("din")
        .task_spec("classification:label")
        .seed(11)
        .prepare()
        .expect("prepare");
    assert!(
        !prepared.candidates.is_empty(),
        "discovery over the file-backed lake must find candidates"
    );
    // The planted signal survives the CSV round trip: at least one
    // candidate maps to a ground-truth-relevant (table, column) pair.
    let planted: Vec<&str> = prepared
        .candidates
        .iter()
        .filter(|c| {
            scenario
                .ground_truth
                .is_relevant(&c.source_table, &c.column_name)
        })
        .map(|c| c.name.as_str())
        .collect();
    assert!(
        !planted.is_empty(),
        "planted candidates must be rediscoverable from disk"
    );

    let result = Metam::new(MetamConfig {
        theta: Some(0.9),
        max_queries: 400,
        seed: 11,
        ..Default::default()
    })
    .run(&prepared.inputs());

    assert!(
        result.utility >= result.base_utility,
        "augmentation must not hurt: base={} final={}",
        result.base_utility,
        result.utility
    );
    assert!(
        result.utility > result.base_utility + 0.01,
        "planted signal must lift utility: base={} final={}",
        result.base_utility,
        result.utility
    );
    assert!(
        !result.selected.is_empty(),
        "the search must select at least one augmentation"
    );
    assert!(
        result.selected.iter().any(|&id| {
            let c = &prepared.candidates[id];
            scenario
                .ground_truth
                .is_relevant(&c.source_table, &c.column_name)
        }),
        "at least one selected augmentation must be a planted one: {:?}",
        result
            .selected
            .iter()
            .map(|&id| prepared.candidates[id].name.clone())
            .collect::<Vec<_>>()
    );
    assert!(result.queries <= result.budget);
    assert_eq!(result.queries_remaining(), result.budget - result.queries);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn second_scan_hits_the_profile_cache() {
    let dir = tmp_dir("cache");
    let scenario = small_scenario(5);
    export_scenario(&scenario, &dir).expect("export");

    let first = LakeCatalog::scan(&dir).expect("first scan");
    assert_eq!(first.cache_hits(), 0);
    assert_eq!(first.cache_misses(), first.len());

    // Unchanged lake ⇒ every profile comes from the persisted cache.
    let second = LakeCatalog::scan(&dir).expect("second scan");
    assert_eq!(second.cache_hits(), second.len(), "all files unchanged");
    assert_eq!(second.cache_misses(), 0);
    assert_eq!(
        second.entries(),
        first.entries(),
        "cached profiles are identical"
    );

    // Touching one file invalidates exactly that file.
    let touched = dir.join("din.csv");
    let mut text = std::fs::read_to_string(&touched).unwrap();
    text.push_str("extra,0,0,extra\n");
    std::fs::write(&touched, text).unwrap();
    let third = LakeCatalog::scan(&dir).expect("third scan");
    assert_eq!(third.cache_misses(), 1, "only the touched file re-profiles");
    assert_eq!(third.cache_hits(), third.len() - 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lake_prepare_matches_in_memory_prepare_candidates() {
    // The same scenario, prepared in memory and via the on-disk round
    // trip, must discover the same (table, column) candidate set — the
    // CSV layer may retype values but must not change what joins.
    let dir = tmp_dir("parity");
    let scenario = small_scenario(23);
    export_scenario(&scenario, &dir).expect("export");

    let in_memory = Session::from_scenario(scenario)
        .seed(23)
        .prepare()
        .expect("prepare");
    let catalog = LakeCatalog::scan(&dir).expect("scan");
    let from_disk = Session::from_catalog(catalog)
        .din("din")
        .task_spec("classification:label")
        .seed(23)
        .prepare()
        .expect("prepare");

    let key = |cands: &[metam_discovery::Candidate]| {
        let mut keys: Vec<(String, String)> = cands
            .iter()
            .map(|c| (c.source_table.clone(), c.column_name.clone()))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    };
    let mem = key(&in_memory.candidates);
    let disk = key(&from_disk.candidates);
    let missing: Vec<_> = mem.iter().filter(|k| !disk.contains(k)).collect();
    assert!(
        missing.is_empty(),
        "candidates lost in the CSV round trip: {missing:?}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
