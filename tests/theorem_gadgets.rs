//! Tests built on the paper's §V theory gadgets: the set-cover reduction
//! (Theorem 1) and the θ-achievement guarantee (Theorem 3).

use std::collections::BTreeSet;

use metam::core::engine::{QueryEngine, SearchInputs};
use metam::core::task::SetCoverTask;
use metam::{Metam, MetamConfig, StopReason};
use metam_discovery::path::PathConfig;
use metam_discovery::{generate_candidates, DiscoveryIndex, Materializer};
use metam_table::{Column, Table};
use std::sync::Arc;

/// Fixture: `n` joinable single-column tables so candidate ids 0..n exist.
fn fixture(n: usize) -> (Table, Vec<metam_discovery::Candidate>, Materializer) {
    let rows = 30;
    let din = Table::from_columns(
        "din",
        vec![Column::from_strings(
            Some("k".into()),
            (0..rows).map(|i| Some(format!("k{i}"))).collect(),
        )],
    )
    .unwrap();
    let mut tables = Vec::new();
    for t in 0..n {
        tables.push(Arc::new(
            Table::from_columns(
                format!("t{t}"),
                vec![
                    Column::from_strings(
                        Some("key".into()),
                        (0..rows).map(|i| Some(format!("k{i}"))).collect(),
                    ),
                    Column::from_floats(
                        Some(format!("v{t}")),
                        (0..rows).map(|i| Some(i as f64)).collect(),
                    ),
                ],
            )
            .unwrap(),
        ));
    }
    let index = DiscoveryIndex::build(tables.clone());
    let cfg = PathConfig {
        max_hops: 1,
        ..Default::default()
    };
    let candidates = generate_candidates(&din, &index, &cfg, 10 * n);
    (din, candidates, Materializer::new(tables))
}

#[test]
fn theorem3_reaches_theta_on_set_cover() {
    // Universe {0..9}; three sets cover it exactly; distractors cover
    // nothing new.
    let covers = vec![
        vec![0, 1, 2, 3],
        vec![4, 5, 6],
        vec![7, 8, 9],
        vec![0, 1],
        vec![4, 5],
        vec![9],
        vec![],
        vec![],
    ];
    let (din, candidates, mat) = fixture(covers.len());
    assert_eq!(candidates.len(), covers.len());
    let task = SetCoverTask {
        covers,
        universe: 10,
    };
    let profiles = vec![vec![0.5, 0.5]; candidates.len()];
    let names = vec!["a".to_string(), "b".to_string()];
    let inputs = SearchInputs {
        din: &din,
        target_column: None,
        candidates: &candidates,
        profiles: &profiles,
        profile_names: &names,
        materializer: &mat,
        task: &task,
        threads: 1,
    };
    let result = Metam::new(MetamConfig {
        theta: Some(1.0),
        max_queries: 5000,
        seed: 0,
        ..Default::default()
    })
    .run(&inputs);
    assert_eq!(
        result.stop_reason,
        StopReason::ThetaReached,
        "Theorem 3: θ achievable ⇒ found"
    );
    assert!((result.utility - 1.0).abs() < 1e-12);
    // The minimal cover is the three big sets.
    assert_eq!(
        result.selected,
        vec![0, 1, 2],
        "minimality finds the optimal cover"
    );
}

#[test]
fn greedy_matches_submodular_bound() {
    // Lemma 3 flavour: on a monotone submodular utility, the greedy value
    // after k rounds is ≥ (1 − 1/e)·OPT.
    let covers: Vec<Vec<usize>> = vec![
        (0..30).collect(),  // big set
        (20..45).collect(), // overlaps
        (40..60).collect(),
        (0..10).collect(),
        (55..60).collect(),
    ];
    let (din, candidates, mat) = fixture(covers.len());
    let task = SetCoverTask {
        covers,
        universe: 60,
    };
    let profiles = vec![vec![0.5]; candidates.len()];
    let names = vec!["p".to_string()];
    let inputs = SearchInputs {
        din: &din,
        target_column: None,
        candidates: &candidates,
        profiles: &profiles,
        profile_names: &names,
        materializer: &mat,
        task: &task,
        threads: 1,
    };
    let result = Metam::new(MetamConfig {
        max_queries: 2000,
        seed: 1,
        minimality: false,
        ..Default::default()
    })
    .run(&inputs);
    // OPT = 1.0 (all 60 coverable); greedy bound (1 − 1/e) ≈ 0.632.
    assert!(
        result.utility >= 1.0 - 1.0 / std::f64::consts::E,
        "greedy value {} below the submodular bound",
        result.utility
    );
}

#[test]
fn np_hardness_gadget_utility_is_cover_fraction() {
    // Sanity of the Theorem 1 reduction: utility equals |∪ S_i| / n.
    let covers = vec![vec![0, 1], vec![1, 2]];
    let (din, candidates, mat) = fixture(2);
    let task = SetCoverTask {
        covers,
        universe: 4,
    };
    let profiles = vec![vec![0.0]; candidates.len()];
    let names = vec!["p".to_string()];
    let inputs = SearchInputs {
        din: &din,
        target_column: None,
        candidates: &candidates,
        profiles: &profiles,
        profile_names: &names,
        materializer: &mat,
        task: &task,
        threads: 1,
    };
    let mut engine = QueryEngine::new(&inputs, 100);
    assert_eq!(engine.utility_of(&BTreeSet::new()).unwrap(), 0.0);
    assert_eq!(engine.utility_of(&BTreeSet::from([0])).unwrap(), 0.5);
    assert_eq!(engine.utility_of(&BTreeSet::from([0, 1])).unwrap(), 0.75);
}
