//! Builder misuse must fail with typed [`SessionError`]s, never panic —
//! the `Session` front door is the CLI's error surface.

use std::fs;
use std::path::PathBuf;

use metam::session::{RoundEvent, Session, SessionError};
use metam::{MetamConfig, Method};

fn tmp_lake(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metam-session-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let rows: String = (0..30)
        .map(|i| format!("z{i},{}\n", if i % 2 == 0 { "a" } else { "b" }))
        .collect();
    fs::write(dir.join("din.csv"), format!("zip,label\n{rows}")).unwrap();
    let ext: String = (0..30).map(|i| format!("z{i},{}\n", i as f64)).collect();
    fs::write(dir.join("ext.csv"), format!("zipcode,rate\n{ext}")).unwrap();
    dir
}

#[test]
fn missing_task_is_typed() {
    let dir = tmp_lake("no-task");
    let err = Session::from_lake(&dir)
        .din("din")
        .prepare()
        .expect_err("a lake has no default task");
    assert!(matches!(err, SessionError::MissingTask), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_input_is_typed() {
    let dir = tmp_lake("no-din");
    let err = Session::from_lake(&dir)
        .task_spec("classification:label")
        .prepare()
        .expect_err("a lake needs .din(...)");
    assert!(matches!(err, SessionError::MissingInput), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unknown_task_kind_is_typed() {
    let dir = tmp_lake("bad-kind");
    let err = Session::from_lake(&dir)
        .din("din")
        .task_spec("frobnicate:label")
        .prepare()
        .expect_err("unknown kind");
    assert!(matches!(err, SessionError::BadTaskSpec(_)), "{err}");
    // Malformed clustering arity is also a typed spec error.
    let err = Session::from_lake(&dir)
        .din("din")
        .task_spec("clustering:zero")
        .prepare()
        .expect_err("non-numeric k");
    assert!(matches!(err, SessionError::BadTaskSpec(_)), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn absent_target_is_typed() {
    let dir = tmp_lake("bad-target");
    let err = Session::from_lake(&dir)
        .din("din")
        .task_spec("classification:label")
        .target("nope")
        .prepare()
        .expect_err("target absent from din");
    match err {
        SessionError::TargetNotFound { target, din } => {
            assert_eq!(target, "nope");
            assert_eq!(din, "din");
        }
        other => panic!("expected TargetNotFound, got {other}"),
    }
    // The same misuse over a synthetic scenario is equally typed.
    let scenario = metam::datagen::repo::price_classification(1);
    let err = Session::from_scenario(scenario)
        .target("missing_column")
        .prepare()
        .expect_err("bad explicit target");
    assert!(matches!(err, SessionError::TargetNotFound { .. }), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn scenario_prepare_produces_aligned_artifacts() {
    // (Formerly covered by the removed pipeline::prepare wrapper tests.)
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};
    let scenario = build_supervised(&SupervisedConfig {
        n_rows: 200,
        n_informative: 2,
        n_irrelevant_tables: 3,
        n_erroneous_tables: 2,
        ..Default::default()
    });
    let p = Session::from_scenario(scenario)
        .seed(1)
        .prepare()
        .expect("scenario preparation is infallible");
    assert!(!p.candidates.is_empty());
    assert_eq!(p.candidates.len(), p.profiles.len());
    assert_eq!(p.profile_names.len(), 5, "default profile set has 5");
    assert!(p.target_column.is_some());
    let rel = p.relevance.as_deref().expect("scenarios carry truth");
    assert_eq!(rel.len(), p.candidates.len());
    assert!(
        rel.iter().any(|&r| r > 0.0),
        "planted candidates must be discoverable"
    );
    assert!(rel.iter().all(|&r| (0.0..=1.0).contains(&r)));
}

#[test]
fn unresolvable_source_default_target_degrades_to_unsupervised() {
    // A spec target absent from din is tolerated when it comes from the
    // *source* (scenario defaults), not the user: target_column = None
    // instead of a TargetNotFound error.
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};
    let mut scenario = build_supervised(&SupervisedConfig {
        n_rows: 60,
        n_irrelevant_tables: 1,
        ..Default::default()
    });
    scenario.spec = metam_datagen::TaskSpec::Classification {
        target: "ghost_column".into(),
    };
    let p = Session::from_scenario(scenario)
        .seed(2)
        .prepare()
        .expect("lenient for source defaults");
    assert_eq!(p.target_column, None, "degrades instead of erroring");
}

#[test]
fn zero_budget_is_typed() {
    let dir = tmp_lake("zero-budget");
    let err = Session::from_lake(&dir)
        .din("din")
        .task_spec("classification:label")
        .budget(0)
        .prepare()
        .expect_err("budget 0 can never query");
    assert!(matches!(err, SessionError::InvalidBudget), "{err}");
    // run() validates too, before any expensive work.
    let err = Session::from_lake(&dir)
        .din("din")
        .task_spec("classification:label")
        .budget(0)
        .run(Method::Metam(MetamConfig::default()))
        .expect_err("budget 0 rejected by run");
    assert!(matches!(err, SessionError::InvalidBudget), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn unknown_table_is_typed() {
    let dir = tmp_lake("no-table");
    let err = Session::from_lake(&dir)
        .din("zzz")
        .task_spec("classification:label")
        .prepare()
        .expect_err("no such table or file");
    assert!(matches!(err, SessionError::Lake(_)), "{err}");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn run_reports_budget_and_streams_rounds() {
    let dir = tmp_lake("report");
    // Arc<Mutex>: session observers must be Send (sessions move across
    // threads whole).
    let rounds: std::sync::Arc<std::sync::Mutex<Vec<(usize, usize)>>> = Default::default();
    let sink = std::sync::Arc::clone(&rounds);
    let report = Session::from_lake(&dir)
        .din("din")
        .task_spec("classification:label")
        .seed(3)
        .budget(40)
        .observer(move |e: &RoundEvent<'_>| {
            sink.lock().expect("unpoisoned").push((e.round, e.queries));
        })
        .run(Method::Metam(MetamConfig::default()))
        .expect("run");
    let rounds = rounds.lock().expect("unpoisoned");
    assert_eq!(report.method, "Metam");
    assert_eq!(report.din_name, "din");
    assert_eq!(report.din_rows, 30);
    assert!(report.queries <= 40);
    assert_eq!(report.budget, 40);
    assert_eq!(report.queries_remaining(), 40 - report.queries);
    assert!(report.stop_reason.is_some());
    assert!(report.n_clusters.is_some());
    assert!(report.utility >= report.base_utility);
    assert!(!report.trace.is_empty());
    assert!(report.prepare_secs >= 0.0 && report.search_secs >= 0.0);
    assert_eq!(report.selected.len(), report.selected_names.len());
    assert!(!rounds.is_empty(), "the observer must see every round");
    assert!(
        rounds.windows(2).all(|w| w[0].0 < w[1].0),
        "rounds arrive in order: {rounds:?}"
    );
    assert!(rounds.iter().all(|&(_, q)| q <= 40));

    // JSON payload is well-formed enough for scripting.
    let json = report.to_json();
    assert!(json.contains("\"method\":\"Metam\""));
    assert!(json.contains("\"budget\":40"));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn observed_runs_match_unobserved_runs() {
    // Observation must be passive: same seed → bit-identical outcome.
    let scenario = metam::datagen::repo::price_classification(9);
    let observed = Session::from_scenario(scenario.clone())
        .seed(9)
        .theta(0.75)
        .budget(200)
        .observer(|_: &RoundEvent<'_>| {})
        .run(Method::Metam(MetamConfig::default()))
        .expect("observed run");
    let unobserved = Session::from_scenario(scenario)
        .seed(9)
        .theta(0.75)
        .budget(200)
        .run(Method::Metam(MetamConfig::default()))
        .expect("unobserved run");
    assert_eq!(observed.selected, unobserved.selected);
    assert_eq!(observed.queries, unobserved.queries);
    assert_eq!(observed.utility, unobserved.utility);
}

#[test]
fn baselines_run_without_metam_only_fields() {
    let scenario = metam::datagen::repo::price_classification(4);
    let report = Session::from_scenario(scenario)
        .seed(4)
        .theta(0.75)
        .budget(60)
        .run(Method::Uniform { seed: 4 })
        .expect("uniform run");
    assert_eq!(report.method, "Uniform");
    assert!(report.stop_reason.is_none());
    assert!(report.n_clusters.is_none());
    assert!(report.queries <= 60);
    assert!(report.to_json().contains("\"stop_reason\":null"));
}

#[test]
fn clustering_spec_runs_unsupervised_over_a_lake() {
    let dir = tmp_lake("clustering");
    // A bimodal external column that carves the rows into two groups.
    let ext: String = (0..30)
        .map(|i| format!("z{i},{}\n", if i % 2 == 0 { 0.0 } else { 100.0 }))
        .collect();
    fs::write(dir.join("groups.csv"), format!("zipcode,g\n{ext}")).unwrap();
    let report = Session::from_lake(&dir)
        .din("din")
        .task_spec("clustering:2")
        .seed(5)
        .budget(30)
        .run(Method::Metam(MetamConfig::default()))
        .expect("clustering run");
    assert!((0.0..=1.0).contains(&report.utility));
    assert!(report.queries <= 30);
    let _ = fs::remove_dir_all(&dir);
}
