//! Empirical validation of the paper's §III properties P1–P3 on generated
//! data — the reproduction of the paper's own validation experiments.

use std::collections::BTreeSet;

use metam::core::engine::QueryEngine;
use metam::profile::linf_distance;
use metam::Session;
use metam_datagen::supervised::{build_supervised, SupervisedConfig};

fn scenario(seed: u64) -> metam::datagen::Scenario {
    build_supervised(&SupervisedConfig {
        seed,
        n_rows: 300,
        n_informative: 2,
        n_duplicates: 2,
        n_irrelevant_tables: 8,
        n_erroneous_tables: 4,
        ..Default::default()
    })
}

/// P2: candidates with similar profile vectors have similar utility.
/// The paper found ≥ 85 % of pairs with similarity ∈ [0.9, 1] differ in
/// utility by < 0.02; we check the same statistic with a slightly looser
/// bound (our utilities are forest F-scores with sampling noise).
#[test]
fn p2_similar_profiles_similar_utility() {
    let prepared = Session::from_scenario(scenario(11))
        .seed(11)
        .prepare()
        .expect("prepare");
    let inputs = prepared.inputs();
    let mut engine = QueryEngine::new(&inputs, usize::MAX);
    let n = prepared.candidates.len().min(40);
    let utilities: Vec<f64> = (0..n)
        .map(|i| engine.utility_of(&BTreeSet::from([i])).unwrap())
        .collect();

    let mut close_pairs = 0usize;
    let mut consistent = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = linf_distance(&prepared.profiles[i], &prepared.profiles[j]);
            if d <= 0.1 {
                close_pairs += 1;
                if (utilities[i] - utilities[j]).abs() < 0.05 {
                    consistent += 1;
                }
            }
        }
    }
    assert!(
        close_pairs >= 10,
        "need enough close pairs to test P2: {close_pairs}"
    );
    let ratio = consistent as f64 / close_pairs as f64;
    assert!(
        ratio >= 0.75,
        "P2 violated: only {ratio:.2} of {close_pairs} close pairs have similar utility"
    );
}

/// P3: the monotonicity-certification wrapper never reports a drop.
#[test]
fn p3_certification_never_decreases() {
    let prepared = Session::from_scenario(scenario(12))
        .seed(12)
        .prepare()
        .expect("prepare");
    let inputs = prepared.inputs();
    let mut engine = QueryEngine::new(&inputs, usize::MAX);
    let base: BTreeSet<usize> = BTreeSet::new();
    let base_u = engine.utility_of(&base).unwrap();
    let mut current = base;
    let mut current_u = base_u;
    for c in 0..prepared.candidates.len().min(25) {
        let (effective, _raw, ignored) = engine.utility_extend(&current, c, true).unwrap();
        assert!(
            effective >= current_u - 1e-12,
            "certified utility dropped: {current_u} → {effective}"
        );
        if !ignored && effective > current_u {
            current.insert(c);
            current_u = effective;
        }
    }
}

/// P1 empirical stats: most candidates are useless — fewer than 20 % of
/// singleton augmentations improve the base utility meaningfully.
#[test]
fn p1_most_candidates_are_useless() {
    let prepared = Session::from_scenario(scenario(13))
        .seed(13)
        .prepare()
        .expect("prepare");
    let inputs = prepared.inputs();
    let mut engine = QueryEngine::new(&inputs, usize::MAX);
    let base = engine.base_utility().unwrap();
    let n = prepared.candidates.len();
    let helpful = (0..n)
        .filter(|&i| {
            engine
                .utility_of(&BTreeSet::from([i]))
                .map(|u| u > base + 0.03)
                .unwrap_or(false)
        })
        .count();
    assert!(
        (helpful as f64) < 0.25 * n as f64,
        "too many helpful candidates ({helpful}/{n}); P1 scenarios need sparse signal"
    );
    assert!(helpful > 0, "at least the planted signals must help");
}

/// Erroneous joins (permuted keys) must not look useful.
#[test]
fn erroneous_candidates_do_not_help() {
    let scenario = scenario(14);
    let erroneous_tables = scenario.ground_truth.erroneous_tables.clone();
    let prepared = Session::from_scenario(scenario)
        .seed(14)
        .prepare()
        .expect("prepare");
    let inputs = prepared.inputs();
    let mut engine = QueryEngine::new(&inputs, usize::MAX);
    let base = engine.base_utility().unwrap();
    let erroneous: Vec<usize> = (0..prepared.candidates.len())
        .filter(|&i| erroneous_tables.contains(&prepared.candidates[i].source_table))
        .collect();
    assert!(
        !erroneous.is_empty(),
        "scenario must contain erroneous candidates"
    );
    for &e in erroneous.iter().take(6) {
        let u = engine.utility_of(&BTreeSet::from([e])).unwrap();
        assert!(
            u <= base + 0.06,
            "erroneous candidate {} looks useful: {base} → {u}",
            prepared.candidates[e].name
        );
    }
}
