//! End-to-end telemetry guarantees: observation is **passive** (a run with
//! a full observer and a live trace sink is bit-identical to a bare run),
//! the per-query event stream is internally consistent, and every emitted
//! JSONL trace line obeys the schema `metam trace-validate` enforces.

use std::io::Write;
use std::sync::{Arc, Mutex, PoisonError};

use metam::core::trace::TracePoint;
use metam::discovery::CandidateId;
use metam::obs;
use metam::obs::json::{parse, Value};
use metam::{
    run_method, run_method_with_observer, MetamConfig, Method, QueryEvent, QueryKind, RoundEvent,
    RunObserver, Session, StopReason,
};
use metam_datagen::causal_scenario::{build_causal, CausalConfig, CausalKind};

/// The trace sink is process-global; tests that install one take this lock
/// so parallel test threads never see each other's lines.
static SINK_LOCK: Mutex<()> = Mutex::new(());

/// An in-memory `Write` sink the test keeps a handle on.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> String {
        String::from_utf8_lossy(&self.0.lock().unwrap_or_else(PoisonError::into_inner)).into_owned()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Owned copy of one [`QueryEvent`].
#[derive(Debug, Clone)]
struct OwnedQuery {
    query: usize,
    kind: QueryKind,
    set: Vec<CandidateId>,
    best_utility: f64,
    queries_remaining: usize,
}

/// An observer that implements **every** callback and keeps everything.
#[derive(Debug, Default)]
struct FullRecorder {
    start: Option<(usize, usize)>,
    events: Vec<OwnedQuery>,
    rounds: Vec<(usize, usize)>,
    finish: Option<StopReason>,
}

impl RunObserver for FullRecorder {
    fn on_search_start(&mut self, n_candidates: usize, n_clusters: usize) {
        self.start = Some((n_candidates, n_clusters));
    }

    fn on_query(&mut self, event: &QueryEvent<'_>) {
        self.events.push(OwnedQuery {
            query: event.query,
            kind: event.kind,
            set: event.set.to_vec(),
            best_utility: event.best_utility,
            queries_remaining: event.queries_remaining,
        });
    }

    fn on_round(&mut self, event: &RoundEvent<'_>) {
        self.rounds.push((event.round, event.queries));
    }

    fn on_finish(&mut self, stop_reason: StopReason) {
        self.finish = Some(stop_reason);
    }
}

fn howto_prepared() -> metam::Prepared {
    let scenario = build_causal(&CausalConfig {
        seed: 32,
        kind: CausalKind::HowTo,
        n_irrelevant_tables: 20,
        n_erroneous_tables: 6,
        n_confounder_tables: 8,
        ..Default::default()
    });
    Session::from_scenario(scenario)
        .seed(32)
        .prepare()
        .expect("prepare")
}

/// The passivity regression: Metam on the causal how-to fixture, run bare
/// and then with a full observer plus a live JSONL sink, must produce a
/// bit-identical solution, query count and trace.
#[test]
fn instrumented_run_is_bit_identical_to_bare_run() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::disable();
    let prepared = howto_prepared();
    let method = Method::Metam(MetamConfig {
        seed: 32,
        ..Default::default()
    });

    // Bare: no observer, no sink — the engine runs untimed.
    let bare = run_method(&method, &prepared.inputs(), Some(1.0), 250);

    // Instrumented: every callback live AND a trace sink installed.
    let buf = SharedBuf::default();
    obs::install_writer(Box::new(buf.clone()));
    let mut rec = FullRecorder::default();
    let observed = run_method_with_observer(&method, &prepared.inputs(), Some(1.0), 250, &mut rec);
    obs::flush();
    obs::disable();

    assert_eq!(bare.selected, observed.selected, "same solution");
    assert_eq!(bare.utility, observed.utility, "bitwise-equal utility");
    assert_eq!(bare.queries, observed.queries, "same budget spend");
    assert_eq!(bare.trace, observed.trace, "identical trace");
    // Regression pin: instrumentation must never change the spend on this
    // fixture (seed 32, how-to). Update only for deliberate algorithm
    // changes, never for observability ones.
    assert_eq!(observed.queries, 30, "seed-32 how-to query-count pin");

    // The observer saw the whole run, consistently with the result.
    let (n_candidates, n_clusters) = rec.start.expect("on_search_start fired");
    assert_eq!(n_candidates, prepared.candidates.len());
    assert!(n_clusters > 0, "Metam clusters before searching");
    assert_eq!(
        rec.events.len(),
        observed.queries,
        "one event per counted query"
    );
    for (i, e) in rec.events.iter().enumerate() {
        assert_eq!(e.query, i + 1, "query indices are 1-based and dense");
        assert_eq!(e.queries_remaining, 250 - e.query);
        assert!(e.set.windows(2).all(|w| w[0] < w[1]), "sets are ascending");
    }
    assert!(
        rec.events
            .windows(2)
            .all(|w| w[0].best_utility <= w[1].best_utility),
        "best utility is monotone"
    );
    let from_events: Vec<TracePoint> = rec
        .events
        .iter()
        .map(|e| TracePoint {
            queries: e.query,
            utility: e.best_utility,
        })
        .collect();
    assert_eq!(from_events, observed.trace, "events rebuild the trace");
    let kinds: Vec<QueryKind> = rec.events.iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&QueryKind::Base), "base query observed");
    assert!(
        kinds.contains(&QueryKind::Sequential) || kinds.contains(&QueryKind::Group),
        "main-loop queries observed"
    );
    assert!(!rec.rounds.is_empty(), "Metam reports rounds");
    assert!(rec.finish.is_some(), "on_finish fired");

    // The sink captured a validatable trace of the same run.
    let text = buf.contents();
    let (_, events) = obs::validate_trace(&text).expect("trace validates");
    let query_lines = text
        .lines()
        .filter(|l| l.contains("\"event\":\"query\""))
        .count();
    assert_eq!(query_lines, observed.queries, "one JSONL line per query");
    assert!(events > query_lines, "start/finish events also emitted");
}

/// Every trace line the whole pipeline emits (session prepare, search,
/// per-query events, finish) obeys the JSONL schema, and the CLI-facing
/// counts line up with the run report.
#[test]
fn emitted_trace_obeys_schema_end_to_end() {
    let _guard = SINK_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    obs::disable();
    obs::reset_metrics();
    let buf = SharedBuf::default();
    obs::install_writer(Box::new(buf.clone()));
    let scenario = metam::datagen::repo::price_classification(5);
    let report = Session::from_scenario(scenario)
        .seed(5)
        .budget(60)
        .run(Method::Mw { seed: 5 })
        .expect("scenario sessions are infallible");
    obs::flush();
    obs::disable();

    let text = buf.contents();
    let (spans, events) = obs::validate_trace(&text).expect("trace validates");
    assert!(spans >= 4, "prepare stages + session spans, got {spans}");
    assert!(events > 0);

    let known_kinds = ["base", "sequential", "group", "probe", "minimality"];
    let mut query_lines = 0usize;
    let mut finish_lines = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let v = parse(line).expect("line parses");
        match v.get("event").and_then(Value::as_str) {
            Some("query") => {
                query_lines += 1;
                let kind = v.get("name").and_then(Value::as_str).expect("kind label");
                assert!(known_kinds.contains(&kind), "unknown kind {kind}");
                for field in ["query", "utility", "best_utility", "delta", "secs"] {
                    assert!(
                        v.get(field).and_then(Value::as_f64).is_some(),
                        "query event missing {field}: {line}"
                    );
                }
            }
            Some("finish") => {
                finish_lines += 1;
                assert!(
                    v.get("queries").and_then(Value::as_f64).is_some(),
                    "finish carries the spend: {line}"
                );
            }
            _ => {}
        }
    }
    assert_eq!(
        query_lines, report.queries,
        "one query line per counted query"
    );
    assert_eq!(finish_lines, 1);

    // The report carries the metrics snapshot the run accumulated.
    let metrics = report.metrics.as_ref().expect("metrics recorded");
    let json = metrics.to_json();
    assert!(json.contains("engine.queries"), "{json}");
    assert!(json.contains("span."), "span histograms recorded: {json}");
}
