//! What-if and how-to analyses end to end: Metam recovers the planted
//! causal structure while baselines burn queries (Fig. 3c/3d at test
//! scale).

use metam::Session;
use metam::{run_method, Metam, MetamConfig, Method, StopReason};
use metam_datagen::causal_scenario::{build_causal, CausalConfig, CausalKind};

fn whatif_scenario(seed: u64) -> metam::datagen::Scenario {
    build_causal(&CausalConfig {
        seed,
        n_irrelevant_tables: 20,
        n_erroneous_tables: 6,
        n_confounder_tables: 8,
        ..Default::default()
    })
}

#[test]
fn whatif_recovers_all_affected_attributes() {
    let prepared = Session::from_scenario(whatif_scenario(31))
        .seed(31)
        .prepare()
        .expect("prepare");
    let result = Metam::new(MetamConfig {
        theta: Some(1.0),
        max_queries: 400,
        seed: 31,
        ..Default::default()
    })
    .run(&prepared.inputs());
    assert_eq!(
        result.stop_reason,
        StopReason::ThetaReached,
        "u={} after {} queries",
        result.utility,
        result.queries
    );
    // The selected set must be the affected-attribute tables.
    let names: Vec<&str> = result
        .selected
        .iter()
        .map(|&id| prepared.candidates[id].source_table.as_str())
        .collect();
    assert!(
        names.iter().any(|n| n.contains("writing_score")),
        "{names:?}"
    );
    assert!(names.iter().any(|n| n.contains("math_score")), "{names:?}");
    assert!(
        names.iter().any(|n| n.contains("college_admission")),
        "{names:?}"
    );
}

#[test]
fn howto_beats_uniform_on_queries() {
    let scenario = build_causal(&CausalConfig {
        seed: 32,
        kind: CausalKind::HowTo,
        n_irrelevant_tables: 20,
        n_erroneous_tables: 6,
        n_confounder_tables: 8,
        ..Default::default()
    });
    let prepared = Session::from_scenario(scenario)
        .seed(32)
        .prepare()
        .expect("prepare");
    let budget = 250;
    let metam_r = run_method(
        &Method::Metam(MetamConfig {
            seed: 32,
            ..Default::default()
        }),
        &prepared.inputs(),
        Some(1.0),
        budget,
    );
    let uniform_r = run_method(
        &Method::Uniform { seed: 32 },
        &prepared.inputs(),
        Some(1.0),
        budget,
    );
    assert!(
        metam_r.utility >= uniform_r.utility,
        "metam {} vs uniform {}",
        metam_r.utility,
        uniform_r.utility
    );
    if metam_r.utility >= 1.0 && uniform_r.utility >= 1.0 {
        assert!(metam_r.queries <= uniform_r.queries);
    }
}

#[test]
fn confounders_are_not_selected() {
    let prepared = Session::from_scenario(whatif_scenario(33))
        .seed(33)
        .prepare()
        .expect("prepare");
    let result = Metam::new(MetamConfig {
        theta: Some(1.0),
        max_queries: 400,
        seed: 33,
        ..Default::default()
    })
    .run(&prepared.inputs());
    for &id in &result.selected {
        let table = &prepared.candidates[id].source_table;
        assert!(
            !table.starts_with("poll_"),
            "confounder decoy {table} must not survive the minimality check"
        );
    }
}
