//! The `metam` command-line interface.
//!
//! ```text
//! metam demo <dir> [--seed N]              seed a synthetic CSV lake
//! metam scan <dir>                         build/refresh the catalog
//! metam profile <dir> [--table NAME] [--json]
//! metam discover <dir> --din NAME --task kind:arg [options] [--json]
//!                [--trace FILE|stderr]
//! metam trace-validate <file>              check a JSONL trace's schema
//! ```
//!
//! `discover` runs the full goal-oriented pipeline over the lake through
//! [`Session`](crate::session::Session): per-round progress streams to
//! stderr via a [`RunObserver`](crate::session::RunObserver) while the
//! search is in flight, and the final [`RunReport`] prints as text or — with
//! `--json` — as a machine-readable payload for scripting and bench
//! harnesses.
//!
//! Telemetry: `--trace <path|stderr>` (or the `METAM_TRACE` environment
//! variable) installs a JSONL event sink; every span close, query, round
//! and finish event in the pipeline writes one line. The `--json` report
//! carries a `metrics` section (span timings, engine counters, cache
//! stats) either way. Tracing is passive — results are bit-identical with
//! it on or off.

use metam_core::{MetamConfig, Method};
use metam_datagen::repo::price_classification;
use metam_lake::{export_scenario, parse_task, LakeCatalog, LakeError, TaskKind};

use crate::session::{RoundEvent, RunObserver, RunReport, Session};

const USAGE: &str = "\
usage: metam <command> [args]

commands:
  demo <dir> [--seed N]       write a synthetic demo lake (price scenario)
  scan <dir>                  scan a directory of CSVs into a catalog
  profile <dir> [--table T] [--json]
                              print cached per-column statistics
  discover <dir> --din NAME --task kind:arg
           [--theta T] [--budget N|unbounded] [--seed N]
           [--max-candidates N] [--sample N] [--threads N] [--json]
           [--trace FILE|stderr]
                              run goal-oriented discovery over the lake
  serve <dir>... [--addr A] [--workers N] [--queue N]
        [--max-budget N] [--stop-file FILE]
                              hold the lakes hot and answer NDJSON
                              requests over TCP until shutdown
  request <addr> <json>       send one NDJSON request line to a daemon
  trace-validate <file>       check a JSONL trace file against the schema

task kinds: classification:<column> | regression:<column> | clustering:<k>
`--din` accepts a catalog table name or a path to a CSV file.
`--json` prints a machine-readable report on stdout (progress still
streams on stderr).
`--trace` (or METAM_TRACE=<path|stderr>) writes one JSONL telemetry line
per span/query/round/finish event; tracing never changes results.
`scan` profiles changed files in parallel (worker count from
METAM_SCAN_THREADS, default: available cores).
`discover --threads` (or METAM_SEARCH_THREADS) batches search queries
over the same worker pool; results are byte-identical whatever the
thread count (default 1).
`serve` binds loopback `127.0.0.1:0` by default and prints the bound
address; verbs are discover/profile/scan/lakes/status/shutdown (see
README \"Serving\"). `--workers`/`--queue` set the admission ceiling
(defaults 2/16, env METAM_SERVE_WORKERS / METAM_SERVE_QUEUE);
`--max-budget` caps any single request's query budget; `--stop-file`
drains and exits once the file appears (Ctrl-C-equivalent for scripts).
`request` prints the daemon's reply line and exits 0 only on `ok`.";

type CliResult<T> = Result<T, Box<dyn std::error::Error>>;

fn bad(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    Box::new(LakeError::BadArgument(msg.into()))
}

/// Parsed flag list: positional args + `--key value` pairs + boolean flags.
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
}

impl Flags {
    /// Parse `args`; flags named in `bools` take no value.
    fn parse(args: &[String], bools: &[&str]) -> CliResult<Flags> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut switches = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if bools.contains(&key) {
                    switches.push(key.to_string());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| bad(format!("flag --{key} needs a value")))?;
                pairs.push((key.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Flags {
            positional,
            pairs,
            switches,
        })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|k| k == key)
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str) -> CliResult<Option<T>> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| bad(format!("--{key} needs a number, got {raw:?}"))),
        }
    }

    fn reject_unknown(&self, allowed: &[&str]) -> CliResult<()> {
        for k in self
            .pairs
            .iter()
            .map(|(k, _)| k)
            .chain(self.switches.iter())
        {
            if !allowed.contains(&k.as_str()) {
                return Err(bad(format!("unknown flag --{k}")));
            }
        }
        Ok(())
    }
}

/// Run the CLI on `args` (without the program name). Returns the exit code.
pub fn run(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn dispatch(args: &[String]) -> CliResult<()> {
    // Honor METAM_TRACE=<path|stderr> for every command; `discover
    // --trace` below overrides it.
    metam_obs::init_from_env();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return Err(bad("no command given"));
    };
    let rest = &args[1..];
    match command.as_str() {
        "demo" => cmd_demo(rest),
        "scan" => cmd_scan(rest),
        "profile" => cmd_profile(rest),
        "discover" => cmd_discover(rest),
        "serve" => cmd_serve(rest),
        "request" => cmd_request(rest),
        "trace-validate" => cmd_trace_validate(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("{USAGE}");
            Err(bad(format!("unknown command {other:?}")))
        }
    }
}

fn lake_dir(flags: &Flags) -> CliResult<&str> {
    flags
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| bad("missing <dir> argument"))
}

fn cmd_demo(args: &[String]) -> CliResult<()> {
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&["seed"])?;
    let dir = lake_dir(&flags)?;
    let seed = flags.get_num::<u64>("seed")?.unwrap_or(7);
    let scenario = price_classification(seed);
    let report = export_scenario(&scenario, dir)?;
    println!(
        "wrote demo lake to {dir}: din.csv + {} tables (seed {seed})",
        report.table_files.len()
    );
    println!(
        "next: metam scan {dir} && metam discover {dir} --din din --task classification:label"
    );
    Ok(())
}

fn cmd_scan(args: &[String]) -> CliResult<()> {
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&[])?;
    let dir = lake_dir(&flags)?;
    let catalog = LakeCatalog::scan(dir)?;
    println!("{:<24} {:>8} {:>6}", "table", "rows", "cols");
    for entry in catalog.entries() {
        println!("{:<24} {:>8} {:>6}", entry.name, entry.nrows, entry.ncols);
    }
    println!(
        "{} tables, {} rows, {} columns | profile cache: {} hit(s), {} miss(es) | sketches: {} fresh, {} written",
        catalog.len(),
        catalog.total_rows(),
        catalog.total_columns(),
        catalog.cache_hits(),
        catalog.cache_misses(),
        catalog.sketch_hits(),
        catalog.sketch_misses(),
    );
    println!(
        "catalog: {} ({} shards, {} rewritten) | table cache: {}",
        LakeCatalog::meta_dir(catalog.root()).display(),
        catalog.shard_count(),
        catalog.shards_written(),
        metam_lake::cache::cache_dir(catalog.root()).display(),
    );
    Ok(())
}

fn cmd_profile(args: &[String]) -> CliResult<()> {
    let flags = Flags::parse(args, &["json"])?;
    flags.reject_unknown(&["table", "json"])?;
    let dir = lake_dir(&flags)?;
    let catalog = LakeCatalog::scan(dir)?;
    let only = flags.get("table");
    if let Some(name) = only {
        if catalog.get(name).is_none() {
            return Err(Box::new(LakeError::UnknownTable(name.to_string())));
        }
    }
    if flags.has("json") {
        println!("{}", profile_json(&catalog, only));
        return Ok(());
    }
    for entry in catalog.entries() {
        if only.is_some_and(|n| n != entry.name) {
            continue;
        }
        println!("\n== {} ({} rows) ==", entry.name, entry.nrows);
        println!(
            "{:<20} {:>6} {:>7} {:>9} {:>11} {:>11} {:>11}",
            "column", "type", "nulls", "distinct", "min", "max", "mean"
        );
        for (i, c) in entry.columns.iter().enumerate() {
            println!(
                "{:<20} {:>6} {:>7} {:>9} {:>11} {:>11} {:>11}",
                c.display_name(i),
                metam_lake::stats::dtype_to_str(c.dtype),
                c.null_count,
                c.distinct_count,
                fmt_opt(c.min),
                fmt_opt(c.max),
                fmt_opt(c.mean),
            );
        }
    }
    Ok(())
}

/// Machine-readable catalog statistics (`profile --json`): the shared
/// renderer in `metam-serve` (the daemon's `profile` verb returns the
/// same payload, so the two surfaces can never drift).
fn profile_json(catalog: &LakeCatalog, only: Option<&str>) -> String {
    metam_serve::render::profile_json(catalog, only)
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}"))
        .unwrap_or_else(|| "-".to_string())
}

/// Streams per-round progress to stderr while a discover run is in flight.
struct ProgressObserver;

impl RunObserver for ProgressObserver {
    fn on_search_start(&mut self, n_candidates: usize, n_clusters: usize) {
        eprintln!("search: {n_candidates} candidates in {n_clusters} clusters");
    }

    fn on_round(&mut self, e: &RoundEvent<'_>) {
        let spent = if e.queries_remaining == usize::MAX {
            format!("{} queries", e.queries)
        } else {
            format!("{} queries ({} remaining)", e.queries, e.queries_remaining)
        };
        eprintln!(
            "[round {}] {spent}, best utility {:.4} ({:+.4} over base), solution size {}",
            e.round,
            e.best_utility,
            e.best_utility - e.base_utility,
            e.selected.len()
        );
    }
}

fn cmd_discover(args: &[String]) -> CliResult<()> {
    let flags = Flags::parse(args, &["json"])?;
    flags.reject_unknown(&[
        "din",
        "task",
        "theta",
        "budget",
        "seed",
        "max-candidates",
        "sample",
        "threads",
        "json",
        "trace",
    ])?;
    if let Some(target) = flags.get("trace") {
        if target == "stderr" {
            metam_obs::install_stderr();
        } else {
            metam_obs::install_file(target).map_err(|e| bad(format!("--trace {target}: {e}")))?;
        }
    }
    let dir = lake_dir(&flags)?;
    let din_arg = flags
        .get("din")
        .ok_or_else(|| bad("discover needs --din"))?
        .to_string();
    let task_spec = flags
        .get("task")
        .ok_or_else(|| bad("discover needs --task kind:arg"))?
        .to_string();
    let theta = flags.get_num::<f64>("theta")?;
    let budget = match flags.get("budget") {
        Some("unbounded") => usize::MAX,
        _ => flags.get_num::<usize>("budget")?.unwrap_or(300),
    };
    let seed = flags.get_num::<u64>("seed")?.unwrap_or(0);
    // Search worker count: explicit flag beats the environment; the
    // default stays fully sequential. (Env reads live here in the CLI
    // entry module only.)
    let threads = match flags.get_num::<usize>("threads")? {
        Some(n) => n,
        None => std::env::var("METAM_SEARCH_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(1),
    }
    .max(1);
    let json = flags.has("json");

    let catalog = LakeCatalog::scan(dir)?;
    eprintln!(
        "lake {dir}: {} tables ({} cache hits, {} misses, {} shard(s) rewritten, {} sketch(es) written)",
        catalog.len(),
        catalog.cache_hits(),
        catalog.cache_misses(),
        catalog.shards_written(),
        catalog.sketch_misses(),
    );
    warn_string_regression_target(&catalog, &din_arg, &task_spec, seed);
    // The counter handles outlive the catalog's move into the session, so
    // the .mtc-vs-CSV and sketch-vs-load splits can be reported after the
    // run.
    let load_counters = catalog.load_counters();
    let sketch_counters = catalog.sketch_load_counters();

    let mut session = Session::from_catalog(catalog)
        .din(din_arg)
        .task_spec(task_spec)
        .seed(seed)
        .budget(budget)
        .threads(threads)
        .observer(ProgressObserver);
    if let Some(t) = theta {
        session = session.theta(t);
    }
    if let Some(n) = flags.get_num::<usize>("max-candidates")? {
        session = session.max_candidates(n);
    }
    if let Some(n) = flags.get_num::<usize>("sample")? {
        session = session.profile_sample(n);
    }

    let report = session.run(Method::Metam(MetamConfig::default()))?;
    metam_obs::flush();
    eprintln!(
        "sketch index: {} record(s) served, {} table-load fallback(s)",
        sketch_counters.hits(),
        sketch_counters.misses(),
    );
    eprintln!(
        "table cache: {} load(s) from .mtc, {} CSV fallback(s)",
        load_counters.hits(),
        load_counters.misses(),
    );
    if json {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        print_report(&report);
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult<()> {
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&["addr", "workers", "queue", "max-budget", "stop-file"])?;
    if flags.positional.is_empty() {
        return Err(bad("serve needs at least one lake <dir>"));
    }
    let lakes: Vec<(String, std::path::PathBuf)> = flags
        .positional
        .iter()
        .map(|dir| {
            let path = std::path::PathBuf::from(dir);
            (metam_serve::lake_name_for(&path), path)
        })
        .collect();

    // Environment defaults first, explicit flags on top.
    let mut config = metam_serve::ServeConfig::default().from_env();
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.to_string();
    }
    if let Some(n) = flags.get_num::<usize>("workers")? {
        config.workers = n.max(1);
    }
    if let Some(n) = flags.get_num::<usize>("queue")? {
        config.queue = n;
    }
    if let Some(n) = flags.get_num::<usize>("max-budget")? {
        config.max_budget = Some(n);
    }
    if let Some(file) = flags.get("stop-file") {
        config.stop_file = Some(std::path::PathBuf::from(file));
    }

    let server = crate::serve::start(&lakes, config)?;
    for (name, dir) in &lakes {
        eprintln!("serving lake {name:?} from {}", dir.display());
    }
    // The bound address is the machine-readable startup line scripts
    // scrape, so it goes to stdout and flushes before the long block.
    println!("metam serve listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.join();
    eprintln!("metam serve: drained and stopped");
    Ok(())
}

fn cmd_request(args: &[String]) -> CliResult<()> {
    use std::io::{BufRead, BufReader, Write};
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&[])?;
    let addr = flags
        .positional
        .first()
        .ok_or_else(|| bad("request needs <addr> (host:port)"))?;
    let line = flags
        .positional
        .get(1)
        .ok_or_else(|| bad("request needs a <json> request line"))?;
    if line.contains('\n') {
        return Err(bad("the request must be a single NDJSON line"));
    }
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| bad(format!("cannot connect to {addr}: {e}")))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply)?;
    let reply = reply.trim_end();
    if reply.is_empty() {
        return Err(bad(format!("{addr} closed the connection without a reply")));
    }
    // Schema check: the reply must parse as JSON and carry a boolean
    // `ok` — the same validation ci.sh relies on.
    let parsed =
        metam_obs::json::parse(reply).map_err(|e| bad(format!("reply is not valid JSON: {e}")))?;
    println!("{reply}");
    match parsed.get("ok") {
        Some(metam_obs::json::Value::Bool(true)) => Ok(()),
        Some(metam_obs::json::Value::Bool(false)) => {
            let kind = parsed
                .get("error")
                .and_then(|v| v.as_str())
                .unwrap_or("unknown");
            let message = parsed.get("message").and_then(|v| v.as_str()).unwrap_or("");
            Err(bad(format!(
                "daemon refused the request: {kind}: {message}"
            )))
        }
        _ => Err(bad("reply carries no boolean \"ok\" field")),
    }
}

fn cmd_trace_validate(args: &[String]) -> CliResult<()> {
    let flags = Flags::parse(args, &[])?;
    flags.reject_unknown(&[])?;
    let path = flags
        .positional
        .first()
        .ok_or_else(|| bad("trace-validate needs a <file> argument"))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| bad(format!("cannot read {path}: {e}")))?;
    let (spans, events) =
        metam_obs::validate_trace(&text).map_err(|e| bad(format!("{path}: {e}")))?;
    println!("{path}: ok ({spans} span line(s), {events} event line(s))");
    if spans + events == 0 {
        return Err(bad(format!("{path} holds no trace lines")));
    }
    Ok(())
}

/// A string-typed regression target silently scores 0 — warn up front when
/// the target's type can be seen coming, from catalog metadata (catalog
/// `din`) or a bounded sample read (external CSV `din`).
fn warn_string_regression_target(catalog: &LakeCatalog, din: &str, spec: &str, seed: u64) {
    let Ok(parsed) = parse_task(spec, seed) else {
        return; // Session will report the parse error with full context.
    };
    if parsed.kind != TaskKind::Regression {
        return;
    }
    let Some(target) = parsed.target.as_deref() else {
        return;
    };
    let is_string_col = if let Some(entry) = catalog.get(din) {
        entry
            .columns
            .iter()
            .enumerate()
            .any(|(i, c)| c.display_name(i) == target && c.dtype == metam_table::DataType::Str)
    } else {
        // External CSV: type a bounded prefix only — the session will read
        // the full file exactly once, later.
        csv_sample_has_string_column(std::path::Path::new(din), target)
    };
    if is_string_col {
        eprintln!(
            "warning: regression target {target:?} is a string column — utility will \
             likely be 0; did you mean classification:{target}?"
        );
    }
}

/// Best-effort check on the first lines of a CSV file: does `column` look
/// string-typed? Errors (missing file, parse failure, truncated quoted
/// record) silently report `false` — this only gates a warning.
fn csv_sample_has_string_column(path: &std::path::Path, column: &str) -> bool {
    use std::io::BufRead;
    let Ok(file) = std::fs::File::open(path) else {
        return false;
    };
    let mut sample = String::new();
    for line in std::io::BufReader::new(file).lines().take(200) {
        match line {
            Ok(l) => {
                sample.push_str(&l);
                sample.push('\n');
            }
            Err(_) => return false,
        }
    }
    metam_table::csv::read_csv_str("sample", &sample, true).is_ok_and(|t| {
        t.column_by_name(column)
            .is_ok_and(|c| c.dtype() == metam_table::DataType::Str)
    })
}

fn print_report(report: &RunReport) {
    println!(
        "din {:?}: {} rows × {} columns | {} candidate augmentations",
        report.din_name, report.din_rows, report.din_cols, report.n_candidates
    );
    println!(
        "prepare {:.2}s, search {:.2}s",
        report.prepare_secs, report.search_secs
    );
    println!(
        "\nutility: {:.4} (base {:.4}, gain {:+.4})",
        report.utility,
        report.base_utility,
        report.gain()
    );
    if report.budget == usize::MAX {
        println!("queries: {} used / unbounded budget", report.queries);
    } else {
        println!(
            "queries: {} used / {} budget ({} remaining)",
            report.queries,
            report.budget,
            report.queries_remaining()
        );
    }
    if let Some(reason) = report.stop_reason {
        println!("stop reason: {reason}");
    }
    if report.selected.is_empty() {
        println!("selected: (no augmentation improved the task)");
    } else {
        println!("selected {} augmentation(s):", report.selected.len());
        for (&id, name) in report.selected.iter().zip(&report.selected_names) {
            println!("  [{id}] {name}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_lake(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metam-cli-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scan_and_profile_commands_work() {
        let dir = tmp_lake("cmd");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\nz2,2\n").unwrap();
        let d = dir.to_string_lossy().into_owned();
        assert_eq!(run(&strs(&["scan", &d])), 0);
        assert_eq!(run(&strs(&["profile", &d])), 0);
        assert_eq!(run(&strs(&["profile", &d, "--table", "a"])), 0);
        assert_eq!(run(&strs(&["profile", &d, "--table", "zzz"])), 2);
        assert_eq!(run(&strs(&["profile", &d, "--json"])), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_json_is_machine_readable() {
        let dir = tmp_lake("json");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\nz2,\n").unwrap();
        let catalog = LakeCatalog::scan(&dir).unwrap();
        let json = profile_json(&catalog, None);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"cache\":{\"profile_hits\":0,\"profile_misses\":1"));
        assert!(json.contains("\"mtc_loads\":0,\"csv_fallbacks\":0"));
        assert!(json.contains("\"sketch_hits\":0,\"sketch_misses\":1"));
        assert!(json.contains("\"tables\":[{\"table\":\"a\""));
        assert!(json.contains("\"name\":\"v\""));
        assert!(json.contains("\"nulls\":1"));
        // Loads show up in the counters the next render reads.
        catalog.load_table("a").unwrap();
        assert!(profile_json(&catalog, None).contains("\"mtc_loads\":1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_arguments_fail_cleanly() {
        assert_eq!(run(&strs(&[])), 2);
        assert_eq!(run(&strs(&["frobnicate"])), 2);
        assert_eq!(run(&strs(&["scan"])), 2);
        assert_eq!(run(&strs(&["serve"])), 2, "serve needs a lake dir");
        assert_eq!(run(&strs(&["serve", "/nonexistent-lake"])), 2);
        assert_eq!(run(&strs(&["request"])), 2, "request needs addr + json");
        assert_eq!(run(&strs(&["request", "127.0.0.1:9"])), 2);
        assert_eq!(run(&strs(&["discover", "/nonexistent", "--task", "x"])), 2);
        let dir = tmp_lake("badflag");
        fs::write(dir.join("a.csv"), "x\n1\n").unwrap();
        let d = dir.to_string_lossy().into_owned();
        assert_eq!(run(&strs(&["scan", &d, "--bogus", "1"])), 2);
        // Misuse that must surface as typed errors, not panics.
        assert_eq!(
            run(&strs(&["discover", &d, "--din", "a", "--task", "bogus:x"])),
            2
        );
        assert_eq!(
            run(&strs(&[
                "discover",
                &d,
                "--din",
                "a",
                "--task",
                "regression:v",
                "--budget",
                "0",
            ])),
            2
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn demo_then_discover_end_to_end() {
        let dir = tmp_lake("e2e");
        let d = dir.to_string_lossy().into_owned();
        assert_eq!(run(&strs(&["demo", &d, "--seed", "7"])), 0);
        assert_eq!(run(&strs(&["scan", &d])), 0);
        assert_eq!(
            run(&strs(&[
                "discover",
                &d,
                "--din",
                "din",
                "--task",
                "classification:label",
                "--budget",
                "60",
                "--seed",
                "7",
            ])),
            0
        );
        // The same run in JSON mode (scripting surface).
        assert_eq!(
            run(&strs(&[
                "discover",
                &d,
                "--din",
                "din",
                "--task",
                "classification:label",
                "--budget",
                "60",
                "--seed",
                "7",
                "--json",
            ])),
            0
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn discover_trace_writes_validatable_jsonl() {
        let dir = tmp_lake("trace");
        let d = dir.to_string_lossy().into_owned();
        assert_eq!(run(&strs(&["demo", &d, "--seed", "3"])), 0);
        let trace = dir.join("run.jsonl");
        let t = trace.to_string_lossy().into_owned();
        assert_eq!(
            run(&strs(&[
                "discover",
                &d,
                "--din",
                "din",
                "--task",
                "classification:label",
                "--budget",
                "40",
                "--trace",
                &t,
            ])),
            0
        );
        metam_obs::disable();
        let text = fs::read_to_string(&trace).unwrap();
        let (spans, events) = metam_obs::validate_trace(&text).expect("schema-clean trace");
        assert!(spans > 0, "span lines (scan/prepare/search) present");
        assert!(events > 0, "query/round/finish events present");
        assert!(text.contains("\"event\":\"query\""));
        assert!(text.contains("\"event\":\"finish\""));
        // And the CLI validator agrees.
        assert_eq!(run(&strs(&["trace-validate", &t])), 0);
        assert_eq!(run(&strs(&["trace-validate", "/nonexistent.jsonl"])), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn discover_accepts_clustering_spec() {
        let dir = tmp_lake("clu");
        let d = dir.to_string_lossy().into_owned();
        // Two files: din with one numeric column, ext with a bimodal one.
        let din: String = (0..24).map(|i| format!("z{i},{}\n", i % 3)).collect();
        fs::write(dir.join("din.csv"), format!("zip,x\n{din}")).unwrap();
        let ext: String = (0..24)
            .map(|i| format!("z{i},{}\n", if i % 2 == 0 { 0.0 } else { 10.0 }))
            .collect();
        fs::write(dir.join("ext.csv"), format!("zipcode,v\n{ext}")).unwrap();
        assert_eq!(
            run(&strs(&[
                "discover",
                &d,
                "--din",
                "din",
                "--task",
                "clustering:2",
                "--budget",
                "30",
            ])),
            0
        );
        // An explicit unbounded budget runs to exhaustion on this tiny
        // lake and prints the "unbounded budget" line.
        assert_eq!(
            run(&strs(&[
                "discover",
                &d,
                "--din",
                "din",
                "--task",
                "clustering:2",
                "--budget",
                "unbounded",
            ])),
            0
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
