//! # metam
//!
//! A from-scratch Rust reproduction of **"Metam: Goal-Oriented Data
//! Discovery"** (Galhotra, Gong, Castro Fernandez — ICDE 2023,
//! arXiv:2304.09068).
//!
//! Metam closes the loop between *data discovery* and *data augmentation*:
//! instead of discovering joinable tables and hoping they help, it
//! repeatedly **queries the downstream task** with candidate augmentations
//! and steers the search by what it observes — clustering candidates by
//! task-independent data profiles (P2), wrapping the task for monotonicity
//! (P3), and prioritizing small solutions via group testing (P1).
//!
//! This umbrella crate re-exports the whole workspace and provides the
//! [`pipeline`] module that snaps the pieces together:
//!
//! ```
//! use metam::pipeline::prepare;
//! use metam::{Metam, MetamConfig};
//!
//! // A seeded synthetic scenario (housing-price classification).
//! let scenario = metam::datagen::repo::price_classification(7);
//! let prepared = prepare(scenario, 7);
//! let result = Metam::new(MetamConfig {
//!     theta: Some(0.8),
//!     max_queries: 300,
//!     ..Default::default()
//! })
//! .run(&prepared.inputs());
//! assert!(result.utility >= result.base_utility);
//! ```
//!
//! Beyond synthetic scenarios, [`lake`] points the same pipeline at a
//! directory of CSV files on disk: scan it into a persistent
//! [`lake::LakeCatalog`] (schema metadata + cached per-column statistics),
//! then [`pipeline::prepare_from_lake`] with any [`Task`]. The `metam`
//! binary (in `metam-lake`) wraps this as `scan` / `profile` / `discover`
//! subcommands.
//!
//! Crate map: [`table`] (columnar substrate) → [`discovery`] (join-path
//! index) / [`ml`] (models) / [`causal`] (independence tests) →
//! [`profile`] (data profiles) → [`core`] (the algorithm + baselines) →
//! [`datagen`] (synthetic repositories) → [`tasks`] (downstream tasks) →
//! [`lake`] (on-disk ingestion, catalog + CLI).

#![warn(missing_docs)]

pub use metam_causal as causal;
pub use metam_core as core;
pub use metam_datagen as datagen;
pub use metam_discovery as discovery;
pub use metam_lake as lake;
pub use metam_ml as ml;
pub use metam_profile as profile;
pub use metam_table as table;
pub use metam_tasks as tasks;

pub use metam_core::{
    run_method, Metam, MetamConfig, MetamResult, Method, RunResult, StopReason, Task,
};
pub use metam_table::Table;

pub mod pipeline;
