#![forbid(unsafe_code)]
//! # metam
//!
//! A from-scratch Rust reproduction of **"Metam: Goal-Oriented Data
//! Discovery"** (Galhotra, Gong, Castro Fernandez — ICDE 2023,
//! arXiv:2304.09068).
//!
//! Metam closes the loop between *data discovery* and *data augmentation*:
//! instead of discovering joinable tables and hoping they help, it
//! repeatedly **queries the downstream task** with candidate augmentations
//! and steers the search by what it observes — clustering candidates by
//! task-independent data profiles (P2), wrapping the task for monotonicity
//! (P3), and prioritizing small solutions via group testing (P1).
//!
//! The front door is [`session::Session`], a builder over the whole
//! pipeline regardless of where the data lives:
//!
//! ```
//! use metam::session::Session;
//! use metam::{Method, MetamConfig};
//!
//! // A seeded synthetic scenario (housing-price classification).
//! let scenario = metam::datagen::repo::price_classification(7);
//! let report = Session::from_scenario(scenario)
//!     .seed(7)
//!     .theta(0.8)
//!     .budget(300)
//!     .run(Method::Metam(MetamConfig::default()))
//!     .expect("scenario sessions are infallible");
//! assert!(report.utility >= report.base_utility);
//! ```
//!
//! The same builder points at an **on-disk CSV lake** — scan a directory
//! into a persistent [`lake::LakeCatalog`] and name an input dataset and
//! task:
//!
//! ```no_run
//! use metam::session::Session;
//!
//! let prepared = Session::from_lake("./lake")
//!     .din("din")
//!     .task_spec("classification:label")
//!     .seed(7)
//!     .prepare()?;
//! # Ok::<(), metam::session::SessionError>(())
//! ```
//!
//! [`Session::prepare`](session::Session::prepare) returns the unified
//! [`Prepared`] bundle (borrow [`Prepared::inputs`](core::Prepared::inputs)
//! to run any [`Method`] yourself);
//! [`Session::run`](session::Session::run) does prepare + search in one
//! step and returns a [`session::RunReport`] with budget accounting,
//! wall-clock timings and the utility trace. Attach a
//! [`session::RunObserver`] to stream per-query and per-round progress,
//! or set `METAM_TRACE=<path>` (see [`obs`]) to capture a JSONL trace of
//! spans, queries and metrics. The `metam` binary ([`cli`]) wraps this as
//! `scan` / `profile` / `discover` / `trace-validate` subcommands.
//!
//! Crate map: [`obs`] (tracing/metrics facade, no deps) / [`table`]
//! (columnar substrate) → [`discovery`] (join-path
//! index) / [`ml`] (models) / [`causal`] (independence tests) →
//! [`profile`] (data profiles) → [`core`] (the algorithm, baselines, and
//! the [`Prepared`] assembly) → [`datagen`] (synthetic repositories) →
//! [`tasks`] (downstream tasks) → [`lake`] (on-disk ingestion + catalog) →
//! [`session`] (the builder front door) → [`serve`] (the long-lived
//! daemon behind `metam serve`) → [`cli`] (the binary).

#![warn(missing_docs)]

pub use metam_causal as causal;
pub use metam_core as core;
pub use metam_datagen as datagen;
pub use metam_discovery as discovery;
pub use metam_lake as lake;
pub use metam_ml as ml;
pub use metam_obs as obs;
pub use metam_profile as profile;
pub use metam_table as table;
pub use metam_tasks as tasks;

pub use metam_core::{
    run_method, run_method_with_observer, Metam, MetamConfig, MetamResult, Method, NoopObserver,
    Prepared, QueryEvent, QueryKind, RoundEvent, RunObserver, RunResult, StopReason, Task,
};
pub use metam_table::Table;
pub use session::{RunReport, Session, SessionError};

pub mod cli;
pub mod serve;
pub mod session;
