//! The bundled outcome of one `Session::run`.

use metam_core::trace::TracePoint;
use metam_core::StopReason;
use metam_discovery::CandidateId;
use metam_obs::MetricsSnapshot;

/// Everything one discovery run produced: the solution, budget accounting,
/// wall-clock timings and the utility-vs-queries trace. Serializes to JSON
/// via the `serde` shim for the CLI's `--json` mode and bench harnesses.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Method display name ("Metam", "Uniform", …).
    pub method: String,
    /// Name of the input dataset.
    pub din_name: String,
    /// Rows in the input dataset.
    pub din_rows: usize,
    /// Columns in the input dataset.
    pub din_cols: usize,
    /// Candidate augmentations the prepare phase discovered.
    pub n_candidates: usize,
    /// Selected augmentation ids (ascending).
    pub selected: Vec<CandidateId>,
    /// Human-readable names of the selected augmentations, aligned with
    /// [`selected`](Self::selected).
    pub selected_names: Vec<String>,
    /// Final solution utility.
    pub utility: f64,
    /// Utility of the bare `Din`.
    pub base_utility: f64,
    /// Task queries spent.
    pub queries: usize,
    /// The query budget the run was given (`usize::MAX` = unbounded).
    pub budget: usize,
    /// Why the search stopped (`None` for baselines, which do not report
    /// a structured stop reason).
    pub stop_reason: Option<StopReason>,
    /// Clusters used by Metam (`None` for baselines).
    pub n_clusters: Option<usize>,
    /// Augmentations the monotonicity wrapper ignored (`None` for
    /// baselines).
    pub certification_ignored: Option<usize>,
    /// Best-utility-so-far trace.
    pub trace: Vec<TracePoint>,
    /// Worker threads the search ran with (1 = sequential; the thread
    /// count never changes results).
    pub threads: usize,
    /// Wall-clock seconds spent preparing (scan, index, candidates,
    /// profiles).
    pub prepare_secs: f64,
    /// Wall-clock seconds spent searching.
    pub search_secs: f64,
    /// Telemetry snapshot at report time (span timings, engine counters,
    /// cache stats) — `None` when the process recorded no metrics.
    pub metrics: Option<MetricsSnapshot>,
}

impl RunReport {
    /// Utility gained over the bare `Din`.
    pub fn gain(&self) -> f64 {
        self.utility - self.base_utility
    }

    /// Budget left unspent; `usize::MAX` for an unbounded run.
    pub fn queries_remaining(&self) -> usize {
        metam_core::engine::remaining_budget(self.budget, self.queries)
    }

    /// Compact JSON encoding (the `--json` CLI payload).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        serde::Serialize::serialize(self, &mut out);
        out
    }
}

fn write_opt_usize(out: &mut String, v: Option<usize>) {
    match v {
        Some(n) => out.push_str(&n.to_string()),
        None => out.push_str("null"),
    }
}

impl serde::Serialize for RunReport {
    fn serialize(&self, out: &mut String) {
        // Hand-rolled so unbounded budgets encode as null and the stop
        // reason encodes as its Display string.
        out.push('{');
        serde::write_json_string(out, "method");
        out.push(':');
        serde::write_json_string(out, &self.method);
        out.push_str(",\"din\":{");
        serde::write_json_string(out, "name");
        out.push(':');
        serde::write_json_string(out, &self.din_name);
        out.push_str(&format!(
            ",\"rows\":{},\"cols\":{}}}",
            self.din_rows, self.din_cols
        ));
        out.push_str(&format!(",\"candidates\":{}", self.n_candidates));
        out.push_str(",\"utility\":");
        serde::Serialize::serialize(&self.utility, out);
        out.push_str(",\"base_utility\":");
        serde::Serialize::serialize(&self.base_utility, out);
        out.push_str(",\"gain\":");
        serde::Serialize::serialize(&self.gain(), out);
        out.push_str(&format!(",\"queries\":{}", self.queries));
        out.push_str(",\"budget\":");
        write_opt_usize(out, (self.budget != usize::MAX).then_some(self.budget));
        out.push_str(",\"queries_remaining\":");
        write_opt_usize(
            out,
            (self.budget != usize::MAX).then_some(self.queries_remaining()),
        );
        out.push_str(",\"stop_reason\":");
        match self.stop_reason {
            Some(r) => serde::write_json_string(out, &r.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"n_clusters\":");
        write_opt_usize(out, self.n_clusters);
        out.push_str(",\"certification_ignored\":");
        write_opt_usize(out, self.certification_ignored);
        out.push_str(",\"selected\":[");
        for (i, (&id, name)) in self.selected.iter().zip(&self.selected_names).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"id\":{id},\"name\":"));
            serde::write_json_string(out, name);
            out.push('}');
        }
        out.push(']');
        out.push_str(&format!(",\"threads\":{}", self.threads));
        out.push_str(",\"prepare_secs\":");
        serde::Serialize::serialize(&self.prepare_secs, out);
        out.push_str(",\"search_secs\":");
        serde::Serialize::serialize(&self.search_secs, out);
        out.push_str(",\"metrics\":");
        match &self.metrics {
            Some(m) => out.push_str(&m.to_json()),
            None => out.push_str("null"),
        }
        out.push_str(",\"trace\":[");
        for (i, p) in self.trace.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},", p.queries));
            serde::Serialize::serialize(&p.utility, out);
            out.push(']');
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            method: "Metam".into(),
            din_name: "din".into(),
            din_rows: 10,
            din_cols: 2,
            n_candidates: 4,
            selected: vec![1, 3],
            selected_names: vec!["a \"q\"".into(), "b".into()],
            utility: 0.9,
            base_utility: 0.5,
            queries: 7,
            budget: 30,
            stop_reason: Some(StopReason::ThetaReached),
            n_clusters: Some(2),
            certification_ignored: Some(0),
            trace: vec![
                TracePoint {
                    queries: 1,
                    utility: 0.5,
                },
                TracePoint {
                    queries: 7,
                    utility: 0.9,
                },
            ],
            threads: 1,
            prepare_secs: 0.25,
            search_secs: 0.5,
            metrics: None,
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"method\":\"Metam\""));
        assert!(json.contains("\"queries\":7"));
        assert!(json.contains("\"budget\":30"));
        assert!(json.contains("\"queries_remaining\":23"));
        assert!(json.contains("\"stop_reason\":\"theta reached (target utility met)\""));
        assert!(json.contains("\"selected\":[{\"id\":1,\"name\":\"a \\\"q\\\"\"}"));
        assert!(json.contains("\"trace\":[[1,0.5],[7,0.9]]"));
        assert!(json.contains("\"threads\":1"));
        // Must survive the shim's pretty-printer (i.e. be parseable JSON
        // as far as the shim's tokenizer is concerned).
        assert!(serde_json::to_string_pretty(&report()).is_ok());
    }

    #[test]
    fn metrics_section_encodes_snapshot_or_null() {
        let r = report();
        assert!(r.to_json().contains("\"metrics\":null"));
        metam_obs::counter_add("report.test.counter", 3);
        let mut with = report();
        with.metrics = Some(metam_obs::metrics_snapshot());
        let json = with.to_json();
        assert!(json.contains("\"metrics\":{"));
        assert!(json.contains("\"report.test.counter\":3"));
    }

    #[test]
    fn unbounded_budget_encodes_as_null() {
        let mut r = report();
        r.budget = usize::MAX;
        r.stop_reason = None;
        let json = r.to_json();
        assert!(json.contains("\"budget\":null"));
        assert!(json.contains("\"queries_remaining\":null"));
        assert!(json.contains("\"stop_reason\":null"));
        assert_eq!(r.queries_remaining(), usize::MAX);
    }
}
