//! The single front door for goal-oriented discovery.
//!
//! A [`Session`] is a builder over the whole pipeline — candidates →
//! profiles → clustered group queries → task utility — regardless of where
//! the data lives. Point it at a synthetic [`Scenario`]
//! ([`Session::from_scenario`]), at a directory of CSV files
//! ([`Session::from_lake`]), at a pre-scanned catalog
//! ([`Session::from_catalog`]), or at any custom [`DataSource`]; chain
//! configuration; then either [`prepare`](Session::prepare) into the
//! unified [`Prepared`] bundle or [`run`](Session::run) a method end to end
//! into a [`RunReport`]:
//!
//! ```
//! use metam::session::Session;
//! use metam::{Method, MetamConfig};
//!
//! let scenario = metam::datagen::repo::price_classification(7);
//! let report = Session::from_scenario(scenario)
//!     .seed(7)
//!     .theta(0.75)
//!     .budget(300)
//!     .run(Method::Metam(MetamConfig::default()))
//!     .expect("scenario sessions are infallible");
//! assert!(report.utility >= report.base_utility);
//! assert!(report.queries <= 300);
//! ```
//!
//! Fallible configuration (a lake without a task, an unknown target
//! column, a zero budget) surfaces as a typed [`SessionError`] instead of
//! a panic. Attach a [`RunObserver`] with
//! [`observer`](Session::observer) to stream per-query and per-round
//! progress while the search is in flight — every method (Metam and all
//! baselines) raises [`QueryEvent`]s through the shared query engine.

mod error;
mod report;
mod source;

pub use error::SessionError;
pub use metam_core::observer::{NoopObserver, QueryEvent, QueryKind, RoundEvent, RunObserver};
pub use metam_core::prepared::Prepared;
pub use report::RunReport;
pub use source::{DataSource, LakeSource, ScenarioSource, SourceData, SourceRequest};

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use metam_core::prepared::{assemble, AssembleOptions};
use metam_core::{run_method_with_observer, Metam, Method, Task};
use metam_datagen::Scenario;
use metam_discovery::path::PathConfig;
use metam_lake::{parse_task, LakeCatalog, LakeError};
use metam_profile::{default_profiles, ProfileSet};

/// Builder-style configuration of one discovery run. See the
/// [module docs](self) for the workflow.
pub struct Session {
    source: Box<dyn DataSource>,
    input: Option<String>,
    task: Option<Box<dyn Task>>,
    task_spec: Option<String>,
    target: Option<String>,
    profile_set: ProfileSet,
    theta: Option<f64>,
    budget: usize,
    seed: u64,
    path: PathConfig,
    max_candidates: usize,
    profile_sample: usize,
    threads: usize,
    observer: Option<Box<dyn RunObserver + Send>>,
}

impl Session {
    /// Session over any pluggable [`DataSource`].
    pub fn from_source(source: Box<dyn DataSource>) -> Session {
        Session {
            source,
            input: None,
            task: None,
            task_spec: None,
            target: None,
            profile_set: default_profiles(),
            theta: None,
            budget: usize::MAX,
            seed: 0,
            path: PathConfig::default(),
            max_candidates: 100_000,
            profile_sample: 100,
            threads: 1,
            observer: None,
        }
    }

    /// Session over a synthetic scenario with planted ground truth. The
    /// scenario's task spec becomes the default task and target.
    pub fn from_scenario(scenario: Scenario) -> Session {
        Session::from_source(Box::new(ScenarioSource::new(scenario)))
    }

    /// Session over a directory of CSV files, scanned at prepare time.
    /// Requires [`din`](Self::din) (the input dataset) and a task.
    pub fn from_lake(path: impl Into<PathBuf>) -> Session {
        Session::from_source(Box::new(LakeSource::from_path(path)))
    }

    /// Session over an already-scanned [`LakeCatalog`]. Requires
    /// [`din`](Self::din) (the input dataset) and a task.
    pub fn from_catalog(catalog: LakeCatalog) -> Session {
        Session::from_source(Box::new(LakeSource::from_catalog(catalog)))
    }

    /// Session over a catalog shared with other holders — the `metam
    /// serve` worker path, where many concurrent sessions prepare over
    /// one hot catalog (legal because the whole data plane is `Send`).
    /// Requires [`din`](Self::din) (the input dataset) and a task.
    pub fn from_shared_catalog(catalog: Arc<LakeCatalog>) -> Session {
        Session::from_source(Box::new(LakeSource::from_shared(catalog)))
    }

    /// Name the input dataset: a catalog table name or a path to an
    /// external CSV file (lake sources; scenarios carry their own `Din`).
    pub fn din(mut self, name_or_path: impl Into<String>) -> Session {
        self.input = Some(name_or_path.into());
        self
    }

    /// Use this downstream task (overrides any task spec or source
    /// default). Metam only needs `u: Table → [0, 1]`.
    pub fn task(mut self, task: impl Task + 'static) -> Session {
        self.task = Some(Box::new(task));
        self
    }

    /// Use an already-boxed downstream task.
    pub fn boxed_task(mut self, task: Box<dyn Task>) -> Session {
        self.task = Some(task);
        self
    }

    /// Parse the task from a CLI-style spec (`classification:<column>`,
    /// `regression:<column>`, `clustering:<k>`) at prepare time. The
    /// spec's target column becomes the default target.
    pub fn task_spec(mut self, spec: impl Into<String>) -> Session {
        self.task_spec = Some(spec.into());
        self
    }

    /// Name the task's target column in the input dataset (drives the
    /// target-aware profiles and the iARDA baseline). Overrides the task
    /// spec's target and the source default.
    pub fn target(mut self, column: impl Into<String>) -> Session {
        self.target = Some(column.into());
        self
    }

    /// Evaluate this profile set instead of the paper's default five.
    pub fn profiles(mut self, profile_set: ProfileSet) -> Session {
        self.profile_set = profile_set;
        self
    }

    /// Target utility θ; the search stops once it is reached.
    pub fn theta(mut self, theta: f64) -> Session {
        self.theta = Some(theta);
        self
    }

    /// Query budget (default: unbounded). A budget of 0 is rejected with
    /// [`SessionError::InvalidBudget`] at prepare/run time.
    pub fn budget(mut self, max_queries: usize) -> Session {
        self.budget = max_queries;
        self
    }

    /// Seed for the whole run: profile sampling, the default task's
    /// internals, and the search itself. [`run`](Session::run) replaces
    /// any seed embedded in the [`Method`] value with this one, so one
    /// knob reproduces the entire trajectory.
    pub fn seed(mut self, seed: u64) -> Session {
        self.seed = seed;
        self
    }

    /// Join-path enumeration limits.
    pub fn path_config(mut self, path: PathConfig) -> Session {
        self.path = path;
        self
    }

    /// Cap on generated candidates (default 100 000).
    pub fn max_candidates(mut self, cap: usize) -> Session {
        self.max_candidates = cap;
        self
    }

    /// Rows sampled for profile estimation (default 100, the paper's
    /// setting).
    pub fn profile_sample(mut self, rows: usize) -> Session {
        self.profile_sample = rows;
        self
    }

    /// Worker threads for batched query execution during the search
    /// (default 1 = fully sequential). The thread count **never changes
    /// results** — uncached task fits execute speculatively over the
    /// shared worker pool and merge in plan order, so the report, trace
    /// and event stream are byte-identical to a sequential run.
    pub fn threads(mut self, threads: usize) -> Session {
        self.threads = threads.max(1);
        self
    }

    /// Stream per-query and per-round progress to this observer during
    /// [`run`](Session::run). Observation is passive: the result is
    /// identical to an unobserved run. (`Send` so a whole `Session` can
    /// move across threads, e.g. into a request-serving worker.)
    pub fn observer(mut self, observer: impl RunObserver + Send + 'static) -> Session {
        self.observer = Some(Box::new(observer));
        self
    }

    fn validate(&self) -> Result<(), SessionError> {
        if self.budget == 0 {
            return Err(SessionError::InvalidBudget);
        }
        Ok(())
    }

    /// Assemble everything needed to search: resolve the source, the task
    /// and the target, enumerate candidates, evaluate profiles. Returns
    /// the unified [`Prepared`] bundle; run any method over
    /// [`Prepared::inputs`] (or use [`run`](Session::run) to do both in
    /// one step).
    pub fn prepare(self) -> Result<Prepared, SessionError> {
        self.validate()?;
        let Session {
            source,
            input,
            task,
            task_spec,
            target,
            profile_set,
            seed,
            path,
            max_candidates,
            profile_sample,
            threads,
            ..
        } = self;

        let mut data = source.load(&SourceRequest { seed, input })?;

        let (spec_task, spec_target) = match task_spec.as_deref() {
            Some(spec) => {
                let parsed = parse_task(spec, seed).map_err(|e| match e {
                    LakeError::BadArgument(msg) => SessionError::BadTaskSpec(msg),
                    other => SessionError::Lake(other),
                })?;
                (Some(parsed.task), parsed.target)
            }
            None => (None, None),
        };
        let task = task
            .or(spec_task)
            .or(data.task)
            .ok_or(SessionError::MissingTask)?;

        // A target the user named (explicitly or through a task spec) must
        // exist; a source-volunteered default that doesn't resolve degrades
        // to unsupervised, as scenario preparation always has.
        let (target, user_named) = match target.or(spec_target) {
            Some(t) => (Some(t), true),
            None => (data.target.take(), false),
        };
        let target_column = match target.as_deref() {
            Some(t) => match data.din.column_index(t) {
                Ok(i) => Some(i),
                Err(_) if !user_named => None,
                Err(_) => {
                    return Err(SessionError::TargetNotFound {
                        target: t.to_string(),
                        din: data.din.name.clone(),
                    })
                }
            },
            None => None,
        };

        let mut prepared = assemble(
            data.din,
            data.repository,
            target_column,
            task,
            &profile_set,
            &AssembleOptions {
                path,
                max_candidates,
                profile_sample,
                seed,
            },
        );
        prepared.threads = threads;
        if let Some(gt) = &data.ground_truth {
            prepared.relevance = Some(
                prepared
                    .candidates
                    .iter()
                    .map(|c| gt.relevance(&c.source_table, &c.column_name))
                    .collect(),
            );
        }
        Ok(prepared)
    }

    /// Prepare, then run `method` under this session's θ, budget and seed,
    /// streaming queries (every method) and rounds (Metam — baselines have
    /// no round structure) to the configured observer. The session seed
    /// replaces any seed embedded in the `method` value, so every method
    /// draws from the same reproducible stream. Returns the bundled
    /// [`RunReport`].
    pub fn run(mut self, method: Method) -> Result<RunReport, SessionError> {
        self.validate()?;
        let theta = self.theta;
        let budget = self.budget;
        let seed = self.seed;
        let mut observer = self.observer.take();

        let prepare_start = Instant::now();
        let prepared = {
            let _span = metam_obs::span("session.prepare", method.name());
            self.prepare()?
        };
        let prepare_secs = prepare_start.elapsed().as_secs_f64();

        let search_start = Instant::now();
        let search_span = metam_obs::span("session.search", method.name());
        let mut stop_reason = None;
        let mut n_clusters = None;
        let mut certification_ignored = None;
        let mut noop = NoopObserver;
        let obs: &mut dyn RunObserver = match observer.as_deref_mut() {
            Some(o) => o,
            None => &mut noop,
        };
        let result = match method {
            Method::Metam(mut config) => {
                config.theta = theta;
                config.max_queries = budget;
                config.seed = seed;
                let r = Metam::new(config).run_with_observer(&prepared.inputs(), obs);
                stop_reason = Some(r.stop_reason);
                n_clusters = Some(r.n_clusters);
                certification_ignored = Some(r.certification_ignored);
                metam_core::RunResult {
                    method: "Metam".to_string(),
                    selected: r.selected,
                    utility: r.utility,
                    base_utility: r.base_utility,
                    queries: r.queries,
                    trace: r.trace,
                }
            }
            other => {
                let reseeded = match other {
                    Method::Uniform { .. } => Method::Uniform { seed },
                    Method::Mw { .. } => Method::Mw { seed },
                    Method::IArda { classification, .. } => Method::IArda {
                        classification,
                        seed,
                    },
                    m => m,
                };
                run_method_with_observer(&reseeded, &prepared.inputs(), theta, budget, obs)
            }
        };
        drop(search_span);
        let search_secs = search_start.elapsed().as_secs_f64();

        let selected_names = result
            .selected
            .iter()
            .map(|&id| prepared.candidates[id].name.clone())
            .collect();
        Ok(RunReport {
            method: result.method,
            din_name: prepared.din.name.clone(),
            din_rows: prepared.din.nrows(),
            din_cols: prepared.din.ncols(),
            n_candidates: prepared.candidates.len(),
            selected: result.selected,
            selected_names,
            utility: result.utility,
            base_utility: result.base_utility,
            queries: result.queries,
            budget,
            stop_reason,
            n_clusters,
            certification_ignored,
            trace: result.trace,
            threads: prepared.threads,
            prepare_secs,
            search_secs,
            metrics: {
                let snap = metam_obs::metrics_snapshot();
                (!snap.is_empty()).then_some(snap)
            },
        })
    }
}
