//! Typed failures of the [`Session`](super::Session) front door.

use std::fmt;

use metam_lake::LakeError;
use metam_table::TableError;

/// Why a session could not be prepared or run. Every fallible path through
/// the builder returns one of these — misconfiguration never panics.
#[derive(Debug)]
pub enum SessionError {
    /// No task was given and the data source has no default (real lakes
    /// cannot infer one — call `.task(...)` or `.task_spec("kind:arg")`).
    MissingTask,
    /// The source needs an input dataset name and none was given (call
    /// `.din(...)` with a catalog table name or a CSV path).
    MissingInput,
    /// A query budget of 0 can never evaluate the task even once.
    InvalidBudget,
    /// A task spec string failed to parse (unknown kind, empty argument…).
    BadTaskSpec(String),
    /// The configured target column does not exist in the input dataset.
    TargetNotFound {
        /// The requested target column.
        target: String,
        /// The input dataset it is missing from.
        din: String,
    },
    /// The lake layer failed (scan, catalog lookup, CSV parse…).
    Lake(LakeError),
    /// A table-level operation failed.
    Table(TableError),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::MissingTask => write!(
                f,
                "no task configured: call .task(...) or .task_spec(\"kind:arg\") \
                 (the data source has no default task)"
            ),
            SessionError::MissingInput => write!(
                f,
                "no input dataset: call .din(...) with a catalog table name or a CSV path"
            ),
            SessionError::InvalidBudget => write!(
                f,
                "query budget must be at least 1 (a budget of 0 cannot evaluate the task)"
            ),
            SessionError::BadTaskSpec(msg) => write!(f, "bad task spec: {msg}"),
            SessionError::TargetNotFound { target, din } => write!(
                f,
                "target column {target:?} not found in input dataset {din:?}"
            ),
            SessionError::Lake(e) => write!(f, "{e}"),
            SessionError::Table(e) => write!(f, "table error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Lake(e) => Some(e),
            SessionError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LakeError> for SessionError {
    fn from(e: LakeError) -> SessionError {
        SessionError::Lake(e)
    }
}

impl From<TableError> for SessionError {
    fn from(e: TableError) -> SessionError {
        SessionError::Table(e)
    }
}
