//! Pluggable data sources behind the [`Session`](super::Session) builder.
//!
//! A [`DataSource`] resolves "where the data lives" into the uniform
//! [`SourceData`] bundle the session assembles from: the input dataset, the
//! repository tables, and whatever the source can volunteer about the task
//! (a default task implementation, a target column, planted ground truth).
//! Two sources ship in-tree — [`ScenarioSource`] for synthetic scenarios
//! with planted truth and [`LakeSource`] for on-disk CSV lakes — and any
//! third-party backend (a warehouse, a sharded catalog, an HTTP data
//! portal) plugs in by implementing the same trait.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use metam_core::{Repository, Task};
use metam_datagen::{GroundTruth, Scenario};
use metam_lake::catalog::read_table_file;
use metam_lake::{LakeCatalog, LakeError, ScanOptions};
use metam_table::Table;
use metam_tasks::build_task;

use super::SessionError;

/// What the session asks of a source when preparing.
#[derive(Debug, Clone)]
pub struct SourceRequest {
    /// The session seed (drives source-default task construction).
    pub seed: u64,
    /// The requested input dataset, when the user named one (`.din(...)`).
    /// Sources that own exactly one input (scenarios) may ignore it.
    pub input: Option<String>,
}

/// Everything a data source resolves for one prepare: the input dataset,
/// the repository to search, and optional task/target/truth defaults.
pub struct SourceData {
    /// The input dataset `Din`.
    pub din: Table,
    /// The repository candidates are discovered in: eager in-memory
    /// tables (scenarios), or payload-free descriptors plus a lazy
    /// provider (sketch-backed lakes, where only candidate-winning
    /// tables ever load).
    pub repository: Repository,
    /// A default downstream task, when the source can build one (synthetic
    /// scenarios carry a task spec; real lakes return `None`).
    pub task: Option<Box<dyn Task>>,
    /// Default target column name in `din`, when known.
    pub target: Option<String>,
    /// Planted relevance, when the source is synthetic.
    pub ground_truth: Option<GroundTruth>,
}

/// A place discovery can run over. Implementations resolve an input
/// dataset plus a repository of joinable tables on demand.
///
/// `Send` so a whole [`Session`](super::Session) can move across threads
/// (the stepping stone toward a long-lived `metam serve` daemon handing
/// sessions to request workers).
pub trait DataSource: Send {
    /// One-line description for errors and logs.
    fn describe(&self) -> String;

    /// Resolve the source into concrete tables for one prepare.
    fn load(&self, request: &SourceRequest) -> Result<SourceData, SessionError>;
}

/// A synthetic [`Scenario`] with planted ground truth.
pub struct ScenarioSource {
    scenario: Scenario,
}

impl ScenarioSource {
    /// Wrap a generated scenario.
    pub fn new(scenario: Scenario) -> ScenarioSource {
        ScenarioSource { scenario }
    }
}

impl DataSource for ScenarioSource {
    fn describe(&self) -> String {
        format!(
            "synthetic scenario ({} repository tables)",
            self.scenario.tables.len()
        )
    }

    fn load(&self, request: &SourceRequest) -> Result<SourceData, SessionError> {
        Ok(SourceData {
            din: self.scenario.din.clone(),
            repository: self.scenario.tables.clone().into(),
            task: Some(build_task(&self.scenario, request.seed)),
            target: self.scenario.spec.target_name().map(String::from),
            ground_truth: Some(self.scenario.ground_truth.clone()),
        })
    }
}

enum LakeBacking {
    /// Scan the directory at prepare time (with these scan options).
    Path(PathBuf, ScanOptions),
    /// An already-scanned catalog (shared, so the lazy table provider
    /// keeps resolving loads through the very same counters).
    Catalog(Arc<LakeCatalog>),
}

/// An on-disk CSV lake, backed by a directory path (scanned at prepare
/// time) or an already-scanned [`LakeCatalog`].
///
/// The requested input (`SourceRequest::input`) is a catalog table name or
/// a path to an external CSV file. Only a catalog-owned input dataset is
/// withheld from the repository (it must not join with itself); an
/// external file leaves every lake table in play, even one that happens to
/// share its name.
pub struct LakeSource {
    backing: LakeBacking,
}

impl LakeSource {
    /// Lake at a directory path; scanned when the session prepares
    /// (changed files profile in parallel — worker count from
    /// `METAM_SCAN_THREADS` or the machine's available parallelism).
    pub fn from_path(path: impl Into<PathBuf>) -> LakeSource {
        LakeSource::from_path_with(path, ScanOptions::default())
    }

    /// Lake at a directory path with explicit [`ScanOptions`] (e.g. a
    /// pinned worker count for reproducible benchmarking).
    pub fn from_path_with(path: impl Into<PathBuf>, options: ScanOptions) -> LakeSource {
        LakeSource {
            backing: LakeBacking::Path(path.into(), options),
        }
    }

    /// Lake behind an already-scanned catalog.
    pub fn from_catalog(catalog: LakeCatalog) -> LakeSource {
        LakeSource::from_shared(Arc::new(catalog))
    }

    /// Lake behind a catalog shared with other holders (`metam serve`
    /// workers all preparing over one hot catalog). Loads resolve through
    /// the shared catalog's counters and caches; nothing is rescanned.
    pub fn from_shared(catalog: Arc<LakeCatalog>) -> LakeSource {
        LakeSource {
            backing: LakeBacking::Catalog(catalog),
        }
    }
}

impl DataSource for LakeSource {
    fn describe(&self) -> String {
        match &self.backing {
            LakeBacking::Path(p, _) => format!("CSV lake at {}", p.display()),
            LakeBacking::Catalog(c) => {
                format!("CSV lake at {} ({} tables)", c.root().display(), c.len())
            }
        }
    }

    fn load(&self, request: &SourceRequest) -> Result<SourceData, SessionError> {
        let catalog: Arc<LakeCatalog> = match &self.backing {
            LakeBacking::Path(p, options) => Arc::new(LakeCatalog::scan_with(p, options)?),
            LakeBacking::Catalog(c) => Arc::clone(c),
        };
        let input = request.input.as_deref().ok_or(SessionError::MissingInput)?;
        let (din, from_catalog) = if catalog.get(input).is_some() {
            (catalog.load_table(input)?, true)
        } else if Path::new(input).is_file() {
            (read_table_file(Path::new(input))?, false)
        } else {
            return Err(SessionError::Lake(LakeError::UnknownTable(input.into())));
        };
        let excluded: Vec<String> = if from_catalog {
            vec![din.name.clone()]
        } else {
            vec![]
        };
        // Sketch-backed prepare: descriptors come from persisted catalog
        // records, and repository payloads load lazily through the
        // provider only when a candidate materializes.
        let (descriptors, provider) =
            metam_lake::prepare::repository_descriptors(&catalog, &din, Some(&excluded))?;
        // Surface the .mtc-vs-CSV load split in the metrics registry.
        // Drained as a delta (not a lifetime snapshot) so N concurrent
        // prepares sharing one catalog flush each load exactly once — the
        // registry total equals the catalog's lifetime total, never more.
        let (hits, misses) = catalog.load_counters().take_unflushed();
        metam_obs::counter_add("lake.load.mtc_hits", hits as u64);
        metam_obs::counter_add("lake.load.csv_fallbacks", misses as u64);
        Ok(SourceData {
            din,
            repository: Repository::Deferred {
                descriptors,
                provider: Box::new(provider),
            },
            task: None,
            target: None,
            ground_truth: None,
        })
    }
}
