//! `metam serve` wiring: the [`Session`]-backed discover handler for the
//! generic `metam-serve` daemon.
//!
//! `metam-serve` is deliberately session-agnostic (it sits below this
//! crate and cannot depend on [`Session`]); this module closes the loop by
//! wiring a [`DiscoverFn`] that builds a session over the daemon's shared
//! hot catalog for every admitted `discover` request. Both the `metam
//! serve` CLI subcommand and the protocol tests start daemons through
//! [`start`], so they exercise exactly the same handler.

use std::path::PathBuf;
use std::sync::Arc;

use metam_core::{MetamConfig, Method};
use metam_lake::{LakeCatalog, LakeError};
pub use metam_serve::{
    DiscoverOutput, DiscoverRequest, ErrorKind, LakeRegistry, RunningServer, ServeConfig,
    ServeError,
};

use crate::session::{Session, SessionError};

/// Start a daemon serving `lakes` with the [`Session`]-backed discover
/// handler: scan every lake hot, bind the configured address, and return
/// the running server (the caller prints the address and `join`s).
pub fn start(
    lakes: &[(String, PathBuf)],
    config: ServeConfig,
) -> Result<RunningServer, ServeError> {
    let registry = LakeRegistry::open(lakes)?;
    metam_serve::bind(config, registry, session_discover())
}

/// The production discover handler: one [`Session`] per request over the
/// shared catalog, returning the exact `discover --json` report plus the
/// per-request cache-delta section.
pub fn session_discover() -> Box<metam_serve::server::DiscoverFn> {
    Box::new(run_discover)
}

fn run_discover(
    request: &DiscoverRequest,
    catalog: Arc<LakeCatalog>,
) -> Result<DiscoverOutput, ServeError> {
    // Per-request cache sections are before/after deltas on the shared
    // counters — exact when requests run alone, best-effort attribution
    // under concurrency (lifetime totals in `status` are always exact).
    let load = catalog.load_counters();
    let sketch = catalog.sketch_load_counters();
    let before = (load.hits(), load.misses(), sketch.hits(), sketch.misses());

    let mut session = Session::from_shared_catalog(catalog)
        .din(request.din.clone())
        .task_spec(request.task.clone())
        .seed(request.seed)
        .budget(request.budget)
        .threads(request.threads);
    if let Some(theta) = request.theta {
        session = session.theta(theta);
    }
    if let Some(n) = request.max_candidates {
        session = session.max_candidates(n);
    }
    if let Some(n) = request.profile_sample {
        session = session.profile_sample(n);
    }
    let mut report = session
        .run(Method::Metam(MetamConfig::default()))
        .map_err(serve_error)?;
    // The report's metrics section snapshots the process-global registry;
    // in a multi-request daemon that mixes every request's counters, so
    // replies omit it (server-lifetime stats live in `status` instead) —
    // which also keeps replies bit-identical to in-process runs.
    report.metrics = None;
    let cache_json = format!(
        "{{\"mtc_loads\":{},\"csv_fallbacks\":{},\"sketch_hits\":{},\"sketch_fallbacks\":{}}}",
        load.hits().saturating_sub(before.0),
        load.misses().saturating_sub(before.1),
        sketch.hits().saturating_sub(before.2),
        sketch.misses().saturating_sub(before.3),
    );
    Ok(DiscoverOutput {
        report_json: report.to_json(),
        cache_json,
    })
}

/// Map a session failure onto the wire: user-addressable mistakes (bad
/// task spec, unknown din, zero budget…) are `bad_request`; infrastructure
/// failures (I/O under a previously-scanned lake) are `internal`.
fn serve_error(e: SessionError) -> ServeError {
    match &e {
        SessionError::Lake(LakeError::Io(_)) => ServeError::internal(e.to_string()),
        _ => ServeError::bad_request(e.to_string()),
    }
}
