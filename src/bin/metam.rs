//! The `metam` binary: scan / profile / discover over an on-disk CSV lake.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(metam::cli::run(&args));
}
