//! End-to-end assembly: scenario → candidates → profiles → task → search
//! inputs.
//!
//! This is the glue every example, integration test and benchmark uses:
//! index the repository, enumerate candidate augmentations (Definition 4),
//! evaluate the default profile vector on a 100-row sample (§VI
//! "Settings"), and instantiate the downstream task.

use std::sync::Arc;

use metam_core::engine::SearchInputs;
use metam_core::Task;
use metam_datagen::Scenario;
use metam_discovery::path::PathConfig;
use metam_discovery::{generate_candidates, Candidate, DiscoveryIndex, Materializer};
use metam_profile::{default_profiles, ProfileSet};
use metam_tasks::build_task;

/// Knobs for [`prepare_with`].
#[derive(Debug, Clone)]
pub struct PrepareOptions {
    /// Join-path enumeration limits.
    pub path: PathConfig,
    /// Cap on generated candidates.
    pub max_candidates: usize,
    /// Rows sampled for profile estimation (paper: 100).
    pub profile_sample: usize,
    /// Seed for sampling and the task.
    pub seed: u64,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            path: PathConfig::default(),
            max_candidates: 100_000,
            profile_sample: 100,
            seed: 0,
        }
    }
}

/// A scenario with everything materialized for searching.
pub struct PreparedScenario {
    /// The generated scenario (owns `Din` and ground truth).
    pub scenario: Scenario,
    /// Index of the target column in `Din`, if supervised.
    pub target_column: Option<usize>,
    /// Candidate augmentations.
    pub candidates: Vec<Candidate>,
    /// Profile vectors per candidate.
    pub profiles: Vec<Vec<f64>>,
    /// Profile names.
    pub profile_names: Vec<String>,
    /// Materializer over the scenario repository.
    pub materializer: Materializer,
    /// The instantiated downstream task.
    pub task: Box<dyn Task>,
}

impl PreparedScenario {
    /// Borrow as the search-input bundle every method consumes.
    pub fn inputs(&self) -> SearchInputs<'_> {
        SearchInputs {
            din: &self.scenario.din,
            target_column: self.target_column,
            candidates: &self.candidates,
            profiles: &self.profiles,
            profile_names: &self.profile_names,
            materializer: &self.materializer,
            task: self.task.as_ref(),
        }
    }

    /// Planted relevance of every candidate (via the scenario's ground
    /// truth) — used by Fig. 8's "queries to ground truth" metric and the
    /// informative synthetic profiles of Figs. 9–10.
    pub fn relevance(&self) -> Vec<f64> {
        self.candidates
            .iter()
            .map(|c| self.scenario.ground_truth.relevance(&c.source_table, &c.column_name))
            .collect()
    }
}

/// [`prepare_with`] using default options, the default profile set and the
/// given seed.
pub fn prepare(scenario: Scenario, seed: u64) -> PreparedScenario {
    prepare_with(scenario, default_profiles(), PrepareOptions { seed, ..Default::default() })
}

/// Full assembly with a custom profile set and options.
pub fn prepare_with(
    scenario: Scenario,
    profile_set: ProfileSet,
    options: PrepareOptions,
) -> PreparedScenario {
    let tables: Vec<Arc<metam_table::Table>> = scenario.tables.clone();
    let index = DiscoveryIndex::build(tables.clone());
    let candidates =
        generate_candidates(&scenario.din, &index, &options.path, options.max_candidates);
    let materializer = Materializer::new(tables);
    let target_column = scenario.target_column_index();
    let profiles = profile_set.evaluate_all(
        &scenario.din,
        target_column,
        &candidates,
        &materializer,
        options.profile_sample,
        options.seed,
    );
    let profile_names = profile_set.names().into_iter().map(String::from).collect();
    let task = build_task(&scenario, options.seed);
    PreparedScenario {
        scenario,
        target_column,
        candidates,
        profiles,
        profile_names,
        materializer,
        task,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};

    #[test]
    fn prepare_produces_aligned_artifacts() {
        let scenario = build_supervised(&SupervisedConfig {
            n_rows: 200,
            n_informative: 2,
            n_irrelevant_tables: 3,
            n_erroneous_tables: 2,
            ..Default::default()
        });
        let p = prepare(scenario, 1);
        assert!(!p.candidates.is_empty());
        assert_eq!(p.candidates.len(), p.profiles.len());
        assert_eq!(p.profile_names.len(), 5, "default profile set has 5 profiles");
        assert!(p.target_column.is_some());
        let rel = p.relevance();
        assert_eq!(rel.len(), p.candidates.len());
        assert!(rel.iter().any(|&r| r > 0.0), "planted candidates must be discoverable");
        assert!(rel.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }
}
