//! Deprecated free-function front door, kept as thin wrappers for one
//! release.
//!
//! The pipeline is now assembled through one builder —
//! [`crate::session::Session`] — which replaces the five `prepare*`
//! functions and the two near-duplicate bundle structs
//! (`PreparedScenario` / `PreparedLake`) with a single
//! [`Prepared`] type and a pluggable
//! [`DataSource`](crate::session::DataSource) seam:
//!
//! ```no_run
//! use metam::session::Session;
//!
//! // was: prepare(scenario, 7)
//! let scenario = metam::datagen::repo::price_classification(7);
//! let prepared = Session::from_scenario(scenario).seed(7).prepare()?;
//!
//! // was: prepare_from_lake(&catalog, din, task, Some("label"), options)
//! let prepared = Session::from_lake("./lake")
//!     .din("din")
//!     .task_spec("classification:label")
//!     .seed(7)
//!     .prepare()?;
//! # Ok::<(), metam::session::SessionError>(())
//! ```

use metam_core::Prepared;
use metam_core::Task;
use metam_datagen::Scenario;
use metam_discovery::path::PathConfig;
use metam_lake::{LakeCatalog, LakeOptions};
use metam_profile::ProfileSet;
use metam_table::Table;

use crate::session::Session;

/// Knobs for [`prepare_with`].
#[derive(Debug, Clone)]
pub struct PrepareOptions {
    /// Join-path enumeration limits.
    pub path: PathConfig,
    /// Cap on generated candidates.
    pub max_candidates: usize,
    /// Rows sampled for profile estimation (paper: 100).
    pub profile_sample: usize,
    /// Seed for sampling and the task.
    pub seed: u64,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            path: PathConfig::default(),
            max_candidates: 100_000,
            profile_sample: 100,
            seed: 0,
        }
    }
}

/// The old name of the unified [`Prepared`] bundle.
#[deprecated(
    since = "0.2.0",
    note = "use metam::session::Prepared (one unified type)"
)]
pub type PreparedScenario = Prepared;

/// [`prepare_with`] using default options, the default profile set and the
/// given seed.
#[deprecated(since = "0.2.0", note = "use metam::session::Session::from_scenario")]
pub fn prepare(scenario: Scenario, seed: u64) -> Prepared {
    Session::from_scenario(scenario)
        .seed(seed)
        .prepare()
        .expect("scenario preparation is infallible")
}

/// Full assembly with a custom profile set and options.
#[deprecated(since = "0.2.0", note = "use metam::session::Session::from_scenario")]
pub fn prepare_with(
    scenario: Scenario,
    profile_set: ProfileSet,
    options: PrepareOptions,
) -> Prepared {
    Session::from_scenario(scenario)
        .profiles(profile_set)
        .path_config(options.path)
        .max_candidates(options.max_candidates)
        .profile_sample(options.profile_sample)
        .seed(options.seed)
        .prepare()
        .expect("scenario preparation is infallible")
}

/// [`prepare_from_lake_with`] using the default profile set.
#[deprecated(since = "0.2.0", note = "use metam::session::Session::from_catalog")]
pub fn prepare_from_lake(
    catalog: &LakeCatalog,
    din: Table,
    task: Box<dyn Task>,
    target: Option<&str>,
    options: PrepareOptions,
) -> metam_lake::Result<Prepared> {
    #[allow(deprecated)]
    prepare_from_lake_with(
        catalog,
        din,
        task,
        metam_profile::default_profiles(),
        target,
        options,
    )
}

/// Assemble search inputs from a scanned CSV lake instead of a synthetic
/// scenario. `target` names the task's target column in `din`, when one
/// exists.
#[deprecated(since = "0.2.0", note = "use metam::session::Session::from_catalog")]
pub fn prepare_from_lake_with(
    catalog: &LakeCatalog,
    din: Table,
    task: Box<dyn Task>,
    profile_set: ProfileSet,
    target: Option<&str>,
    options: PrepareOptions,
) -> metam_lake::Result<Prepared> {
    let lake_options = LakeOptions {
        path: options.path,
        max_candidates: options.max_candidates,
        profile_sample: options.profile_sample,
        seed: options.seed,
        target: target.map(String::from),
        // The catalog table named like `din` is withheld (it must not
        // join with itself); use the session API directly for an external
        // input dataset that should not shadow a lake table.
        exclude_tables: None,
    };
    #[allow(deprecated)]
    metam_lake::prepare::prepare_from_catalog_with(catalog, din, task, profile_set, &lake_options)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};

    #[test]
    fn deprecated_prepare_still_produces_aligned_artifacts() {
        let scenario = build_supervised(&SupervisedConfig {
            n_rows: 200,
            n_informative: 2,
            n_irrelevant_tables: 3,
            n_erroneous_tables: 2,
            ..Default::default()
        });
        let p: PreparedScenario = prepare(scenario, 1);
        assert!(!p.candidates.is_empty());
        assert_eq!(p.candidates.len(), p.profiles.len());
        assert_eq!(
            p.profile_names.len(),
            5,
            "default profile set has 5 profiles"
        );
        assert!(p.target_column.is_some());
        let rel = p.relevance.as_deref().expect("scenarios carry truth");
        assert_eq!(rel.len(), p.candidates.len());
        assert!(
            rel.iter().any(|&r| r > 0.0),
            "planted candidates must be discoverable"
        );
        assert!(rel.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn unresolvable_scenario_target_degrades_to_unsupervised() {
        // The old prepare() tolerated a spec target absent from din
        // (target_column = None); the wrapper must keep that behavior
        // rather than surfacing Session's strict TargetNotFound.
        let mut scenario = build_supervised(&SupervisedConfig {
            n_rows: 60,
            n_irrelevant_tables: 1,
            ..Default::default()
        });
        scenario.spec = metam_datagen::TaskSpec::Classification {
            target: "ghost_column".into(),
        };
        let p = prepare(scenario, 2);
        assert_eq!(p.target_column, None, "lenient for source defaults");
    }
}
