//! End-to-end assembly: scenario → candidates → profiles → task → search
//! inputs.
//!
//! This is the glue every example, integration test and benchmark uses:
//! index the repository, enumerate candidate augmentations (Definition 4),
//! evaluate the default profile vector on a 100-row sample (§VI
//! "Settings"), and instantiate the downstream task.
//!
//! Two entry points cover the two data worlds:
//!
//! * [`prepare`] / [`prepare_with`] — a synthetic [`Scenario`] with
//!   planted ground truth,
//! * [`prepare_from_lake`] / [`prepare_from_lake_with`] — a scanned
//!   on-disk CSV lake ([`metam_lake::LakeCatalog`]) with a user-supplied
//!   [`Task`].

use std::sync::Arc;

use metam_core::engine::SearchInputs;
use metam_core::Task;
use metam_datagen::Scenario;
use metam_discovery::path::PathConfig;
use metam_discovery::{generate_candidates, Candidate, DiscoveryIndex, Materializer};
use metam_lake::{LakeCatalog, LakeOptions, PreparedLake};
use metam_profile::{default_profiles, ProfileSet};
use metam_table::Table;
use metam_tasks::build_task;

/// Knobs for [`prepare_with`].
#[derive(Debug, Clone)]
pub struct PrepareOptions {
    /// Join-path enumeration limits.
    pub path: PathConfig,
    /// Cap on generated candidates.
    pub max_candidates: usize,
    /// Rows sampled for profile estimation (paper: 100).
    pub profile_sample: usize,
    /// Seed for sampling and the task.
    pub seed: u64,
}

impl Default for PrepareOptions {
    fn default() -> Self {
        PrepareOptions {
            path: PathConfig::default(),
            max_candidates: 100_000,
            profile_sample: 100,
            seed: 0,
        }
    }
}

/// A scenario with everything materialized for searching.
pub struct PreparedScenario {
    /// The generated scenario (owns `Din` and ground truth).
    pub scenario: Scenario,
    /// Index of the target column in `Din`, if supervised.
    pub target_column: Option<usize>,
    /// Candidate augmentations.
    pub candidates: Vec<Candidate>,
    /// Profile vectors per candidate.
    pub profiles: Vec<Vec<f64>>,
    /// Profile names.
    pub profile_names: Vec<String>,
    /// Materializer over the scenario repository.
    pub materializer: Materializer,
    /// The instantiated downstream task.
    pub task: Box<dyn Task>,
}

impl PreparedScenario {
    /// Borrow as the search-input bundle every method consumes.
    pub fn inputs(&self) -> SearchInputs<'_> {
        SearchInputs {
            din: &self.scenario.din,
            target_column: self.target_column,
            candidates: &self.candidates,
            profiles: &self.profiles,
            profile_names: &self.profile_names,
            materializer: &self.materializer,
            task: self.task.as_ref(),
        }
    }

    /// Planted relevance of every candidate (via the scenario's ground
    /// truth) — used by Fig. 8's "queries to ground truth" metric and the
    /// informative synthetic profiles of Figs. 9–10.
    pub fn relevance(&self) -> Vec<f64> {
        self.candidates
            .iter()
            .map(|c| {
                self.scenario
                    .ground_truth
                    .relevance(&c.source_table, &c.column_name)
            })
            .collect()
    }
}

/// [`prepare_with`] using default options, the default profile set and the
/// given seed.
pub fn prepare(scenario: Scenario, seed: u64) -> PreparedScenario {
    prepare_with(
        scenario,
        default_profiles(),
        PrepareOptions {
            seed,
            ..Default::default()
        },
    )
}

/// Full assembly with a custom profile set and options.
pub fn prepare_with(
    scenario: Scenario,
    profile_set: ProfileSet,
    options: PrepareOptions,
) -> PreparedScenario {
    let tables: Vec<Arc<metam_table::Table>> = scenario.tables.clone();
    let index = DiscoveryIndex::build(tables.clone());
    let candidates =
        generate_candidates(&scenario.din, &index, &options.path, options.max_candidates);
    let materializer = Materializer::new(tables);
    let target_column = scenario.target_column_index();
    let profiles = profile_set.evaluate_all(
        &scenario.din,
        target_column,
        &candidates,
        &materializer,
        options.profile_sample,
        options.seed,
    );
    let profile_names = profile_set.names().into_iter().map(String::from).collect();
    let task = build_task(&scenario, options.seed);
    PreparedScenario {
        scenario,
        target_column,
        candidates,
        profiles,
        profile_names,
        materializer,
        task,
    }
}

/// [`prepare_from_lake_with`] using the default profile set.
pub fn prepare_from_lake(
    catalog: &LakeCatalog,
    din: Table,
    task: Box<dyn Task>,
    target: Option<&str>,
    options: PrepareOptions,
) -> metam_lake::Result<PreparedLake> {
    prepare_from_lake_with(catalog, din, task, default_profiles(), target, options)
}

/// Assemble search inputs from a scanned CSV lake instead of a synthetic
/// scenario: load every catalog table (minus `din` itself), index it,
/// enumerate candidates, evaluate profiles, and bundle the user-supplied
/// task. `target` names the task's target column in `din`, when one
/// exists; it drives the target-aware profiles and the iARDA baseline.
pub fn prepare_from_lake_with(
    catalog: &LakeCatalog,
    din: Table,
    task: Box<dyn Task>,
    profile_set: ProfileSet,
    target: Option<&str>,
    options: PrepareOptions,
) -> metam_lake::Result<PreparedLake> {
    let lake_options = LakeOptions {
        path: options.path,
        max_candidates: options.max_candidates,
        profile_sample: options.profile_sample,
        seed: options.seed,
        target: target.map(String::from),
        // The catalog table named like `din` is withheld (it must not
        // join with itself); use `LakeOptions` directly for an external
        // input dataset that should not shadow a lake table.
        exclude_tables: None,
    };
    metam_lake::prepare::prepare_from_catalog_with(catalog, din, task, profile_set, &lake_options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};

    #[test]
    fn prepare_produces_aligned_artifacts() {
        let scenario = build_supervised(&SupervisedConfig {
            n_rows: 200,
            n_informative: 2,
            n_irrelevant_tables: 3,
            n_erroneous_tables: 2,
            ..Default::default()
        });
        let p = prepare(scenario, 1);
        assert!(!p.candidates.is_empty());
        assert_eq!(p.candidates.len(), p.profiles.len());
        assert_eq!(
            p.profile_names.len(),
            5,
            "default profile set has 5 profiles"
        );
        assert!(p.target_column.is_some());
        let rel = p.relevance();
        assert_eq!(rel.len(), p.candidates.len());
        assert!(
            rel.iter().any(|&r| r > 0.0),
            "planted candidates must be discoverable"
        );
        assert!(rel.iter().all(|&r| (0.0..=1.0).contains(&r)));
    }
}
