//! The paper's introduction anecdote: predicting housing prices.
//!
//! Goal-oriented discovery finds the "obvious" augmentations (income,
//! crime) *and* the non-obvious ones (Walmart presence, taxi trips) that
//! sociologists discovered manually [5, 39] — here, with zero human
//! intervention. Also compares Metam's query bill against the
//! discover-then-augment baselines.
//!
//! Run with: `cargo run --release --example housing_prices`

use metam::{run_method, MetamConfig, Method, Session};

fn main() {
    let seed = 7;
    let scenario = metam::datagen::repo::price_classification(seed);
    let prepared = Session::from_scenario(scenario)
        .seed(seed)
        .prepare()
        .expect("prepare");
    let relevance = prepared.relevance.as_deref().expect("planted truth");
    let theta = Some(0.75);
    let budget = 500;

    println!("{} candidate augmentations\n", prepared.candidates.len());
    println!(
        "{:<10} {:>8} {:>9} {:>8}  selected",
        "method", "base", "utility", "queries"
    );

    let methods = [
        Method::Metam(MetamConfig {
            seed,
            ..Default::default()
        }),
        Method::Mw { seed },
        Method::Overlap,
        Method::Uniform { seed },
    ];
    for method in &methods {
        let r = run_method(method, &prepared.inputs(), theta, budget);
        let names: Vec<&str> = r
            .selected
            .iter()
            .map(|&id| prepared.candidates[id].name.as_str())
            .collect();
        println!(
            "{:<10} {:>8.3} {:>9.3} {:>8}  {}",
            r.method,
            r.base_utility,
            r.utility,
            r.queries,
            if names.len() > 3 {
                format!("{} augmentations", names.len())
            } else {
                names.join(" | ")
            }
        );
    }

    println!("\nMetam's picks in detail:");
    let r = run_method(
        &Method::Metam(MetamConfig {
            seed,
            ..Default::default()
        }),
        &prepared.inputs(),
        theta,
        budget,
    );
    for &id in &r.selected {
        let c = &prepared.candidates[id];
        println!(
            "  {} (planted relevance {:.2}) — joined from table {:?}",
            c.name, relevance[id], c.source_table
        );
    }
}
