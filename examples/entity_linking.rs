//! Generalization beyond ML: entity linking (paper §VI-A.4).
//!
//! A CDC-style table lists ambiguous city names ("Birmingham" exists in
//! several states and in the UK). Linking accuracy is terrible until a
//! state-abbreviation column is augmented — Metam finds that column among
//! dozens of joinable distractors in a handful of queries.
//!
//! Run with: `cargo run --release --example entity_linking`

use metam::{run_method, MetamConfig, Method, Session};

fn main() {
    let seed = 11;
    let scenario =
        metam::datagen::linking::build_linking(&metam::datagen::linking::LinkingConfig {
            seed,
            ..Default::default()
        });
    let prepared = Session::from_scenario(scenario)
        .seed(seed)
        .prepare()
        .expect("prepare");
    println!("{} candidate augmentations\n", prepared.candidates.len());

    println!(
        "{:<10} {:>9} {:>9} {:>8}",
        "method", "base acc", "final acc", "queries"
    );
    let methods = [
        Method::Metam(MetamConfig {
            seed,
            ..Default::default()
        }),
        Method::Mw { seed },
        Method::Overlap,
        Method::Uniform { seed },
    ];
    for method in &methods {
        let r = run_method(method, &prepared.inputs(), Some(0.95), 200);
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>8}",
            r.method, r.base_utility, r.utility, r.queries
        );
    }

    let r = run_method(
        &Method::Metam(MetamConfig {
            seed,
            ..Default::default()
        }),
        &prepared.inputs(),
        Some(0.95),
        200,
    );
    println!("\nMetam's disambiguating augmentation:");
    for &id in &r.selected {
        println!("  - {}", prepared.candidates[id].name);
    }
}
