//! Bring your own task: goal-oriented discovery for a custom utility.
//!
//! Metam only needs `u: Table → [0, 1]` (paper Definition 5). This example
//! defines a bespoke "data completeness + diversity" utility — reward
//! augmented columns that are well-filled *and* not redundant with what's
//! already there — and lets Metam optimize it. No ML model involved at
//! all: any black box works.
//!
//! Run with: `cargo run --release --example custom_task`

use metam::{Metam, MetamConfig, Session, Task};
use metam_table::Table;

/// Utility = average over augmented columns of
/// `fill_ratio × (1 − max |corr| with previous columns)`, scaled by how
/// many useful columns were added (capped at 3).
struct CoverageDiversityTask;

impl Task for CoverageDiversityTask {
    fn name(&self) -> &str {
        "coverage-diversity"
    }

    fn utility(&self, table: &Table) -> f64 {
        let aug_indices: Vec<usize> = (0..table.ncols())
            .filter(|&i| table.column_display_name(i).starts_with("aug"))
            .collect();
        if aug_indices.is_empty() {
            return 0.1; // base utility of the bare Din
        }
        let mut seen: Vec<Vec<Option<f64>>> = Vec::new();
        let mut score = 0.0;
        for &i in &aug_indices {
            let col = &table.columns()[i];
            let fill = col.fill_ratio();
            let numeric = col.as_f64();
            let max_corr = seen
                .iter()
                .map(|prev| pearson_opt(&numeric, prev).abs())
                .fold(0.0f64, f64::max);
            score += fill * (1.0 - max_corr);
            seen.push(numeric);
        }
        (0.1 + score / 3.0).clamp(0.0, 1.0)
    }
}

fn pearson_opt(xs: &[Option<f64>], ys: &[Option<f64>]) -> f64 {
    let pairs: Vec<(f64, f64)> = xs.iter().zip(ys).filter_map(|(a, b)| a.zip(*b)).collect();
    if pairs.len() < 3 {
        return 0.0;
    }
    let n = pairs.len() as f64;
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = pairs.iter().map(|(a, b)| (a - mx) * (b - my)).sum::<f64>() / n;
    let vx: f64 = pairs.iter().map(|(a, _)| (a - mx) * (a - mx)).sum::<f64>() / n;
    let vy: f64 = pairs.iter().map(|(_, b)| (b - my) * (b - my)).sum::<f64>() / n;
    if vx < 1e-12 || vy < 1e-12 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

fn main() {
    let seed = 5;
    // Reuse a synthetic repository, but swap in our own task — the
    // builder's `.task(...)` overrides the scenario's default.
    let scenario = metam::datagen::repo::price_classification(seed);
    let prepared = Session::from_scenario(scenario)
        .task(CoverageDiversityTask)
        .seed(seed)
        .prepare()
        .expect("prepare");

    let result = Metam::new(MetamConfig {
        theta: Some(0.85),
        max_queries: 300,
        seed,
        ..Default::default()
    })
    .run(&prepared.inputs());

    println!(
        "custom utility: {:.3} → {:.3} in {} queries ({:?})",
        result.base_utility, result.utility, result.queries, result.stop_reason
    );
    println!("chosen augmentations (well-filled, mutually diverse):");
    for &id in &result.selected {
        let c = &prepared.candidates[id];
        println!(
            "  - {} (containment {:.2})",
            c.name, c.discovered_containment
        );
    }
}
