//! Quickstart: goal-oriented data discovery in ~30 lines.
//!
//! Builds a synthetic housing-price classification scenario (a `Din` table
//! plus a repository of joinable tables, most of them useless), then lets
//! Metam query the task until it finds a minimal augmentation set that
//! lifts the classifier's F-score past the target θ.
//!
//! Run with: `cargo run --release --example quickstart`

use metam::{Metam, MetamConfig, Session};

fn main() {
    // 1. A scenario: Din = housing table; repository = crime/taxi/Walmart
    //    tables + duplicates + noise + erroneous joins.
    let scenario = metam::datagen::repo::price_classification(42);
    println!(
        "repository: {} tables; Din: {} rows × {} columns",
        scenario.tables.len(),
        scenario.din.nrows(),
        scenario.din.ncols()
    );

    // 2. Discover candidates, compute data profiles, instantiate the task.
    let prepared = Session::from_scenario(scenario)
        .seed(42)
        .prepare()
        .expect("prepare");
    println!(
        "candidate augmentations discovered: {}",
        prepared.candidates.len()
    );

    // 3. Search: query the task adaptively until utility ≥ θ.
    let config = MetamConfig {
        theta: Some(0.75),
        max_queries: 400,
        ..Default::default()
    };
    let result = Metam::new(config).run(&prepared.inputs());

    println!(
        "\nutility: {:.3} → {:.3} in {} task queries ({:?})",
        result.base_utility, result.utility, result.queries, result.stop_reason
    );
    println!("selected augmentations:");
    for &id in &result.selected {
        println!("  - {}", prepared.candidates[id].name);
    }
}
