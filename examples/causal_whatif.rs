//! Prescriptive analytics: what-if analysis on student SAT scores.
//!
//! "What will be affected if the critical-reading score is updated?" The
//! task scores a candidate augmentation set by the fraction of the truly
//! affected attributes it exposes (p ≤ 0.05 under Fisher-z tests); Metam
//! hunts the repository for exactly those attribute tables.
//!
//! Run with: `cargo run --release --example causal_whatif`

use metam::{Metam, MetamConfig, Session};

fn main() {
    let seed = 3;
    let scenario = metam::datagen::repo::sat_whatif(seed);
    if let metam::datagen::TaskSpec::WhatIf {
        intervened,
        affected,
    } = &scenario.spec
    {
        println!("intervened attribute: {intervened}");
        println!("ground-truth affected attributes: {affected:?}\n");
    }
    let prepared = Session::from_scenario(scenario)
        .seed(seed)
        .prepare()
        .expect("prepare");
    println!(
        "{} candidate augmentations (incl. erroneous joins)",
        prepared.candidates.len()
    );

    let result = Metam::new(MetamConfig {
        theta: Some(1.0), // find *all* affected attributes
        max_queries: 600,
        seed,
        ..Default::default()
    })
    .run(&prepared.inputs());

    println!(
        "\nrecovered {:.0}% of the affected attributes in {} queries ({:?})",
        result.utility * 100.0,
        result.queries,
        result.stop_reason
    );
    println!("augmentations Metam joined:");
    for &id in &result.selected {
        println!("  - {}", prepared.candidates[id].name);
    }
}
