//! Goal-oriented discovery over an **on-disk CSV lake**.
//!
//! The example builds its own lake by exporting a synthetic scenario to a
//! temp directory — in real use, point `LakeCatalog::scan` at any folder
//! of CSV files (or try the CLI: `metam demo ./lake && metam scan ./lake`).
//!
//! Run with: `cargo run --release --example lake_discovery`

use metam::lake::{export_scenario, LakeCatalog};
use metam::{Metam, MetamConfig, Session};

fn main() {
    let dir = std::env::temp_dir().join(format!("metam-lake-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. A lake on disk. (Stand-in for a downloaded open-data portal.)
    let scenario = metam::datagen::repo::price_classification(7);
    export_scenario(&scenario, &dir).expect("export");
    println!("lake: {} ({} tables)", dir.display(), scenario.tables.len());

    // 2. Scan it: schema + column statistics land in <lake>/.metam/ so the
    //    next scan skips every unchanged file.
    let catalog = LakeCatalog::scan(&dir).expect("scan");
    println!(
        "scanned {} tables, {} rows ({} profile-cache misses)",
        catalog.len(),
        catalog.total_rows(),
        catalog.cache_misses()
    );
    let rescan = LakeCatalog::scan(&dir).expect("rescan");
    println!(
        "re-scan: {} cache hits, {} misses",
        rescan.cache_hits(),
        rescan.cache_misses()
    );

    // 3. Pick an input dataset + task through the Session builder,
    //    assemble, search.
    let prepared = Session::from_catalog(rescan)
        .din("din")
        .task_spec("classification:label")
        .seed(7)
        .prepare()
        .expect("prepare");
    println!("{} candidate augmentations", prepared.candidates.len());

    let result = Metam::new(MetamConfig {
        theta: Some(0.85),
        max_queries: 150,
        seed: 7,
        ..Default::default()
    })
    .run(&prepared.inputs());

    println!(
        "utility {:.3} (base {:.3}) | {} queries used, {} remaining | {:?}",
        result.utility,
        result.base_utility,
        result.queries,
        result.queries_remaining(),
        result.stop_reason,
    );
    for &id in &result.selected {
        println!("  selected: {}", prepared.candidates[id].name);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
