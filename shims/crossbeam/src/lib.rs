//! Minimal stand-in for `crossbeam` scoped threads (offline build).
//!
//! Only `crossbeam::thread::scope` + `Scope::spawn` are provided, delegating
//! to `std::thread::scope` (stable since 1.63). One behavioral difference:
//! a panicking worker panics the scope itself instead of surfacing through
//! the returned `Result`, so the `Err` arm is never taken — callers in this
//! workspace all `.expect()` the result anyway.

/// Scoped threads.
pub mod thread {
    use std::any::Any;

    /// Handle through which workers are spawned; mirrors
    /// `crossbeam::thread::Scope` (workers receive `&Scope` as their
    /// argument, which this shim also supports).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a worker; the closure receives the scope (crossbeam's
        /// signature) so nested spawns remain possible.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope; all spawned workers are joined before this
    /// returns. Always `Ok` (see module docs).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_workers() {
        let counter = AtomicUsize::new(0);
        let out = crate::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn workers_can_mutate_disjoint_chunks() {
        let mut data = vec![0usize; 64];
        crate::thread::scope(|scope| {
            for (i, chunk) in data.chunks_mut(16).enumerate() {
                scope.spawn(move |_| {
                    for x in chunk.iter_mut() {
                        *x = i + 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&x| x >= 1));
    }
}
