//! Minimal stand-in for `serde` (offline build).
//!
//! Instead of serde's data model, [`Serialize`] writes JSON straight into a
//! `String`; the companion `serde_json` shim wraps this in its usual
//! `to_string`/`to_string_pretty` entry points. `#[derive(Serialize)]` is
//! provided by the `serde_derive_shim` proc macro and produces a JSON
//! object of the struct's named fields.

// Let the derive's generated `::serde::` paths resolve inside this crate's
// own tests too.
extern crate self as serde;

pub use serde_derive_shim::Serialize;

/// Serialize `self` as JSON appended to `out`.
pub trait Serialize {
    /// Append the JSON encoding of `self`.
    fn serialize(&self, out: &mut String);
}

/// Append a JSON string literal (quoted, escaped).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for String {
    fn serialize(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for str {
    fn serialize(&self, out: &mut String) {
        write_json_string(out, self);
    }
}

impl Serialize for bool {
    fn serialize(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for f64 {
    fn serialize(&self, out: &mut String) {
        if self.is_finite() {
            out.push_str(&format!("{self}"));
        } else {
            // JSON has no NaN/Infinity; null is serde_json's lossy default.
            out.push_str("null");
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, out: &mut String) {
                out.push_str(&format!("{self}"));
            }
        }
    )*};
}

impl_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, out: &mut String) {
        (**self).serialize(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, out: &mut String) {
        self.as_slice().serialize(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize(out);
        }
        out.push(']');
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self, out: &mut String) {
        out.push('[');
        self.0.serialize(out);
        out.push(',');
        self.1.serialize(out);
        out.push(']');
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$i.serialize(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_tuple! {
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json<T: Serialize>(v: &T) -> String {
        let mut s = String::new();
        v.serialize(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(json(&3usize), "3");
        assert_eq!(json(&-2i64), "-2");
        assert_eq!(json(&1.5f64), "1.5");
        assert_eq!(json(&f64::NAN), "null");
        assert_eq!(json(&true), "true");
        assert_eq!(json(&"a\"b\n".to_string()), "\"a\\\"b\\n\"");
    }

    #[test]
    fn compounds() {
        assert_eq!(json(&vec![1usize, 2]), "[1,2]");
        assert_eq!(json(&(1usize, 0.5f64)), "[1,0.5]");
        assert_eq!(json(&Some(1usize)), "1");
        assert_eq!(json(&Option::<usize>::None), "null");
        assert_eq!(json(&vec![vec!["x".to_string()]]), "[[\"x\"]]");
    }

    #[test]
    fn derive_emits_object() {
        #[derive(Serialize)]
        struct P {
            /// Doc comments are attributes; the derive must skip them.
            pub id: String,
            points: Vec<(usize, f64)>,
        }
        let p = P {
            id: "fig3".into(),
            points: vec![(0, 0.25)],
        };
        assert_eq!(json(&p), "{\"id\":\"fig3\",\"points\":[[0,0.25]]}");
    }
}
