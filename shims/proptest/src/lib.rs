//! Minimal stand-in for `proptest` (offline build).
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range/`Just`/pattern/tuple/vec
//! strategies, weighted `prop_oneof!`, `any::<T>()` via [`Arbitrary`], and
//! the `proptest!`/`prop_assert*` macros. Each property runs a fixed number
//! of deterministically seeded cases (no shrinking; the failing case's seed
//! and inputs are reported through the panic message).

use std::fmt::Write as _;

/// Number of cases each property runs.
pub const CASES: u64 = 96;

/// The deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() as usize) % n
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy yielding a constant.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let v = self.start + rng.next_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_strategy!(usize, u64, u32, isize, i64, i32);

    /// String-pattern strategy: `&'static str` is interpreted as the tiny
    /// regex subset proptest users lean on — literal characters, `[a-z]`
    /// classes and `{m,n}` repetitions.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    /// One parsed pattern atom.
    enum Atom {
        Lit(char),
        Class(char, char),
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let lo = chars.next().expect("pattern: class start");
                    assert_eq!(chars.next(), Some('-'), "pattern: class must be [a-z]");
                    let hi = chars.next().expect("pattern: class end");
                    assert_eq!(chars.next(), Some(']'), "pattern: unterminated class");
                    Atom::Class(lo, hi)
                }
                '\\' => Atom::Lit(chars.next().expect("pattern: dangling escape")),
                c => Atom::Lit(c),
            };
            // Optional {m,n} repetition.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let (m, n) = spec.split_once(',').expect("pattern: {m,n} repetition");
                (
                    m.trim().parse::<usize>().expect("pattern: bad {m,n}"),
                    n.trim().parse::<usize>().expect("pattern: bad {m,n}"),
                )
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                match atom {
                    Atom::Lit(l) => out.push(l),
                    Atom::Class(lo, hi) => {
                        let span = hi as u32 - lo as u32 + 1;
                        let c = char::from_u32(lo as u32 + rng.below(span as usize) as u32)
                            .expect("pattern: class range");
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof!: no arms");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
            let mut draw = rng.below(total.max(1) as usize) as u32;
            for (w, s) in &self.arms {
                if draw < *w {
                    return s.sample(rng);
                }
                draw -= w;
            }
            self.arms.last().expect("non-empty").1.sample(rng)
        }
    }

    /// Box a strategy for use in a [`Union`].
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Marker so the unit type can appear where a strategy is expected in
    /// internal plumbing (never sampled).
    pub struct Never<T>(PhantomData<T>);
}

pub mod arbitrary {
    //! `any::<T>()`-style blanket generation.

    use super::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, spread over a wide range.
            (rng.next_f64() - 0.5) * 2e9
        }
    }

    /// Draw an arbitrary value of `T` (macro plumbing for `name: T` params).
    pub fn any_value<T: Arbitrary>(rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)` — `size` is a fixed length or
    /// a `start..end` range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max.saturating_sub(self.size.min).max(1);
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Run `f` for [`CASES`] deterministic seeds derived from the test name.
pub fn run_cases(name: &str, mut f: impl FnMut(&mut TestRng)) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case in 0..CASES {
        let seed = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            let mut msg = String::new();
            let _ = write!(
                msg,
                "property '{name}' failed at case {case} (seed {seed:#x})"
            );
            if let Some(s) = payload.downcast_ref::<String>() {
                let _ = write!(msg, ": {s}");
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                let _ = write!(msg, ": {s}");
            }
            panic!("{msg}");
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(binding in strategy, plain: Type)`
/// becomes a `#[test]` running [`CASES`] seeded cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    // Accepted and ignored: the shim always runs `CASES` cases.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { $($rest)* }
    };
    ($(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__proptest_rng| {
                $crate::__proptest_bind!(__proptest_rng, $($params)*);
                $body
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Internal: bind each parameter of a `proptest!` fn from its strategy.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $p:ident in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::sample(&($s), $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $p:ident in $s:expr) => {
        let $p = $crate::strategy::Strategy::sample(&($s), $rng);
    };
    ($rng:ident, $p:ident : $ty:ty, $($rest:tt)*) => {
        let $p: $ty = $crate::arbitrary::any_value::<$ty>($rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $p:ident : $ty:ty) => {
        let $p: $ty = $crate::arbitrary::any_value::<$ty>($rng);
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($w as u32, $crate::strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($s))),+
        ])
    };
}

/// Assert within a property (plain assert; the harness reports the case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_shapes() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let s = Strategy::sample(&"w[a-z]{0,7}", &mut rng);
            assert!(s.starts_with('w'));
            assert!(s.len() <= 8);
            let c = Strategy::sample(&"[a-c]", &mut rng);
            assert!(["a", "b", "c"].contains(&c.as_str()));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = crate::TestRng::new(2);
        let u = prop_oneof![
            3 => (0.0f64..1.0).prop_map(Some),
            1 => Just(None),
        ];
        let n = 4000;
        let somes = (0..n)
            .filter(|_| Strategy::sample(&u, &mut rng).is_some())
            .count();
        let frac = somes as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.05, "frac={frac}");
    }

    proptest! {
        #[test]
        fn macro_binds_strategies(xs in prop::collection::vec(0usize..10, 0..5), seed: u64) {
            prop_assert!(xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = seed;
        }

        #[test]
        fn tuple_and_map(pair in (0.0f64..1.0, "[a-b]")) {
            let (x, s) = pair;
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(s == "a" || s == "b");
        }
    }
}
