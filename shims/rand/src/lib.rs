//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this shim implements
//! exactly the surface the workspace uses: `StdRng::seed_from_u64`,
//! `Rng::gen_range` over half-open integer/float ranges, `gen_bool`, and
//! the `SliceRandom` helpers `choose`/`shuffle`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and of more than sufficient quality for seeded synthetic data.
//! It intentionally does **not** promise stream compatibility with the real
//! `rand::rngs::StdRng` (ChaCha12); all workspace determinism tests compare
//! runs against each other, never against externally recorded streams.

/// A uniform random generator: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `[0, 1)` with 53-bit precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range (half-open or inclusive). Mirrors the
    /// real crate's `SampleRange<T>` shape so numeric literals infer their
    /// type from the call site.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// Construction from a 64-bit seed (the only `SeedableRng` entry point the
/// workspace uses).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one word.
    fn seed_from_u64(state: u64) -> Self;
}

/// Element types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<G: Rng>(lo: Self, hi: Self, rng: &mut G) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<G: Rng>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: Rng>(lo: $t, hi: $t, rng: &mut G) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<G: Rng>(lo: $t, hi: $t, rng: &mut G) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f64 {
    fn sample_half_open<G: Rng>(lo: f64, hi: f64, rng: &mut G) -> f64 {
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + rng.next_f64() * (hi - lo);
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive<G: Rng>(lo: f64, hi: f64, rng: &mut G) -> f64 {
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<G: Rng>(lo: f32, hi: f32, rng: &mut G) -> f32 {
        let v = f64::sample_half_open(lo as f64, hi as f64, rng) as f32;
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_inclusive<G: Rng>(lo: f32, hi: f32, rng: &mut G) -> f32 {
        f64::sample_inclusive(lo as f64, hi as f64, rng) as f32
    }
}

/// A range that can produce uniform samples of `T`. The single blanket impl
/// per range shape (as in the real crate) is what lets `gen_range(0.78..0.92)`
/// infer `f64` from the surrounding expression.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<G: Rng>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<G: Rng>(self, rng: &mut G) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Named generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let s = [
                StdRng::splitmix(&mut sm),
                StdRng::splitmix(&mut sm),
                StdRng::splitmix(&mut sm),
                StdRng::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl<R: Rng + ?Sized> Rng for &mut R {
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }
}

/// Sequence helpers (`rand::seq`).
pub mod seq {
    use super::Rng;

    /// The subset of `rand::seq::SliceRandom` the workspace uses.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as usize) % self.len();
                self.get(i)
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(10usize..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn float_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
