//! Minimal stand-in for `parking_lot` (offline build): non-poisoning
//! `RwLock`/`Mutex` wrappers over `std::sync`. A poisoned std lock (a panic
//! while held) is recovered by taking the inner guard — matching
//! parking_lot's "no poisoning" contract closely enough for this workspace.

use std::sync;

/// Reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read guard (never errors).
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Exclusive write guard (never errors).
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Mutex with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock guard (never errors).
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
