//! Minimal stand-in for `criterion` (offline build).
//!
//! Provides the structural API the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter*`,
//! and the `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock measurement (fixed warmup + median of a few timed batches)
//! instead of criterion's statistical machinery. Good enough to spot
//! order-of-magnitude regressions offline; not a replacement for real
//! criterion numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- group: {name} --");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmark a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 10, f);
        self
    }
}

/// A named benchmark group.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples (criterion's knob; here a cap).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted and ignored (shim measures fixed batches).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Benchmark a closure that receives an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (printing is incremental; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.repr)
    }
}

/// Timing handle passed to bench closures.
pub struct Bencher {
    /// Duration of the most recent timed batch.
    elapsed: Duration,
    /// Iterations per timed batch.
    iters: u32,
}

impl Bencher {
    /// Time `routine` repeatedly; the batch median is recorded.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`iter`](Self::iter) but drops outputs after timing stops.
    pub fn iter_with_large_drop<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut outputs = Vec::with_capacity(self.iters as usize);
        let start = Instant::now();
        for _ in 0..self.iters {
            outputs.push(std::hint::black_box(routine()));
        }
        self.elapsed = start.elapsed();
        drop(outputs);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // One warmup batch, then `samples.min(5)` timed batches; report median.
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 1,
    };
    f(&mut bencher);
    let mut times: Vec<Duration> = Vec::new();
    for _ in 0..samples.clamp(1, 5) {
        f(&mut bencher);
        times.push(bencher.elapsed);
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!("bench {label:<50} {median:>12.2?}/iter");
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("f", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("w", 4), &4usize, |b, &n| b.iter(|| n * 2));
        group.finish();
        assert!(count > 0);
        assert_eq!(BenchmarkId::new("a", 1).to_string(), "a/1");
        assert_eq!(BenchmarkId::from_parameter(2).to_string(), "2");
    }
}
