//! Minimal stand-in for `serde_json` (offline build): serialization entry
//! points over the shim `serde::Serialize` trait. Output is valid JSON;
//! "pretty" output is re-indented from the compact form.

use std::fmt;

/// Serialization error (the shim writer is infallible, but callers match on
/// `Result` so the type exists).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Compact JSON encoding.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize(&mut out);
    Ok(out)
}

/// Indented JSON encoding (2 spaces), derived from the compact form.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for c in compact.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                indent += 1;
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(c);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push(c);
                out.push(' ');
            }
            c => out.push(c),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_is_indented_and_balanced() {
        let v = vec![(1usize, 0.5f64), (2, 1.0)];
        let pretty = super::to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(pretty.matches('[').count(), pretty.matches(']').count());
    }

    #[test]
    fn compact_roundtrip_shape() {
        let s = super::to_string(&"a,b{}".to_string()).unwrap();
        assert_eq!(s, "\"a,b{}\"");
        // Braces inside strings must not confuse the pretty-printer.
        let pretty = super::to_string_pretty(&"a{".to_string()).unwrap();
        assert_eq!(pretty, "\"a{\"");
    }
}
