//! `#[derive(Serialize)]` for the in-repo `serde` shim, written against the
//! bare `proc_macro` API (the container has no syn/quote).
//!
//! Supports what the workspace derives on: non-generic structs with named
//! fields. Each field must itself implement the shim's `Serialize`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim `serde::Serialize` (JSON object of the named fields).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut iter = input.into_iter().peekable();
    let mut name: Option<String> = None;

    // Find `struct <Name>`, skipping attributes and visibility.
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows.
                let _ = iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = iter.next() {
                    name = Some(n.to_string());
                }
                break;
            }
            _ => {}
        }
    }
    let name = name.expect("derive(Serialize): expected a struct");

    // Find the brace group holding the fields.
    let body = iter
        .find_map(|tt| match tt {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(g.stream()),
            _ => None,
        })
        .expect("derive(Serialize): expected named fields");

    let fields = field_names(body);
    assert!(
        !fields.is_empty(),
        "derive(Serialize): no named fields found"
    );

    let mut writes = String::new();
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            writes.push_str("out.push(',');");
        }
        writes.push_str(&format!(
            "::serde::write_json_string(out, \"{f}\");out.push(':');\
             ::serde::Serialize::serialize(&self.{f}, out);"
        ));
    }

    format!(
        "impl ::serde::Serialize for {name} {{\
             fn serialize(&self, out: &mut ::std::string::String) {{\
                 out.push('{{'); {writes} out.push('}}');\
             }}\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated impl must parse")
}

/// Extract field identifiers from the token stream of a named-field body:
/// an ident directly followed by `:` at angle-bracket depth 0, outside any
/// attribute, starts a field; everything up to the next top-level `,` is its
/// type and is skipped.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility.
        match iter.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // Skip a possible `(crate)`-style restriction.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name.
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => break,
        }
        fields.push(id.to_string());
        // Skip the type up to the next `,` at angle depth 0.
        let mut angle = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    fields
}
