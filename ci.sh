#!/usr/bin/env sh
# CI gate: formatting, lints on the lake subsystem, then tier-1
# verification (release build + full test suite). Run from the repo root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (metam-lake) =="
cargo clippy -p metam-lake --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "CI OK"
