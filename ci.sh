#!/usr/bin/env sh
# CI gate: formatting, lints on the whole workspace, then tier-1
# verification (release build + full test suite). Run from the repo root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== metam-analyze: workspace invariants (determinism / passivity / panic-freedom) =="
cargo run -q -p metam-analyze -- --workspace

echo "== metam-analyze: --json smoke (obs-validator schema check) =="
cargo run -q -p metam-analyze -- --workspace --json > target/analyze-report.json
cargo test -q -p metam-analyze --test json_schema

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== ingestion bench (smoke: parallel scan + shard + .mtc cache asserts) =="
cargo run --release -q -p metam-bench --bin ingestion -- --quick --out target/bench-smoke

echo "== search bench (smoke: batched query execution determinism asserts) =="
cargo run --release -q -p metam-bench --bin search -- --quick --out target/bench-smoke

echo "== candidates bench (smoke: sketch-backed prepare parity + bounded-load asserts) =="
cargo run --release -q -p metam-bench --bin candidates -- --quick --out target/bench-smoke

echo "== trace smoke: discover --trace emits a validatable JSONL trace =="
TRACE_DIR=$(mktemp -d)
trap 'rm -rf "$TRACE_DIR"' EXIT
./target/release/metam demo "$TRACE_DIR/lake" --seed 7 >/dev/null
./target/release/metam discover "$TRACE_DIR/lake" --din din \
    --task classification:label --budget 60 --seed 7 --threads 2 \
    --trace "$TRACE_DIR/run.jsonl" >/dev/null
./target/release/metam trace-validate "$TRACE_DIR/run.jsonl"

echo "== serve smoke: daemon answers status/discover over TCP, then drains =="
SERVE_LOG="$TRACE_DIR/serve.log"
./target/release/metam serve "$TRACE_DIR/lake" --workers 2 --queue 4 \
    --stop-file "$TRACE_DIR/stop" > "$SERVE_LOG" 2>/dev/null &
SERVE_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/^metam serve listening on //p' "$SERVE_LOG")
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve smoke: daemon never printed its address"; exit 1; }
./target/release/metam request "$ADDR" '{"verb":"status"}' > /dev/null
./target/release/metam request "$ADDR" \
    '{"verb":"discover","lake":"lake","din":"din","task":"classification:label","seed":7,"budget":60}' \
    > "$TRACE_DIR/serve-discover.json"
grep -q '"report":' "$TRACE_DIR/serve-discover.json"
./target/release/metam request "$ADDR" '{"verb":"shutdown"}' > /dev/null
wait "$SERVE_PID"

echo "CI OK"
