#!/usr/bin/env sh
# CI gate: formatting, lints on the whole workspace, then tier-1
# verification (release build + full test suite). Run from the repo root.
set -eu

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (workspace) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== ingestion bench (smoke: parallel scan + shard + .mtc cache asserts) =="
cargo run --release -q -p metam-bench --bin ingestion -- --quick --out target/bench-smoke

echo "CI OK"
