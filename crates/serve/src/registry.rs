//! Hot lake catalogs behind per-lake `RwLock`s.
//!
//! The daemon scans every served lake once at startup and then keeps each
//! [`LakeCatalog`] hot in memory. Requests take a read lock — many
//! concurrent discovers share one catalog snapshot — and revalidate it
//! against the filesystem fingerprints before use: a stale hit (or an
//! explicit `scan` verb) upgrades to the lake's write lock and swaps in a
//! rescan while readers drain. Catalog swaps preserve the lake's
//! [`LoadCounters`](metam_lake::catalog::LoadCounters) handles, so the
//! server-lifetime hit/miss totals in `status` survive refreshes.

use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock};

use metam_lake::{LakeCatalog, ScanOptions};

use crate::protocol::{ErrorKind, ServeError};

#[derive(Debug)]
struct LakeSlot {
    name: String,
    catalog: RwLock<Arc<LakeCatalog>>,
}

/// The daemon's set of served lakes, each hot behind its own `RwLock`.
#[derive(Debug)]
pub struct LakeRegistry {
    lakes: Vec<LakeSlot>,
}

impl LakeRegistry {
    /// Scan each `(name, directory)` pair into a hot catalog. Names must
    /// be unique; scans run sequentially at startup (the per-scan
    /// profiling inside each is already parallel).
    pub fn open(lakes: &[(String, PathBuf)]) -> Result<LakeRegistry, ServeError> {
        if lakes.is_empty() {
            return Err(ServeError::bad_request("serve needs at least one lake"));
        }
        let mut slots: Vec<LakeSlot> = Vec::with_capacity(lakes.len());
        for (name, dir) in lakes {
            if slots.iter().any(|s| s.name == *name) {
                return Err(ServeError::bad_request(format!(
                    "two lakes share the name {name:?}; pass distinct directories"
                )));
            }
            let catalog = LakeCatalog::scan(dir).map_err(|e| {
                ServeError::internal(format!("scanning lake {name:?} at {}: {e}", dir.display()))
            })?;
            slots.push(LakeSlot {
                name: name.clone(),
                catalog: RwLock::new(Arc::new(catalog)),
            });
        }
        Ok(LakeRegistry { lakes: slots })
    }

    /// Served lake names, in registration order.
    pub fn names(&self) -> Vec<String> {
        self.lakes.iter().map(|s| s.name.clone()).collect()
    }

    fn slot(&self, name: &str) -> Result<&LakeSlot, ServeError> {
        self.lakes.iter().find(|s| s.name == name).ok_or_else(|| {
            ServeError::new(
                ErrorKind::UnknownLake,
                format!(
                    "unknown lake {name:?} (serving: {})",
                    self.names().join(", ")
                ),
            )
        })
    }

    /// The current catalog snapshot for `name`, revalidated against the
    /// filesystem: a fresh catalog returns under the read lock; a stale
    /// one upgrades to the write lock and swaps in a rescan first, so the
    /// returned snapshot always reflects the lake as it is on disk.
    pub fn hot(&self, name: &str) -> Result<Arc<LakeCatalog>, ServeError> {
        let slot = self.slot(name)?;
        let current = Arc::clone(&slot.catalog.read().unwrap_or_else(PoisonError::into_inner));
        if !current.is_stale() {
            return Ok(current);
        }
        self.refresh_slot(slot)
    }

    /// The current catalog snapshot without revalidation (for `status`
    /// rendering, which must stay cheap and never trigger rescans).
    pub fn snapshot(&self, name: &str) -> Result<Arc<LakeCatalog>, ServeError> {
        let slot = self.slot(name)?;
        Ok(Arc::clone(
            &slot.catalog.read().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Unconditionally rescan lake `name` in place (the `scan` verb) and
    /// return the refreshed snapshot.
    pub fn refresh(&self, name: &str) -> Result<Arc<LakeCatalog>, ServeError> {
        self.refresh_slot(self.slot(name)?)
    }

    fn refresh_slot(&self, slot: &LakeSlot) -> Result<Arc<LakeCatalog>, ServeError> {
        let mut guard = slot.catalog.write().unwrap_or_else(PoisonError::into_inner);
        // Another request may have refreshed while we waited on the write
        // lock; rescanning an already-fresh catalog is cheap (all cache
        // hits) but swapping it again is pure churn.
        if !guard.is_stale() {
            return Ok(Arc::clone(&guard));
        }
        let fresh = guard
            .rescan(&ScanOptions::default())
            .map_err(|e| ServeError::internal(format!("rescanning lake {:?}: {e}", slot.name)))?;
        *guard = Arc::new(fresh);
        Ok(Arc::clone(&guard))
    }
}

/// Derive a lake name from its directory path (the final path component),
/// the CLI convention for `metam serve <dir>...`.
pub fn lake_name_for(dir: &Path) -> String {
    dir.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| dir.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_lake(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-serve-reg-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("a.csv"), "x,y\n1,2\n3,4\n").unwrap();
        dir
    }

    #[test]
    fn unknown_and_duplicate_lakes_are_typed_errors() {
        let dir = tmp_lake("dup");
        let reg = LakeRegistry::open(&[("demo".into(), dir.clone())]).unwrap();
        assert_eq!(reg.hot("nope").unwrap_err().kind, ErrorKind::UnknownLake);
        let dup = LakeRegistry::open(&[("d".into(), dir.clone()), ("d".into(), dir.clone())]);
        assert_eq!(dup.unwrap_err().kind, ErrorKind::BadRequest);
        assert_eq!(
            LakeRegistry::open(&[]).unwrap_err().kind,
            ErrorKind::BadRequest
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_hit_swaps_in_a_rescan() {
        let dir = tmp_lake("stale");
        let reg = LakeRegistry::open(&[("demo".into(), dir.clone())]).unwrap();
        let first = reg.hot("demo").unwrap();
        assert_eq!(first.len(), 1);
        fs::write(dir.join("b.csv"), "z\n7\n").unwrap();
        let second = reg.hot("demo").unwrap();
        assert_eq!(second.len(), 2, "stale hit revalidated to the new file");
        assert!(
            !Arc::ptr_eq(&first, &second),
            "the slot holds a refreshed catalog"
        );
        assert_eq!(reg.snapshot("demo").unwrap().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
