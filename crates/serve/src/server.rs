//! The daemon: TCP acceptor, connection readers, and the worker pool.
//!
//! This module is the crate's sanctioned thread-spawn and env-read site
//! (enforced by `metam-analyze`): the acceptor, per-connection readers
//! and the fixed worker pool are long-lived service threads that the
//! scoped fork-join pool in `metam-pool` cannot express.
//!
//! Request flow: a connection reader parses one NDJSON line at a time.
//! Cheap introspection verbs (`lakes`, `status`, `shutdown`) answer
//! inline — they must stay answerable even when the queue is full. Heavy
//! verbs (`discover`, `profile`, `scan`) pass budget admission and enter
//! the bounded FIFO [`JobQueue`]; a worker thread picks them up, builds a
//! session over the shared hot catalog, and sends the reply line back to
//! the blocked reader. Shutdown (verb or stop-file) flips the queue into
//! drain mode: in-flight and queued work finishes, new work gets a typed
//! `shutting_down` reply, then [`RunningServer::join`] returns.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use metam_lake::catalog::LoadCounters;
use metam_lake::LakeCatalog;

use crate::protocol::{
    error_reply, parse_request, DiscoverRequest, ErrorKind, Reply, Request, ServeError,
};
use crate::queue::JobQueue;
use crate::registry::LakeRegistry;

/// How often blocking loops (accept, connection reads) wake to check the
/// stop flag and stop-file.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address. The default `127.0.0.1:0` is loopback-only on an
    /// ephemeral port (printed by the CLI on startup).
    pub addr: String,
    /// Worker threads running admitted requests.
    pub workers: usize,
    /// Backlog capacity beyond the workers: the admission ceiling is
    /// `workers + queue` outstanding requests.
    pub queue: usize,
    /// Per-request query-budget cap: a `discover` asking for more than
    /// this many queries is refused with a typed `rejected` reply.
    /// `None` admits any budget, including unbounded.
    pub max_budget: Option<usize>,
    /// Request lines longer than this many bytes get a typed `oversized`
    /// reply (and the line is discarded; the connection survives).
    pub max_line_bytes: usize,
    /// When set, the daemon drains and exits once this file exists — the
    /// SIGINT-equivalent for scripted runs (ci.sh) without signal
    /// handling dependencies.
    pub stop_file: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue: 16,
            max_budget: None,
            max_line_bytes: 1 << 20,
            stop_file: None,
        }
    }
}

impl ServeConfig {
    /// Overlay `METAM_SERVE_WORKERS` / `METAM_SERVE_QUEUE` from the
    /// process environment (explicit CLI flags beat these; this module is
    /// the crate's one sanctioned env-read site).
    pub fn from_env(mut self) -> ServeConfig {
        if let Some(n) = read_env_usize("METAM_SERVE_WORKERS") {
            self.workers = n.max(1);
        }
        if let Some(n) = read_env_usize("METAM_SERVE_QUEUE") {
            self.queue = n;
        }
        self
    }
}

fn read_env_usize(key: &str) -> Option<usize> {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
}

/// What the discover handler returns: the full `discover --json` report
/// plus the per-request cache-delta section, both pre-serialized.
#[derive(Debug)]
pub struct DiscoverOutput {
    /// The complete `RunReport` JSON (the PR 2 wire format).
    pub report_json: String,
    /// Per-request `.mtc`/sketch load deltas as a JSON object.
    pub cache_json: String,
}

/// The pluggable discover runner. The umbrella crate wires the
/// `Session`-backed implementation in; tests substitute gates and stubs.
/// (The indirection exists because `Session` lives above this crate.)
pub type DiscoverFn =
    dyn Fn(&DiscoverRequest, Arc<LakeCatalog>) -> Result<DiscoverOutput, ServeError> + Send + Sync;

struct Job {
    request: Request,
    reply_tx: mpsc::Sender<String>,
    enqueued: Instant,
}

struct Shared {
    config: ServeConfig,
    registry: LakeRegistry,
    discover: Box<DiscoverFn>,
    queue: JobQueue<Job>,
    /// Set after the drain completes; readers and the acceptor exit.
    stopped: AtomicBool,
    /// Per-connection reader handles, joined at shutdown.
    connections: Mutex<Vec<JoinHandle<()>>>,
}

/// A bound, running daemon. Dropping it without
/// [`join`](RunningServer::join) leaves the service threads running for
/// the life of the process.
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

/// Bind `config.addr` and start the daemon: worker pool, acceptor, and
/// (lazily) one reader thread per accepted connection.
pub fn bind(
    config: ServeConfig,
    registry: LakeRegistry,
    discover: Box<DiscoverFn>,
) -> Result<RunningServer, ServeError> {
    let listener = TcpListener::bind(&config.addr)
        .map_err(|e| ServeError::internal(format!("cannot bind {}: {e}", config.addr)))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServeError::internal(format!("cannot set nonblocking accept: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| ServeError::internal(format!("cannot resolve bound address: {e}")))?;

    let workers = config.workers.max(1);
    let ceiling = workers + config.queue;
    let shared = Arc::new(Shared {
        config,
        registry,
        discover,
        queue: JobQueue::new(ceiling),
        stopped: AtomicBool::new(false),
        connections: Mutex::new(Vec::new()),
    });

    let mut threads = Vec::with_capacity(workers + 1);
    for _ in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || worker_loop(&shared)));
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || accept_loop(&shared, listener)));
    }
    Ok(RunningServer {
        addr,
        shared,
        threads,
    })
}

impl RunningServer {
    /// The bound address (resolves the `:0` ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start draining as if a `shutdown` request had arrived (used by
    /// tests and embedders; the wire verb and the stop-file do the same).
    pub fn shutdown(&self) {
        self.shared.queue.drain();
    }

    /// Block until a shutdown drains the queue, then stop and join every
    /// service thread. In-flight and queued requests finish first; this
    /// is the graceful-exit barrier the CLI sits on.
    pub fn join(self) {
        self.shared.queue.wait_idle();
        self.shared.stopped.store(true, Ordering::Relaxed);
        for handle in self.threads {
            let _ = handle.join();
        }
        let connections = {
            let mut guard = self
                .shared
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for handle in connections {
            let _ = handle.join();
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    loop {
        if shared.stopped.load(Ordering::Relaxed) {
            return;
        }
        if let Some(stop_file) = &shared.config.stop_file {
            if stop_file.exists() {
                shared.queue.drain();
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared_for_conn = Arc::clone(shared);
                let handle = std::thread::spawn(move || connection_loop(&shared_for_conn, stream));
                shared
                    .connections
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Read NDJSON lines off one connection until EOF or server stop, writing
/// one reply line per request line. An oversized line is discarded (with
/// a typed reply) without dropping the connection; read timeouts only
/// exist so the loop can observe the stop flag.
fn connection_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        if shared.stopped.load(Ordering::Relaxed) {
            return;
        }
        let chunk = match reader.fill_buf() {
            Ok([]) => return, // EOF
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        let (taken, complete) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (chunk.len(), false),
        };
        if !oversized {
            line.extend_from_slice(&chunk[..taken]);
            if line.len() > shared.config.max_line_bytes {
                oversized = true;
                line.clear();
            }
        }
        reader.consume(taken);
        if !complete {
            continue;
        }
        let reply = if oversized {
            oversized = false;
            error_reply(&ServeError::new(
                ErrorKind::Oversized,
                format!(
                    "request line exceeds {} bytes; it was discarded",
                    shared.config.max_line_bytes
                ),
            ))
        } else {
            let text = String::from_utf8_lossy(&line).into_owned();
            line.clear();
            if text.trim().is_empty() {
                continue;
            }
            handle_line(shared, &text)
        };
        if writer
            .write_all(reply.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// Route one parsed request line to its reply. Blocks while a queued verb
/// runs (the reader holds the client's turn); inline verbs answer
/// immediately.
fn handle_line(shared: &Arc<Shared>, text: &str) -> String {
    let request = match parse_request(text) {
        Ok(request) => request,
        Err(e) => return error_reply(&e),
    };
    match &request {
        Request::Lakes => lakes_reply(shared),
        Request::Status => status_reply(shared),
        Request::Shutdown => {
            shared.queue.drain();
            let depth = shared.queue.depth();
            Reply::ok("shutdown")
                .int_field("draining_queued", depth.queued as u64)
                .int_field("draining_active", depth.active as u64)
                .finish()
        }
        Request::Discover(d) => {
            // Budget-aware admission, decided before the job takes a
            // queue slot: a budget over the server's cap can never run,
            // so it must not occupy the backlog either.
            if let Some(cap) = shared.config.max_budget {
                if d.budget > cap {
                    shared.queue.note_rejected();
                    metam_obs::counter_add("serve.rejected", 1);
                    return error_reply(&ServeError::new(
                        ErrorKind::Rejected,
                        format!(
                            "requested budget {} exceeds the server cap of {cap} queries",
                            budget_str(d.budget)
                        ),
                    ));
                }
            }
            enqueue_and_wait(shared, request)
        }
        Request::Profile { .. } | Request::Scan { .. } => enqueue_and_wait(shared, request),
    }
}

fn budget_str(budget: usize) -> String {
    if budget == usize::MAX {
        "unbounded".to_string()
    } else {
        budget.to_string()
    }
}

fn enqueue_and_wait(shared: &Arc<Shared>, request: Request) -> String {
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        request,
        reply_tx,
        enqueued: Instant::now(),
    };
    if let Err(e) = shared.queue.submit(job) {
        metam_obs::counter_add("serve.rejected", 1);
        return error_reply(&e);
    }
    reply_rx.recv().unwrap_or_else(|_| {
        error_reply(&ServeError::internal(
            "worker dropped the request without replying",
        ))
    })
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.next() {
        metam_obs::record("serve.queue_wait", job.enqueued.elapsed().as_secs_f64());
        // Histogram of concurrency at pickup; its max is the peak.
        metam_obs::record("serve.active", shared.queue.depth().active as f64);
        metam_obs::counter_add("serve.request", 1);
        let verb = job.request.verb();
        let mut span = metam_obs::span("serve.request", verb);
        let reply = match run_request(shared, &job.request) {
            Ok(reply) => reply,
            Err(e) => {
                span.field("error", 1.0);
                error_reply(&e)
            }
        };
        drop(span);
        let _ = job.reply_tx.send(reply);
        shared.queue.done();
    }
}

/// Execute an admitted (queued) request on a worker.
fn run_request(shared: &Arc<Shared>, request: &Request) -> Result<String, ServeError> {
    match request {
        Request::Discover(d) => {
            let catalog = shared.registry.hot(&d.lake)?;
            let output = (shared.discover)(d, catalog)?;
            // `report` renders last so consumers can also split the line
            // on `"report":` and parse the embedded CLI report directly.
            Ok(Reply::ok("discover")
                .str_field("lake", &d.lake)
                .raw_field("cache", &output.cache_json)
                .raw_field("report", &output.report_json)
                .finish())
        }
        Request::Profile { lake, table } => {
            let catalog = shared.registry.hot(lake)?;
            if let Some(name) = table {
                if catalog.get(name).is_none() {
                    return Err(ServeError::bad_request(format!(
                        "unknown table {name:?} in lake {lake:?}"
                    )));
                }
            }
            let profile = crate::render::profile_json(&catalog, table.as_deref());
            Ok(Reply::ok("profile")
                .str_field("lake", lake)
                .raw_field("profile", &profile)
                .finish())
        }
        Request::Scan { lake } => {
            let catalog = shared.registry.refresh(lake)?;
            Ok(Reply::ok("scan")
                .str_field("lake", lake)
                .int_field("tables", catalog.len() as u64)
                .int_field("rows", catalog.total_rows() as u64)
                .int_field("columns", catalog.total_columns() as u64)
                .int_field("profile_hits", catalog.cache_hits() as u64)
                .int_field("profile_misses", catalog.cache_misses() as u64)
                .int_field("shards_written", catalog.shards_written() as u64)
                .finish())
        }
        Request::Lakes | Request::Status | Request::Shutdown => Err(ServeError::internal(
            "introspection verbs are handled inline, never queued",
        )),
    }
}

fn lakes_reply(shared: &Arc<Shared>) -> String {
    let mut lakes = String::from("[");
    for (i, name) in shared.registry.names().iter().enumerate() {
        if i > 0 {
            lakes.push(',');
        }
        match shared.registry.snapshot(name) {
            Ok(catalog) => {
                lakes.push_str("{\"name\":");
                metam_obs::json::write_string(&mut lakes, name);
                lakes.push_str(&format!(
                    ",\"root\":{root},\"tables\":{},\"rows\":{},\"columns\":{}}}",
                    catalog.len(),
                    catalog.total_rows(),
                    catalog.total_columns(),
                    root = {
                        let mut s = String::new();
                        metam_obs::json::write_string(
                            &mut s,
                            &catalog.root().display().to_string(),
                        );
                        s
                    },
                ));
            }
            Err(_) => lakes.push_str("{}"),
        }
    }
    lakes.push(']');
    Reply::ok("lakes").raw_field("lakes", &lakes).finish()
}

fn counters_json(counters: &Arc<LoadCounters>, sketch: &Arc<LoadCounters>) -> String {
    format!(
        "{{\"mtc_loads\":{},\"csv_fallbacks\":{},\"sketch_hits\":{},\"sketch_fallbacks\":{}}}",
        counters.hits(),
        counters.misses(),
        sketch.hits(),
        sketch.misses(),
    )
}

fn status_reply(shared: &Arc<Shared>) -> String {
    let depth = shared.queue.depth();
    let mut lakes = String::from("[");
    for (i, name) in shared.registry.names().iter().enumerate() {
        if i > 0 {
            lakes.push(',');
        }
        match shared.registry.snapshot(name) {
            Ok(catalog) => {
                lakes.push_str("{\"name\":");
                metam_obs::json::write_string(&mut lakes, name);
                lakes.push_str(",\"tables\":");
                lakes.push_str(&catalog.len().to_string());
                // Server-lifetime load totals: these counters survive
                // catalog refreshes (rescan adopts the same handles).
                lakes.push_str(",\"loads\":");
                lakes.push_str(&counters_json(
                    &catalog.load_counters(),
                    &catalog.sketch_load_counters(),
                ));
                lakes.push('}');
            }
            Err(_) => lakes.push_str("{}"),
        }
    }
    lakes.push(']');
    Reply::ok("status")
        .bool_field("shutting_down", depth.draining)
        .int_field("workers", shared.config.workers.max(1) as u64)
        .int_field("ceiling", shared.queue.ceiling() as u64)
        .int_field("queued", depth.queued as u64)
        .int_field("active", depth.active as u64)
        .int_field("served", depth.served)
        .int_field("rejected", depth.rejected)
        .raw_field("lakes", &lakes)
        .finish()
}
