//! Bounded FIFO request queue with budget-aware admission.
//!
//! Admission is decided at submit time against a server-wide ceiling on
//! *outstanding* work (queued + actively running): an over-ceiling submit
//! gets a typed `rejected` error immediately — the caller replies on the
//! wire instead of hanging — and a submit during shutdown gets a typed
//! `shutting_down` error. Workers block on [`JobQueue::next`] and drain
//! strictly in arrival order; [`JobQueue::drain`] flips the queue into
//! shutdown mode, after which `next` returns `None` once the backlog is
//! empty and [`JobQueue::wait_idle`] unblocks once in-flight work
//! finishes.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use crate::protocol::{ErrorKind, ServeError};

/// A point-in-time view of the queue, rendered into `status` replies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueDepth {
    /// Jobs waiting in the backlog.
    pub queued: usize,
    /// Jobs currently running on workers.
    pub active: usize,
    /// Jobs completed over the queue's lifetime.
    pub served: u64,
    /// Requests refused over the queue's lifetime (ceiling, shutdown, or
    /// — via [`JobQueue::note_rejected`] — the per-request budget cap).
    pub rejected: u64,
    /// Whether [`drain`](JobQueue::drain) has been called.
    pub draining: bool,
}

struct QueueState<T> {
    jobs: VecDeque<T>,
    active: usize,
    served: u64,
    rejected: u64,
    draining: bool,
}

/// The server's bounded FIFO job queue. `T` is the queued work item.
pub struct JobQueue<T> {
    state: Mutex<QueueState<T>>,
    /// Wakes workers blocked in [`next`](Self::next).
    takers: Condvar,
    /// Wakes [`wait_idle`](Self::wait_idle) once drained and empty.
    idle: Condvar,
    ceiling: usize,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `ceiling` outstanding (queued + active)
    /// jobs at once. A ceiling of 0 is clamped to 1 so the queue is never
    /// born unable to admit anything.
    pub fn new(ceiling: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                active: 0,
                served: 0,
                rejected: 0,
                draining: false,
            }),
            takers: Condvar::new(),
            idle: Condvar::new(),
            ceiling: ceiling.max(1),
        }
    }

    /// The outstanding-work ceiling admission is checked against.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admit a job, or refuse it with a typed error: `shutting_down` when
    /// draining, `rejected` when the ceiling is reached.
    pub fn submit(&self, job: T) -> Result<(), ServeError> {
        let mut state = self.lock();
        if state.draining {
            state.rejected += 1;
            return Err(ServeError::new(
                ErrorKind::ShuttingDown,
                "server is draining and admits no new requests",
            ));
        }
        if state.jobs.len() + state.active >= self.ceiling {
            state.rejected += 1;
            return Err(ServeError::new(
                ErrorKind::Rejected,
                format!(
                    "admission ceiling reached ({} outstanding requests); retry later",
                    self.ceiling
                ),
            ));
        }
        state.jobs.push_back(job);
        drop(state);
        self.takers.notify_one();
        Ok(())
    }

    /// Take the next job in arrival order, blocking while the queue is
    /// empty. Returns `None` once the queue is draining and the backlog is
    /// exhausted — the worker's signal to exit.
    pub fn next(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.active += 1;
                return Some(job);
            }
            if state.draining {
                return None;
            }
            state = self
                .takers
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mark the job most recently taken by this worker as finished.
    pub fn done(&self) {
        let mut state = self.lock();
        state.active = state.active.saturating_sub(1);
        state.served += 1;
        let idle_now = state.draining && state.active == 0 && state.jobs.is_empty();
        drop(state);
        if idle_now {
            self.idle.notify_all();
        }
    }

    /// Count an admission refusal decided outside [`submit`](Self::submit)
    /// (the per-request budget cap, checked before a job is even built) so
    /// `status` reports every refused request, whatever the gate.
    pub fn note_rejected(&self) {
        self.lock().rejected += 1;
    }

    /// Flip into shutdown mode: new submits are refused with
    /// `shutting_down`; queued jobs still drain in order.
    pub fn drain(&self) {
        let mut state = self.lock();
        state.draining = true;
        drop(state);
        self.takers.notify_all();
        self.idle.notify_all();
    }

    /// Block until the queue is draining with no queued or active jobs
    /// left — the graceful-shutdown barrier.
    pub fn wait_idle(&self) {
        let mut state = self.lock();
        while !(state.draining && state.active == 0 && state.jobs.is_empty()) {
            state = self
                .idle
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A consistent point-in-time snapshot for `status` replies.
    pub fn depth(&self) -> QueueDepth {
        let state = self.lock();
        QueueDepth {
            queued: state.jobs.len(),
            active: state.active,
            served: state.served,
            rejected: state.rejected,
            draining: state.draining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_rejects_the_n_plus_first_submit() {
        let queue = JobQueue::new(3);
        for i in 0..3 {
            queue.submit(i).unwrap();
        }
        let err = queue.submit(99).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Rejected, "4th submit over ceiling 3");
        assert_eq!(queue.depth().rejected, 1);
        assert_eq!(queue.depth().queued, 3);

        // Taking a job moves it queued→active: still outstanding, still
        // counted against the ceiling.
        assert_eq!(queue.next(), Some(0));
        assert_eq!(queue.submit(99).unwrap_err().kind, ErrorKind::Rejected);
        // Finishing it frees a slot.
        queue.done();
        queue.submit(3).unwrap();
        assert_eq!(queue.depth().served, 1);
    }

    #[test]
    fn drain_refuses_new_work_but_serves_the_backlog_in_order() {
        let queue = JobQueue::new(8);
        queue.submit("a").unwrap();
        queue.submit("b").unwrap();
        queue.drain();
        assert_eq!(
            queue.submit("c").unwrap_err().kind,
            ErrorKind::ShuttingDown,
            "no admissions while draining"
        );
        assert_eq!(queue.next(), Some("a"), "backlog drains FIFO");
        queue.done();
        assert_eq!(queue.next(), Some("b"));
        queue.done();
        assert_eq!(queue.next(), None, "drained queue releases workers");
        queue.wait_idle();
        assert!(queue.depth().draining);
        assert_eq!(queue.depth().served, 2);
    }
}
