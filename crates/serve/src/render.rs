//! Machine-readable catalog statistics, shared by `metam profile --json`
//! and the daemon's `profile` verb — one renderer so the two surfaces can
//! never drift apart.

use metam_lake::LakeCatalog;
use metam_obs::json::{write_f64, write_string};

/// Per-table column stats plus the scan's profile-cache, `.mtc`-vs-CSV
/// load and sketch-record counters, as a single-line JSON object.
pub fn profile_json(catalog: &LakeCatalog, only: Option<&str>) -> String {
    let counters = catalog.load_counters();
    let mut out = String::from("{\"cache\":{");
    out.push_str(&format!(
        "\"profile_hits\":{},\"profile_misses\":{},\"mtc_loads\":{},\"csv_fallbacks\":{},\"sketch_hits\":{},\"sketch_misses\":{}}}",
        catalog.cache_hits(),
        catalog.cache_misses(),
        counters.hits(),
        counters.misses(),
        catalog.sketch_hits(),
        catalog.sketch_misses(),
    ));
    out.push_str(",\"tables\":[");
    let mut first_table = true;
    for entry in catalog.entries() {
        if only.is_some_and(|n| n != entry.name) {
            continue;
        }
        if !first_table {
            out.push(',');
        }
        first_table = false;
        out.push_str("{\"table\":");
        write_string(&mut out, &entry.name);
        out.push_str(&format!(",\"rows\":{},\"columns\":[", entry.nrows));
        for (i, c) in entry.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_string(&mut out, &c.display_name(i));
            out.push_str(",\"dtype\":");
            write_string(&mut out, metam_lake::stats::dtype_to_str(c.dtype));
            out.push_str(&format!(
                ",\"nulls\":{},\"distinct\":{}",
                c.null_count, c.distinct_count
            ));
            for (key, v) in [("min", c.min), ("max", c.max), ("mean", c.mean)] {
                out.push_str(&format!(",\"{key}\":"));
                match v {
                    Some(x) => write_f64(&mut out, x),
                    None => out.push_str("null"),
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}
