//! metam-serve: discovery-as-a-service.
//!
//! The long-lived daemon behind `metam serve`: one or more
//! [`LakeCatalog`](metam_lake::LakeCatalog)s held hot in memory behind
//! per-lake `RwLock`s ([`registry::LakeRegistry`]), an NDJSON-over-TCP
//! wire protocol ([`protocol`]) answering `discover` / `profile` / `scan`
//! / `lakes` / `status` / `shutdown`, and a bounded FIFO request queue
//! with budget-aware admission ([`queue::JobQueue`]) feeding a fixed
//! worker pool ([`server`]).
//!
//! The crate is deliberately session-agnostic: it depends only on
//! `metam-lake` + `metam-obs`, and actual discovery runs through the
//! pluggable [`server::DiscoverFn`] the umbrella crate wires in (a
//! `Session` built over the shared catalog — see `metam::serve`). That
//! keeps the daemon testable with stub handlers and free of dependency
//! cycles.
//!
//! Wire format: one JSON object per line in each direction. `discover`
//! replies embed the exact `discover --json` report, so existing report
//! consumers parse daemon replies unchanged. Every failure — malformed
//! line, unknown verb, over-budget request, shutdown in progress — is a
//! typed single-line `"ok":false` reply, never a dropped connection.

#![forbid(unsafe_code)]

pub mod protocol;
pub mod queue;
pub mod registry;
pub mod render;
pub mod server;

pub use protocol::{
    error_reply, parse_request, DiscoverRequest, ErrorKind, Reply, Request, ServeError,
    DEFAULT_BUDGET,
};
pub use queue::{JobQueue, QueueDepth};
pub use registry::{lake_name_for, LakeRegistry};
pub use server::{bind, DiscoverFn, DiscoverOutput, RunningServer, ServeConfig};
