//! The NDJSON wire protocol: one JSON object per line in, one per line out.
//!
//! Every request is a single-line JSON object with a string `verb` field
//! plus verb-specific arguments; every reply is a single-line JSON object
//! with a boolean `ok` field. Successful replies carry `"ok":true`, the
//! echoed `verb`, and verb-specific payload fields; failures carry
//! `"ok":false`, a machine-matchable `error` kind from [`ErrorKind`], and
//! a human-readable `message`. Malformed input of any shape — bad JSON, an
//! unknown verb, a missing argument — produces a typed error reply on the
//! same connection, never a panic or a dropped socket.
//!
//! The `discover` reply embeds the exact `discover --json` report as its
//! `report` field, so existing consumers of the CLI output parse daemon
//! replies unchanged.

use std::fmt;

use metam_obs::json::{self, Value};

/// Query budget applied when a `discover` request omits `budget`
/// (matches the CLI default).
pub const DEFAULT_BUDGET: usize = 300;

/// Machine-matchable reply error kinds (the `error` field of a
/// `"ok":false` reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line did not parse, or a required argument is missing
    /// or malformed.
    BadRequest,
    /// The `verb` field names no known verb.
    UnknownVerb,
    /// The named lake is not served by this daemon.
    UnknownLake,
    /// The request line exceeded the server's line-length ceiling.
    Oversized,
    /// Admission control refused the request (concurrency ceiling or
    /// per-request budget cap).
    Rejected,
    /// The server is draining for shutdown and admits no new work.
    ShuttingDown,
    /// The request was admitted but failed while running.
    Internal,
}

impl ErrorKind {
    /// The wire label (the `error` field value).
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::UnknownVerb => "unknown_verb",
            ErrorKind::UnknownLake => "unknown_lake",
            ErrorKind::Oversized => "oversized",
            ErrorKind::Rejected => "rejected",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A typed protocol failure: everything that can go wrong between reading
/// a request line and writing its reply.
#[derive(Debug)]
pub struct ServeError {
    /// The wire-visible kind.
    pub kind: ErrorKind,
    /// Human-readable context for the `message` field.
    pub message: String,
}

impl ServeError {
    /// A typed error of any kind.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> ServeError {
        ServeError {
            kind,
            message: message.into(),
        }
    }

    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> ServeError {
        ServeError::new(ErrorKind::BadRequest, message)
    }

    /// An `internal` error.
    pub fn internal(message: impl Into<String>) -> ServeError {
        ServeError::new(ErrorKind::Internal, message)
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for ServeError {}

/// A parsed `discover` request: which lake to search and how.
#[derive(Debug, Clone)]
pub struct DiscoverRequest {
    /// Lake name (as registered with the daemon).
    pub lake: String,
    /// Input dataset: a catalog table name or a path to an external CSV.
    pub din: String,
    /// Task spec, `kind:arg` (e.g. `classification:label`).
    pub task: String,
    /// Goal utility; search stops early once reached.
    pub theta: Option<f64>,
    /// Query budget. `usize::MAX` means unbounded (wire value `null`);
    /// omitted defaults to [`DEFAULT_BUDGET`].
    pub budget: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Candidate-count cap, when requested.
    pub max_candidates: Option<usize>,
    /// Profile sample-size override, when requested.
    pub profile_sample: Option<usize>,
    /// Search worker threads (never changes results, only wall-clock).
    pub threads: usize,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run goal-oriented discovery over a served lake.
    Discover(DiscoverRequest),
    /// Per-table profile stats for a served lake (the `metam profile
    /// --json` payload), optionally narrowed to one table.
    Profile {
        /// Lake name.
        lake: String,
        /// Restrict to this table, when given.
        table: Option<String>,
    },
    /// Force an in-place rescan of a served lake.
    Scan {
        /// Lake name.
        lake: String,
    },
    /// List the served lakes.
    Lakes,
    /// Queue depth, admission counters, and per-lake lifetime load stats.
    Status,
    /// Drain in-flight requests and exit.
    Shutdown,
}

impl Request {
    /// The wire verb, echoed in replies and telemetry.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Discover(_) => "discover",
            Request::Profile { .. } => "profile",
            Request::Scan { .. } => "scan",
            Request::Lakes => "lakes",
            Request::Status => "status",
            Request::Shutdown => "shutdown",
        }
    }
}

fn required_str(obj: &Value, key: &str, verb: &str) -> Result<String, ServeError> {
    match obj.get(key) {
        Some(v) => v.as_str().map(String::from).ok_or_else(|| {
            ServeError::bad_request(format!("{verb:?} request field {key:?} must be a string"))
        }),
        None => Err(ServeError::bad_request(format!(
            "{verb:?} request needs a string {key:?} field"
        ))),
    }
}

fn optional_str(obj: &Value, key: &str, verb: &str) -> Result<Option<String>, ServeError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_str().map(|s| Some(s.to_string())).ok_or_else(|| {
            ServeError::bad_request(format!("{verb:?} request field {key:?} must be a string"))
        }),
    }
}

fn as_unsigned(v: &Value, key: &str, verb: &str) -> Result<u64, ServeError> {
    let n = v.as_f64().ok_or_else(|| {
        ServeError::bad_request(format!("{verb:?} request field {key:?} must be a number"))
    })?;
    if !(n.is_finite() && n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64) {
        return Err(ServeError::bad_request(format!(
            "{verb:?} request field {key:?} must be a non-negative integer, got {n}"
        )));
    }
    Ok(n as u64)
}

fn optional_usize(obj: &Value, key: &str, verb: &str) -> Result<Option<usize>, ServeError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => Ok(Some(as_unsigned(v, key, verb)? as usize)),
    }
}

fn optional_f64(obj: &Value, key: &str, verb: &str) -> Result<Option<f64>, ServeError> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v.as_f64().map(Some).ok_or_else(|| {
            ServeError::bad_request(format!("{verb:?} request field {key:?} must be a number"))
        }),
    }
}

/// Parse one request line into a [`Request`], or a typed error describing
/// exactly what was wrong with it.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let value = json::parse(line.trim())
        .map_err(|e| ServeError::bad_request(format!("malformed JSON request: {e}")))?;
    if !matches!(value, Value::Obj(_)) {
        return Err(ServeError::bad_request(
            "request must be a JSON object with a \"verb\" field",
        ));
    }
    let verb = match value.get("verb") {
        Some(v) => v
            .as_str()
            .ok_or_else(|| ServeError::bad_request("request field \"verb\" must be a string"))?,
        None => {
            return Err(ServeError::bad_request(
                "request needs a string \"verb\" field",
            ))
        }
    };
    match verb {
        "discover" => {
            // `"budget": null` means unbounded; omitted means the CLI
            // default — so scripted clients and humans get CLI parity.
            let budget = match value.get("budget") {
                None => DEFAULT_BUDGET,
                Some(Value::Null) => usize::MAX,
                Some(v) => as_unsigned(v, "budget", verb)? as usize,
            };
            Ok(Request::Discover(DiscoverRequest {
                lake: required_str(&value, "lake", verb)?,
                din: required_str(&value, "din", verb)?,
                task: required_str(&value, "task", verb)?,
                theta: optional_f64(&value, "theta", verb)?,
                budget,
                seed: match value.get("seed") {
                    None | Some(Value::Null) => 0,
                    Some(v) => as_unsigned(v, "seed", verb)?,
                },
                max_candidates: optional_usize(&value, "max_candidates", verb)?,
                profile_sample: optional_usize(&value, "profile_sample", verb)?,
                threads: optional_usize(&value, "threads", verb)?.unwrap_or(1).max(1),
            }))
        }
        "profile" => Ok(Request::Profile {
            lake: required_str(&value, "lake", verb)?,
            table: optional_str(&value, "table", verb)?,
        }),
        "scan" => Ok(Request::Scan {
            lake: required_str(&value, "lake", verb)?,
        }),
        "lakes" => Ok(Request::Lakes),
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::new(
            ErrorKind::UnknownVerb,
            format!(
                "unknown verb {other:?} (expected discover, profile, scan, lakes, status or shutdown)"
            ),
        )),
    }
}

/// Builder for a single-line `"ok":true` reply. Fields render in insertion
/// order; raw fields splice pre-serialized JSON (e.g. a whole
/// `discover --json` report) without re-encoding.
#[derive(Debug)]
pub struct Reply {
    buf: String,
}

impl Reply {
    /// Start an ok-reply for `verb`.
    pub fn ok(verb: &str) -> Reply {
        let mut buf = String::from("{\"ok\":true,\"verb\":");
        json::write_string(&mut buf, verb);
        Reply { buf }
    }

    /// Append a string field.
    pub fn str_field(mut self, key: &str, value: &str) -> Reply {
        self.key(key);
        json::write_string(&mut self.buf, value);
        self
    }

    /// Append an unsigned integer field.
    pub fn int_field(mut self, key: &str, value: u64) -> Reply {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Append a boolean field.
    pub fn bool_field(mut self, key: &str, value: bool) -> Reply {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Append a field whose value is already-serialized JSON.
    pub fn raw_field(mut self, key: &str, raw_json: &str) -> Reply {
        self.key(key);
        self.buf.push_str(raw_json);
        self
    }

    /// Close the object and return the reply line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        json::write_string(&mut self.buf, key);
        self.buf.push(':');
    }
}

/// Render a typed error as a single-line `"ok":false` reply.
pub fn error_reply(err: &ServeError) -> String {
    let mut buf = String::from("{\"ok\":false,\"error\":");
    json::write_string(&mut buf, err.kind.label());
    buf.push_str(",\"message\":");
    json::write_string(&mut buf, &err.message);
    buf.push('}');
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_verb() {
        assert!(matches!(
            parse_request("{\"verb\":\"lakes\"}"),
            Ok(Request::Lakes)
        ));
        assert!(matches!(
            parse_request("{\"verb\":\"status\"}"),
            Ok(Request::Status)
        ));
        assert!(matches!(
            parse_request("{\"verb\":\"shutdown\"}"),
            Ok(Request::Shutdown)
        ));
        match parse_request("{\"verb\":\"scan\",\"lake\":\"demo\"}") {
            Ok(Request::Scan { lake }) => assert_eq!(lake, "demo"),
            other => panic!("expected scan, got {other:?}"),
        }
        match parse_request("{\"verb\":\"profile\",\"lake\":\"demo\",\"table\":\"t\"}") {
            Ok(Request::Profile { lake, table }) => {
                assert_eq!(lake, "demo");
                assert_eq!(table.as_deref(), Some("t"));
            }
            other => panic!("expected profile, got {other:?}"),
        }
    }

    #[test]
    fn discover_defaults_and_null_budget() {
        let line = "{\"verb\":\"discover\",\"lake\":\"demo\",\"din\":\"din\",\"task\":\"classification:label\"}";
        match parse_request(line) {
            Ok(Request::Discover(d)) => {
                assert_eq!(d.budget, DEFAULT_BUDGET);
                assert_eq!(d.seed, 0);
                assert_eq!(d.threads, 1);
                assert_eq!(d.theta, None);
            }
            other => panic!("expected discover, got {other:?}"),
        }
        let line = "{\"verb\":\"discover\",\"lake\":\"demo\",\"din\":\"din\",\"task\":\"clustering:3\",\"budget\":null,\"seed\":7}";
        match parse_request(line) {
            Ok(Request::Discover(d)) => {
                assert_eq!(d.budget, usize::MAX, "null budget is unbounded");
                assert_eq!(d.seed, 7);
            }
            other => panic!("expected discover, got {other:?}"),
        }
    }

    #[test]
    fn typed_errors_for_malformed_input() {
        let kind = |line: &str| parse_request(line).unwrap_err().kind;
        assert_eq!(kind("not json at all"), ErrorKind::BadRequest);
        assert_eq!(kind("[1,2,3]"), ErrorKind::BadRequest);
        assert_eq!(kind("{\"no\":\"verb\"}"), ErrorKind::BadRequest);
        assert_eq!(kind("{\"verb\":\"frobnicate\"}"), ErrorKind::UnknownVerb);
        assert_eq!(
            kind("{\"verb\":\"discover\",\"din\":\"d\",\"task\":\"clustering:2\"}"),
            ErrorKind::BadRequest,
            "missing lake name"
        );
        assert_eq!(
            kind(
                "{\"verb\":\"discover\",\"lake\":\"l\",\"din\":\"d\",\"task\":\"t\",\"budget\":-3}"
            ),
            ErrorKind::BadRequest
        );
        assert_eq!(
            kind("{\"verb\":\"discover\",\"lake\":\"l\",\"din\":\"d\",\"task\":\"t\",\"budget\":1.5}"),
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn replies_are_single_line_json() {
        let ok = Reply::ok("status")
            .bool_field("shutting_down", false)
            .int_field("active", 3)
            .raw_field("lakes", "[{\"name\":\"demo\"}]")
            .str_field("note", "a\"quote\"")
            .finish();
        assert!(!ok.contains('\n'));
        let parsed = json::parse(&ok).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(parsed.get("active").and_then(Value::as_f64), Some(3.0));
        assert_eq!(
            parsed.get("note").and_then(Value::as_str),
            Some("a\"quote\"")
        );

        let err = error_reply(&ServeError::new(ErrorKind::Rejected, "queue full"));
        let parsed = json::parse(&err).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(
            parsed.get("error").and_then(Value::as_str),
            Some("rejected")
        );
    }
}
