#![forbid(unsafe_code)]
//! # metam-lake
//!
//! The on-disk data-lake layer: point goal-oriented discovery at a
//! **directory of CSV files** instead of an in-memory synthetic scenario.
//!
//! Pieces:
//!
//! * [`catalog`] — a [`LakeCatalog`] that scans a directory (profiling
//!   changed files **in parallel**), registers every CSV with schema
//!   metadata and per-column summary statistics ([`stats::ColumnStats`]),
//!   and persists a sharded manifest ([`manifest`]) plus a binary
//!   columnar table cache ([`cache`]) under `<lake>/.metam/` so repeated
//!   scans skip re-profiling — and repeated loads skip re-parsing — files
//!   whose size and mtime are unchanged,
//! * [`sketch`] — one versioned, checksummed discovery-sketch record per
//!   table (`sketches/<file>.mks`): per-column MinHash + exact distinct
//!   count, null count, dtype and value range, written at scan time so
//!   candidate generation runs off the catalog without loading payloads,
//! * [`prepare`] — [`parse_task`] (the single authority on CLI task
//!   specs), [`prepare::repository_tables`] (which catalog tables a
//!   discovery run searches over) and its sketch-backed twin
//!   [`prepare::repository_descriptors`] (payload-free descriptors plus a
//!   lazy [`prepare::CatalogTableProvider`]),
//! * [`export`] — write a `metam-datagen` scenario out *as* a CSV lake
//!   (the `datagen → lake → rediscover` round trip is the subsystem's
//!   self-validating integration test).
//!
//! The user-facing front door — `Session::from_lake` / `from_catalog`, the
//! `metam` CLI binary — lives in the umbrella `metam` crate (this crate
//! cannot depend on it):
//!
//! ```no_run
//! use metam_core::prepared::{assemble, AssembleOptions};
//! use metam_lake::{parse_task, prepare::repository_tables, LakeCatalog};
//! use metam_profile::default_profiles;
//!
//! let catalog = LakeCatalog::scan("./lake")?;
//! let din = catalog.load_table("din")?;
//! let parsed = parse_task("classification:label", 7)?;
//! let target_column = parsed.target.as_deref().and_then(|t| din.column_index(t).ok());
//! let tables = repository_tables(&catalog, &din, None)?;
//! let prepared = assemble(
//!     din, tables, target_column, parsed.task,
//!     &default_profiles(), &AssembleOptions::default(),
//! );
//! let result = metam_core::Metam::default().run(&prepared.inputs());
//! # Ok::<(), metam_lake::LakeError>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod catalog;
pub mod export;
pub mod manifest;
pub mod prepare;
pub mod sketch;
pub mod stats;

pub use catalog::{LakeCatalog, LoadCounters, ScanOptions, TableMeta};
pub use export::export_scenario;
pub use prepare::{parse_task, CatalogTableProvider, ParsedTask, TaskKind};
pub use sketch::TableSketch;
pub use stats::ColumnStats;

use std::fmt;

/// Errors raised by lake operations.
#[derive(Debug)]
pub enum LakeError {
    /// Filesystem access failed.
    Io(String),
    /// A CSV file failed to parse.
    Table(metam_table::TableError),
    /// The persisted manifest is malformed.
    Manifest(String),
    /// A referenced table is not in the catalog.
    UnknownTable(String),
    /// A user-facing argument (task spec, flag) is invalid.
    BadArgument(String),
}

impl fmt::Display for LakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LakeError::Io(m) => write!(f, "io error: {m}"),
            LakeError::Table(e) => write!(f, "table error: {e}"),
            LakeError::Manifest(m) => write!(f, "manifest error: {m}"),
            LakeError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            LakeError::BadArgument(m) => write!(f, "bad argument: {m}"),
        }
    }
}

impl std::error::Error for LakeError {}

impl From<metam_table::TableError> for LakeError {
    fn from(e: metam_table::TableError) -> LakeError {
        LakeError::Table(e)
    }
}

impl From<std::io::Error> for LakeError {
    fn from(e: std::io::Error) -> LakeError {
        LakeError::Io(e.to_string())
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, LakeError>;
