//! The persisted catalog manifest — the lake's on-disk profile cache.
//!
//! A line-oriented, dependency-free format under `<lake>/.metam/catalog.tsv`:
//!
//! ```text
//! metam-lake-catalog v1
//! table <name> <file> <size> <mtime_s> <mtime_ns> <nrows> <ncols>
//! col <dtype> <nulls> <distinct> <min> <max> <mean> <std> <name>
//! ```
//!
//! Fields are tab-separated; names are backslash-escaped (`\t`, `\n`,
//! `\\`); absent values render as the empty field. Column names come last
//! on their line so an escaped tab can never shift the numeric fields.

use std::path::Path;

use crate::stats::{dtype_from_str, dtype_to_str, ColumnStats};
use crate::{LakeError, Result, TableMeta};

/// First line of every manifest; bump on breaking format changes.
pub const MANIFEST_HEADER: &str = "metam-lake-catalog v1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn opt_f64(v: Option<f64>) -> String {
    v.map(|x| format!("{x:?}")).unwrap_or_default()
}

fn parse_opt_f64(s: &str) -> Result<Option<f64>> {
    if s.is_empty() {
        return Ok(None);
    }
    s.parse::<f64>()
        .map(Some)
        .map_err(|_| LakeError::Manifest(format!("bad float: {s:?}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T> {
    s.parse::<T>()
        .map_err(|_| LakeError::Manifest(format!("bad {what}: {s:?}")))
}

/// Render catalog entries to manifest text.
pub fn render(entries: &[TableMeta]) -> String {
    let mut out = String::new();
    out.push_str(MANIFEST_HEADER);
    out.push('\n');
    for e in entries {
        out.push_str(&format!(
            "table\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            escape(&e.name),
            escape(&e.file_name),
            e.file_size,
            e.mtime_s,
            e.mtime_ns,
            e.nrows,
            e.ncols,
        ));
        for c in &e.columns {
            out.push_str(&format!(
                "col\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                dtype_to_str(c.dtype),
                c.null_count,
                c.distinct_count,
                opt_f64(c.min),
                opt_f64(c.max),
                opt_f64(c.mean),
                opt_f64(c.std),
                c.name.as_deref().map(escape).unwrap_or_default(),
            ));
        }
    }
    out
}

/// Parse manifest text back into catalog entries.
pub fn parse(text: &str) -> Result<Vec<TableMeta>> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == MANIFEST_HEADER => {}
        Some(h) => {
            return Err(LakeError::Manifest(format!(
                "unsupported manifest version: {h:?}"
            )))
        }
        None => return Ok(Vec::new()),
    }
    let mut entries: Vec<TableMeta> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "table" => {
                if fields.len() != 8 {
                    return Err(LakeError::Manifest(format!(
                        "line {}: table record needs 8 fields, got {}",
                        lineno + 2,
                        fields.len()
                    )));
                }
                entries.push(TableMeta {
                    name: unescape(fields[1]),
                    file_name: unescape(fields[2]),
                    file_size: parse_num(fields[3], "size")?,
                    mtime_s: parse_num(fields[4], "mtime")?,
                    mtime_ns: parse_num(fields[5], "mtime")?,
                    nrows: parse_num(fields[6], "nrows")?,
                    ncols: parse_num(fields[7], "ncols")?,
                    columns: Vec::new(),
                });
            }
            "col" => {
                // An escaped name can itself contain no tabs (escaped), so
                // any extra fields mean corruption.
                if fields.len() != 9 {
                    return Err(LakeError::Manifest(format!(
                        "line {}: col record needs 9 fields, got {}",
                        lineno + 2,
                        fields.len()
                    )));
                }
                let entry = entries.last_mut().ok_or_else(|| {
                    LakeError::Manifest(format!("line {}: col before any table", lineno + 2))
                })?;
                let name = if fields[8].is_empty() {
                    None
                } else {
                    Some(unescape(fields[8]))
                };
                entry.columns.push(ColumnStats {
                    name,
                    dtype: dtype_from_str(fields[1]).ok_or_else(|| {
                        LakeError::Manifest(format!("bad dtype: {:?}", fields[1]))
                    })?,
                    null_count: parse_num(fields[2], "null_count")?,
                    distinct_count: parse_num(fields[3], "distinct_count")?,
                    min: parse_opt_f64(fields[4])?,
                    max: parse_opt_f64(fields[5])?,
                    mean: parse_opt_f64(fields[6])?,
                    std: parse_opt_f64(fields[7])?,
                });
            }
            other => {
                return Err(LakeError::Manifest(format!(
                    "line {}: unknown record kind {other:?}",
                    lineno + 2
                )))
            }
        }
    }
    Ok(entries)
}

/// Load a manifest file; a missing file is an empty catalog.
pub fn load(path: &Path) -> Result<Vec<TableMeta>> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

/// Persist a manifest file, creating the parent directory.
pub fn store(path: &Path, entries: &[TableMeta]) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(entries))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::DataType;

    fn sample_entry() -> TableMeta {
        TableMeta {
            name: "crime\tstats".into(),
            file_name: "crime stats.csv".into(),
            file_size: 123,
            mtime_s: 1_700_000_000,
            mtime_ns: 42,
            nrows: 10,
            ncols: 2,
            columns: vec![
                ColumnStats {
                    name: Some("zip\ncode".into()),
                    dtype: DataType::Str,
                    null_count: 1,
                    distinct_count: 9,
                    min: None,
                    max: None,
                    mean: None,
                    std: None,
                },
                ColumnStats {
                    name: None,
                    dtype: DataType::Float,
                    null_count: 0,
                    distinct_count: 10,
                    min: Some(-1.5),
                    max: Some(2.25),
                    mean: Some(0.1),
                    std: Some(1.0000000000000002),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let entries = vec![sample_entry()];
        let text = render(&entries);
        let back = parse(&text).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn float_precision_survives() {
        let text = render(&[sample_entry()]);
        let back = parse(&text).unwrap();
        assert_eq!(back[0].columns[1].std, Some(1.0000000000000002));
    }

    #[test]
    fn empty_text_is_empty_catalog() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse(MANIFEST_HEADER).unwrap().is_empty());
    }

    #[test]
    fn bad_version_rejected() {
        assert!(matches!(
            parse("metam-lake-catalog v0\n"),
            Err(LakeError::Manifest(_))
        ));
    }

    #[test]
    fn col_before_table_rejected() {
        let text = format!("{MANIFEST_HEADER}\ncol\tint\t0\t0\t\t\t\t\t\n");
        assert!(matches!(parse(&text), Err(LakeError::Manifest(_))));
    }

    #[test]
    fn truncated_record_rejected() {
        let text = format!("{MANIFEST_HEADER}\ntable\tt\tt.csv\t1\t2\n");
        assert!(matches!(parse(&text), Err(LakeError::Manifest(_))));
    }
}
