//! The persisted catalog manifest — the lake's on-disk profile cache.
//!
//! A line-oriented, dependency-free format, **sharded** under
//! `<lake>/.metam/` as `catalog-<k>.tsv` (shard = file-name hash mod
//! [`SHARD_COUNT`]) so touching one lake file rewrites one shard, not the
//! whole catalog. Each shard is the same format the old single-file
//! `catalog.tsv` used:
//!
//! ```text
//! metam-lake-catalog v1
//! table <name> <file> <size> <mtime_s> <mtime_ns> <nrows> <ncols>
//! col <dtype> <nulls> <distinct> <min> <max> <mean> <std> <name>
//! ```
//!
//! Fields are tab-separated; names are backslash-escaped (`\t`, `\n`,
//! `\\`); absent values render as the empty field. Column names come last
//! on their line so an escaped tab can never shift the numeric fields.
//!
//! A legacy single-file `catalog.tsv` is still read transparently when no
//! shard exists yet; the next store writes shards and removes it, so old
//! lakes migrate on their first scan without re-profiling anything.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::stats::{dtype_from_str, dtype_to_str, ColumnStats};
use crate::{LakeError, Result, TableMeta};

/// First line of every manifest; bump on breaking format changes.
pub const MANIFEST_HEADER: &str = "metam-lake-catalog v1";

/// Number of catalog shards. Fixed: the shard of a file must not move
/// between runs, or a rescan would re-profile everything.
pub const SHARD_COUNT: usize = 16;

/// Shard index of a lake file, by FNV-1a hash of its file name (stable
/// across platforms and runs, unlike `DefaultHasher`).
pub fn shard_of(file_name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in file_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % SHARD_COUNT as u64) as usize
}

/// Path of shard `k` under a `.metam` directory.
pub fn shard_path(meta_dir: &Path, k: usize) -> PathBuf {
    meta_dir.join(format!("catalog-{k}.tsv"))
}

/// Path of the legacy single-file manifest under a `.metam` directory.
pub fn legacy_path(meta_dir: &Path) -> PathBuf {
    meta_dir.join("catalog.tsv")
}

/// Load every cached entry from a `.metam` directory: shards when any
/// exist, else the legacy single-file layout. Corruption is not fatal —
/// a damaged shard's entries are simply absent (its files re-profile and
/// the next store heals it), matching the old whole-manifest behavior.
pub fn load_cached(meta_dir: &Path) -> Vec<TableMeta> {
    let mut entries = Vec::new();
    let mut any_shard = false;
    for k in 0..SHARD_COUNT {
        let path = shard_path(meta_dir, k);
        if path.exists() {
            any_shard = true;
            if let Ok(shard) = load(&path) {
                entries.extend(shard);
            }
        }
    }
    if !any_shard {
        if let Ok(legacy) = load(&legacy_path(meta_dir)) {
            entries = legacy;
        }
    }
    entries
}

/// Persist `entries` (in deterministic file-name order) as shards under
/// `meta_dir`, rewriting **only** shards whose rendered content differs
/// from what is on disk. Removes the legacy single-file manifest once the
/// shards are in place. Returns the number of shards (re)written.
pub fn store_sharded(meta_dir: &Path, entries: &[TableMeta]) -> Result<usize> {
    std::fs::create_dir_all(meta_dir)?;
    let mut by_shard: Vec<Vec<&TableMeta>> = vec![Vec::new(); SHARD_COUNT];
    for e in entries {
        by_shard[shard_of(&e.file_name)].push(e);
    }
    let mut written = 0;
    for (k, shard_entries) in by_shard.iter().enumerate() {
        let path = shard_path(meta_dir, k);
        if shard_entries.is_empty() {
            if path.exists() {
                std::fs::remove_file(&path)?;
                written += 1;
            }
            continue;
        }
        let text = render_refs(shard_entries.iter().copied());
        let on_disk = std::fs::read_to_string(&path).ok();
        if on_disk.as_deref() != Some(text.as_str()) {
            std::fs::write(&path, text)?;
            written += 1;
        }
    }
    let legacy = legacy_path(meta_dir);
    if legacy.exists() {
        std::fs::remove_file(&legacy)?;
    }
    Ok(written)
}

/// The shard indices `entries` occupy (for reporting).
pub fn occupied_shards(entries: &[TableMeta]) -> HashSet<usize> {
    entries.iter().map(|e| shard_of(&e.file_name)).collect()
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn opt_f64(v: Option<f64>) -> String {
    v.map(|x| format!("{x:?}")).unwrap_or_default()
}

fn parse_opt_f64(s: &str) -> Result<Option<f64>> {
    if s.is_empty() {
        return Ok(None);
    }
    s.parse::<f64>()
        .map(Some)
        .map_err(|_| LakeError::Manifest(format!("bad float: {s:?}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T> {
    s.parse::<T>()
        .map_err(|_| LakeError::Manifest(format!("bad {what}: {s:?}")))
}

/// Render catalog entries to manifest text.
pub fn render(entries: &[TableMeta]) -> String {
    render_refs(entries.iter())
}

fn render_refs<'a>(entries: impl Iterator<Item = &'a TableMeta>) -> String {
    let mut out = String::new();
    out.push_str(MANIFEST_HEADER);
    out.push('\n');
    for e in entries {
        out.push_str(&format!(
            "table\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            escape(&e.name),
            escape(&e.file_name),
            e.file_size,
            e.mtime_s,
            e.mtime_ns,
            e.nrows,
            e.ncols,
        ));
        for c in &e.columns {
            out.push_str(&format!(
                "col\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                dtype_to_str(c.dtype),
                c.null_count,
                c.distinct_count,
                opt_f64(c.min),
                opt_f64(c.max),
                opt_f64(c.mean),
                opt_f64(c.std),
                c.name.as_deref().map(escape).unwrap_or_default(),
            ));
        }
    }
    out
}

/// Parse manifest text back into catalog entries.
pub fn parse(text: &str) -> Result<Vec<TableMeta>> {
    let mut lines = text.lines();
    match lines.next() {
        Some(h) if h == MANIFEST_HEADER => {}
        Some(h) => {
            return Err(LakeError::Manifest(format!(
                "unsupported manifest version: {h:?}"
            )))
        }
        None => return Ok(Vec::new()),
    }
    let mut entries: Vec<TableMeta> = Vec::new();
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        match fields[0] {
            "table" => {
                if fields.len() != 8 {
                    return Err(LakeError::Manifest(format!(
                        "line {}: table record needs 8 fields, got {}",
                        lineno + 2,
                        fields.len()
                    )));
                }
                entries.push(TableMeta {
                    name: unescape(fields[1]),
                    file_name: unescape(fields[2]),
                    file_size: parse_num(fields[3], "size")?,
                    mtime_s: parse_num(fields[4], "mtime")?,
                    mtime_ns: parse_num(fields[5], "mtime")?,
                    nrows: parse_num(fields[6], "nrows")?,
                    ncols: parse_num(fields[7], "ncols")?,
                    columns: Vec::new(),
                });
            }
            "col" => {
                // An escaped name can itself contain no tabs (escaped), so
                // any extra fields mean corruption.
                if fields.len() != 9 {
                    return Err(LakeError::Manifest(format!(
                        "line {}: col record needs 9 fields, got {}",
                        lineno + 2,
                        fields.len()
                    )));
                }
                let entry = entries.last_mut().ok_or_else(|| {
                    LakeError::Manifest(format!("line {}: col before any table", lineno + 2))
                })?;
                let name = if fields[8].is_empty() {
                    None
                } else {
                    Some(unescape(fields[8]))
                };
                entry.columns.push(ColumnStats {
                    name,
                    dtype: dtype_from_str(fields[1]).ok_or_else(|| {
                        LakeError::Manifest(format!("bad dtype: {:?}", fields[1]))
                    })?,
                    null_count: parse_num(fields[2], "null_count")?,
                    distinct_count: parse_num(fields[3], "distinct_count")?,
                    min: parse_opt_f64(fields[4])?,
                    max: parse_opt_f64(fields[5])?,
                    mean: parse_opt_f64(fields[6])?,
                    std: parse_opt_f64(fields[7])?,
                });
            }
            other => {
                return Err(LakeError::Manifest(format!(
                    "line {}: unknown record kind {other:?}",
                    lineno + 2
                )))
            }
        }
    }
    Ok(entries)
}

/// Load a manifest file; a missing file is an empty catalog.
pub fn load(path: &Path) -> Result<Vec<TableMeta>> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

/// Persist a manifest file, creating the parent directory.
pub fn store(path: &Path, entries: &[TableMeta]) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(entries))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::DataType;

    fn sample_entry() -> TableMeta {
        TableMeta {
            name: "crime\tstats".into(),
            file_name: "crime stats.csv".into(),
            file_size: 123,
            mtime_s: 1_700_000_000,
            mtime_ns: 42,
            nrows: 10,
            ncols: 2,
            columns: vec![
                ColumnStats {
                    name: Some("zip\ncode".into()),
                    dtype: DataType::Str,
                    null_count: 1,
                    distinct_count: 9,
                    min: None,
                    max: None,
                    mean: None,
                    std: None,
                },
                ColumnStats {
                    name: None,
                    dtype: DataType::Float,
                    null_count: 0,
                    distinct_count: 10,
                    min: Some(-1.5),
                    max: Some(2.25),
                    mean: Some(0.1),
                    std: Some(1.0000000000000002),
                },
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let entries = vec![sample_entry()];
        let text = render(&entries);
        let back = parse(&text).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn float_precision_survives() {
        let text = render(&[sample_entry()]);
        let back = parse(&text).unwrap();
        assert_eq!(back[0].columns[1].std, Some(1.0000000000000002));
    }

    #[test]
    fn empty_text_is_empty_catalog() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse(MANIFEST_HEADER).unwrap().is_empty());
    }

    #[test]
    fn bad_version_rejected() {
        assert!(matches!(
            parse("metam-lake-catalog v0\n"),
            Err(LakeError::Manifest(_))
        ));
    }

    #[test]
    fn col_before_table_rejected() {
        let text = format!("{MANIFEST_HEADER}\ncol\tint\t0\t0\t\t\t\t\t\n");
        assert!(matches!(parse(&text), Err(LakeError::Manifest(_))));
    }

    #[test]
    fn truncated_record_rejected() {
        let text = format!("{MANIFEST_HEADER}\ntable\tt\tt.csv\t1\t2\n");
        assert!(matches!(parse(&text), Err(LakeError::Manifest(_))));
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        // Pinned values: a shard move between releases would silently
        // re-profile every file once. Update only with a format bump.
        assert_eq!(shard_of("din.csv"), shard_of("din.csv"));
        assert!(shard_of("a.csv") < SHARD_COUNT);
        let spread: std::collections::HashSet<usize> =
            (0..200).map(|i| shard_of(&format!("t{i}.csv"))).collect();
        assert!(spread.len() > SHARD_COUNT / 2, "hash must actually spread");
    }

    fn tmp_meta(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-manifest-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry_for(file_name: &str) -> TableMeta {
        TableMeta {
            file_name: file_name.into(),
            ..sample_entry()
        }
    }

    #[test]
    fn store_sharded_rewrites_only_changed_shards() {
        let dir = tmp_meta("dirty");
        let mut entries = vec![entry_for("a.csv"), entry_for("b.csv")];
        entries.sort_by(|x, y| x.file_name.cmp(&y.file_name));
        let first = store_sharded(&dir, &entries).unwrap();
        assert!(first >= 1);
        // Unchanged entries ⇒ nothing rewritten.
        assert_eq!(store_sharded(&dir, &entries).unwrap(), 0);
        // Touch one entry ⇒ exactly its shard rewritten (a.csv and b.csv
        // may share a shard; either way the count is 1).
        entries[0].nrows += 1;
        assert_eq!(store_sharded(&dir, &entries).unwrap(), 1);
        assert_eq!(load_cached(&dir), entries);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_sharded_drops_emptied_shards_and_legacy_file() {
        let dir = tmp_meta("drop");
        let entries = vec![entry_for("a.csv")];
        std::fs::create_dir_all(&dir).unwrap();
        store(&legacy_path(&dir), &entries).unwrap();
        assert_eq!(load_cached(&dir), entries, "legacy layout still reads");
        store_sharded(&dir, &entries).unwrap();
        assert!(!legacy_path(&dir).exists(), "legacy removed after sharding");
        assert_eq!(load_cached(&dir), entries, "sharded layout reads back");
        // Dropping the only entry deletes its shard file.
        store_sharded(&dir, &[]).unwrap();
        assert!(!shard_path(&dir, shard_of("a.csv")).exists());
        assert!(load_cached(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shard_skips_only_its_entries() {
        let dir = tmp_meta("corrupt");
        // Two entries forced into different shards.
        let mut a = entry_for("a.csv");
        let mut k = 1;
        while shard_of(&format!("b{k}.csv")) == shard_of("a.csv") {
            k += 1;
        }
        let b = entry_for(&format!("b{k}.csv"));
        a.nrows = 99;
        let entries = vec![a.clone(), b.clone()];
        store_sharded(&dir, &entries).unwrap();
        std::fs::write(shard_path(&dir, shard_of(&a.file_name)), "garbage").unwrap();
        let survivors = load_cached(&dir);
        assert_eq!(survivors, vec![b], "only the corrupt shard's entries drop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
