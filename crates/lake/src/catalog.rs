//! [`LakeCatalog`]: scan a directory of CSVs into a persistent catalog.
//!
//! A scan walks `<root>` for `*.csv` files (sorted, deterministic),
//! profiles each one ([`ColumnStats`] per column), and persists the result
//! as `<root>/.metam/catalog.tsv`. A later scan reuses the cached profile
//! of any file whose **size and mtime are unchanged** — re-profiling (and
//! re-reading) only what moved. [`LakeCatalog::cache_hits`] exposes the
//! counter the integration tests assert on.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use metam_table::csv::read_csv;
use metam_table::Table;

use crate::manifest;
use crate::stats::ColumnStats;
use crate::{LakeError, Result};

/// Catalog record of one lake table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Table name (the file stem).
    pub name: String,
    /// File name relative to the lake root.
    pub file_name: String,
    /// File size in bytes at profiling time.
    pub file_size: u64,
    /// Modification time, seconds since the epoch.
    pub mtime_s: u64,
    /// Modification time, sub-second nanoseconds.
    pub mtime_ns: u32,
    /// Row count.
    pub nrows: usize,
    /// Column count.
    pub ncols: usize,
    /// Per-column summary statistics.
    pub columns: Vec<ColumnStats>,
}

/// A scanned lake directory: table registry + persisted profile cache.
#[derive(Debug)]
pub struct LakeCatalog {
    root: PathBuf,
    entries: Vec<TableMeta>,
    cache_hits: usize,
    cache_misses: usize,
}

/// File metadata used for cache invalidation.
fn fingerprint(path: &Path) -> Result<(u64, u64, u32)> {
    let meta = std::fs::metadata(path)?;
    let (s, ns) = match meta.modified() {
        Ok(t) => match t.duration_since(std::time::UNIX_EPOCH) {
            Ok(d) => (d.as_secs(), d.subsec_nanos()),
            Err(_) => (0, 0),
        },
        Err(_) => (0, 0),
    };
    Ok((meta.len(), s, ns))
}

impl LakeCatalog {
    /// Path of the manifest under a lake root.
    pub fn manifest_path(root: &Path) -> PathBuf {
        root.join(".metam").join("catalog.tsv")
    }

    /// Scan `root` for CSV files, profiling new/changed files and reusing
    /// the persisted profile cache for unchanged ones; the refreshed
    /// manifest is written back before returning.
    pub fn scan(root: impl AsRef<Path>) -> Result<LakeCatalog> {
        let root = root.as_ref().to_path_buf();
        let manifest_path = Self::manifest_path(&root);
        // A corrupt manifest must not brick the lake: fall back to a full
        // re-profile (the rewrite below heals it).
        let cached = manifest::load(&manifest_path).unwrap_or_default();

        let mut files: Vec<(String, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&root)? {
            let entry = entry?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let is_csv = path
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
            if !is_csv {
                continue;
            }
            let file_name = entry.file_name().to_string_lossy().into_owned();
            files.push((file_name, path));
        }
        files.sort();

        // Table names are file stems; two files must not collapse onto one
        // name (e.g. `trips.csv` + `trips.CSV`) or lookups and the
        // din-exclusion logic would silently pick one of them.
        let mut stems: Vec<&str> = files
            .iter()
            .map(|(f, _)| f.rsplit_once('.').map_or(f.as_str(), |(stem, _)| stem))
            .collect();
        stems.sort_unstable();
        if let Some(dup) = stems.windows(2).find(|w| w[0] == w[1]) {
            return Err(LakeError::BadArgument(format!(
                "two lake files share the table name {:?}; rename one",
                dup[0]
            )));
        }

        let cached_by_file: std::collections::HashMap<&str, &TableMeta> =
            cached.iter().map(|e| (e.file_name.as_str(), e)).collect();
        let mut entries = Vec::with_capacity(files.len());
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        for (file_name, path) in files {
            let (file_size, mtime_s, mtime_ns) = fingerprint(&path)?;
            if let Some(&hit) = cached_by_file.get(file_name.as_str()).filter(|e| {
                e.file_size == file_size && e.mtime_s == mtime_s && e.mtime_ns == mtime_ns
            }) {
                cache_hits += 1;
                entries.push(hit.clone());
                continue;
            }
            cache_misses += 1;
            let table = read_table_file(&path)?;
            entries.push(TableMeta {
                name: table.name.clone(),
                file_name,
                file_size,
                mtime_s,
                mtime_ns,
                nrows: table.nrows(),
                ncols: table.ncols(),
                columns: table
                    .columns()
                    .iter()
                    .map(ColumnStats::from_column)
                    .collect(),
            });
        }

        manifest::store(&manifest_path, &entries)?;
        Ok(LakeCatalog {
            root,
            entries,
            cache_hits,
            cache_misses,
        })
    }

    /// Lake root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Registered tables, in deterministic (file-name) order.
    pub fn entries(&self) -> &[TableMeta] {
        &self.entries
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the lake holds no tables.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Files whose cached profile was reused by the last scan.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Files the last scan had to (re-)profile.
    pub fn cache_misses(&self) -> usize {
        self.cache_misses
    }

    /// Catalog record by table name.
    pub fn get(&self, name: &str) -> Option<&TableMeta> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Load one table's data from disk.
    pub fn load_table(&self, name: &str) -> Result<Table> {
        let entry = self
            .get(name)
            .ok_or_else(|| LakeError::UnknownTable(name.to_string()))?;
        read_table_file(&self.root.join(&entry.file_name))
    }

    /// Load every table except those named in `exclude` (typically the
    /// input dataset, which must not join with itself).
    pub fn load_all_except(&self, exclude: &[&str]) -> Result<Vec<Arc<Table>>> {
        let mut tables = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            if exclude.contains(&entry.name.as_str()) {
                continue;
            }
            tables.push(Arc::new(read_table_file(
                &self.root.join(&entry.file_name),
            )?));
        }
        Ok(tables)
    }

    /// Total rows across the catalog (from cached metadata; no file reads).
    pub fn total_rows(&self) -> usize {
        self.entries.iter().map(|e| e.nrows).sum()
    }

    /// Total columns across the catalog.
    pub fn total_columns(&self) -> usize {
        self.entries.iter().map(|e| e.ncols).sum()
    }
}

/// Read one CSV file as a [`Table`] named by its file stem, tagged with the
/// lake directory name as its provenance source.
pub fn read_table_file(path: &Path) -> Result<Table> {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_string());
    let file =
        std::fs::File::open(path).map_err(|e| LakeError::Io(format!("{}: {e}", path.display())))?;
    let reader = std::io::BufReader::new(file);
    let mut table = read_csv(&stem, reader, true)?;
    if let Some(dir) = path.parent().and_then(|p| p.file_name()) {
        table.source = dir.to_string_lossy().into_owned();
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-lake-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scan_profiles_and_caches() {
        let dir = tmp_dir("scan");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\nz2,2\n").unwrap();
        fs::write(dir.join("b.csv"), "zip,w\nz1,5\n").unwrap();
        fs::write(dir.join("notes.txt"), "not a table").unwrap();

        let cat = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.cache_hits(), 0);
        assert_eq!(cat.cache_misses(), 2);
        assert_eq!(cat.get("a").unwrap().nrows, 2);
        assert_eq!(cat.total_rows(), 3);
        assert_eq!(cat.total_columns(), 4);

        // Second scan: everything unchanged ⇒ all hits.
        let cat2 = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat2.cache_hits(), 2);
        assert_eq!(cat2.cache_misses(), 0);
        assert_eq!(cat2.entries(), cat.entries());

        // Touch one file with different content size ⇒ one miss.
        fs::write(dir.join("b.csv"), "zip,w\nz1,5\nz9,6\n").unwrap();
        let cat3 = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat3.cache_misses(), 1);
        assert_eq!(cat3.cache_hits(), 1);
        assert_eq!(cat3.get("b").unwrap().nrows, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_stems_are_rejected() {
        let dir = tmp_dir("stems");
        fs::write(dir.join("trips.csv"), "x\n1\n").unwrap();
        fs::write(dir.join("trips.CSV"), "y\n2\n").unwrap();
        assert!(matches!(
            LakeCatalog::scan(&dir),
            Err(LakeError::BadArgument(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn removed_files_drop_out() {
        let dir = tmp_dir("remove");
        fs::write(dir.join("a.csv"), "x\n1\n").unwrap();
        fs::write(dir.join("b.csv"), "y\n2\n").unwrap();
        assert_eq!(LakeCatalog::scan(&dir).unwrap().len(), 2);
        fs::remove_file(dir.join("b.csv")).unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(cat.get("b").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_manifest_heals() {
        let dir = tmp_dir("heal");
        fs::write(dir.join("a.csv"), "x\n1\n").unwrap();
        LakeCatalog::scan(&dir).unwrap();
        fs::write(LakeCatalog::manifest_path(&dir), "garbage\nmore garbage").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.cache_misses(), 1, "corrupt cache forces re-profiling");
        // And the manifest is valid again.
        let cat2 = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat2.cache_hits(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_table_reads_data_and_source() {
        let dir = tmp_dir("load");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        let t = cat.load_table("a").unwrap();
        assert_eq!(t.nrows(), 1);
        assert_eq!(t.name, "a");
        assert!(!t.source.is_empty(), "source tag comes from the lake dir");
        assert!(matches!(
            cat.load_table("nope"),
            Err(LakeError::UnknownTable(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_all_except_skips_din() {
        let dir = tmp_dir("except");
        fs::write(dir.join("din.csv"), "k,y\na,1\n").unwrap();
        fs::write(dir.join("ext.csv"), "k,v\na,2\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        let tables = cat.load_all_except(&["din"]).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name, "ext");
        let _ = fs::remove_dir_all(&dir);
    }
}
