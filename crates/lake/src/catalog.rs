//! [`LakeCatalog`]: scan a directory of CSVs into a persistent catalog.
//!
//! A scan walks `<root>` for `*.csv` files (sorted, deterministic) and
//! profiles each one ([`ColumnStats`] per column). Changed files are
//! profiled **in parallel** across scoped worker threads (worker count =
//! available parallelism, overridable via `METAM_SCAN_THREADS` or
//! [`ScanOptions`]); results merge back in file-name order, so manifests
//! and cache counters are byte-identical with a sequential scan.
//!
//! Persistence lives under `<root>/.metam/`:
//!
//! * `catalog-<k>.tsv` — the manifest, sharded by file-name hash
//!   ([`crate::manifest`]); a touched file rewrites one shard, not the
//!   whole catalog. A legacy single-file `catalog.tsv` migrates
//!   transparently on the next scan.
//! * `cache/<file>.mtc` — each profiled table serialized in the binary
//!   columnar format ([`crate::cache`]); [`LakeCatalog::load_table`] and
//!   [`load_all_except`](LakeCatalog::load_all_except) deserialize columns
//!   directly instead of re-parsing CSV text.
//! * `sketches/<file>.mks` — one discovery-sketch record per table
//!   ([`crate::sketch`]): per-column MinHash + exact distinct count, null
//!   count, dtype and value range.
//!   [`sketch_descriptors`](LakeCatalog::sketch_descriptors) rebuilds a
//!   payload-free [`TableDescriptor`] set from these, so candidate
//!   generation never loads table data.
//!
//! All layers invalidate on the same fingerprint (file size + mtime); a
//! manifest hit whose sketch record is missing or damaged is demoted to a
//! miss so the record heals by re-profiling just that file.
//! [`LakeCatalog::cache_hits`] counts profile reuse across scans;
//! [`LakeCatalog::load_counters`] counts `.mtc` hits vs CSV fallbacks;
//! [`LakeCatalog::sketch_load_counters`] counts prepare-time sketch reads
//! vs table-load fallbacks.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use metam_discovery::TableDescriptor;
use metam_table::csv::read_csv;
use metam_table::Table;

use crate::stats::ColumnStats;
use crate::{cache, manifest, sketch};
use crate::{LakeError, Result};

/// Catalog record of one lake table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    /// Table name (the file stem).
    pub name: String,
    /// File name relative to the lake root.
    pub file_name: String,
    /// File size in bytes at profiling time.
    pub file_size: u64,
    /// Modification time, seconds since the epoch.
    pub mtime_s: u64,
    /// Modification time, sub-second nanoseconds.
    pub mtime_ns: u32,
    /// Row count.
    pub nrows: usize,
    /// Column count.
    pub ncols: usize,
    /// Per-column summary statistics.
    pub columns: Vec<ColumnStats>,
}

impl TableMeta {
    /// The invalidation key shared by the manifest and the table cache.
    pub fn fingerprint(&self) -> Fingerprint {
        (self.file_size, self.mtime_s, self.mtime_ns)
    }
}

/// File size + mtime, the cache-invalidation key.
pub type Fingerprint = (u64, u64, u32);

/// A hit/miss counter pair shared behind an [`Arc`] so callers (the CLI,
/// benches) can keep observing after the catalog moves into a `Session`.
/// Used for `.mtc`-vs-CSV table loads ([`LakeCatalog::load_counters`])
/// and for sketch-record reads vs table-load fallbacks
/// ([`LakeCatalog::sketch_load_counters`]).
#[derive(Debug, Default)]
pub struct LoadCounters {
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Events not yet consumed by [`take_unflushed`](Self::take_unflushed).
    /// Kept separate from the lifetime totals so periodic flushing (e.g.
    /// into the metrics registry once per prepare) never double-counts
    /// when many concurrent prepares share one catalog.
    unflushed_hits: AtomicUsize,
    unflushed_misses: AtomicUsize,
}

impl LoadCounters {
    /// Loads served from the fast path (columnar cache / sketch record).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that fell back to the slow path (CSV parse / table load).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drain the `(hits, misses)` recorded since the last drain. Each load
    /// is handed out exactly once across all callers (the unflushed pair
    /// is swapped to zero atomically per counter), so flushing deltas into
    /// a global registry from N concurrent prepares sums to the lifetime
    /// totals — never more. Lifetime [`hits`](Self::hits) /
    /// [`misses`](Self::misses) are unaffected.
    pub fn take_unflushed(&self) -> (usize, usize) {
        (
            self.unflushed_hits.swap(0, Ordering::Relaxed),
            self.unflushed_misses.swap(0, Ordering::Relaxed),
        )
    }

    pub(crate) fn add_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.unflushed_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.unflushed_misses.fetch_add(1, Ordering::Relaxed);
    }
}

/// Tuning knobs for [`LakeCatalog::scan_with`].
#[derive(Debug, Clone, Default)]
pub struct ScanOptions {
    /// Worker threads for profiling changed files. `None` (the default)
    /// reads `METAM_SCAN_THREADS`, falling back to the machine's
    /// available parallelism. Thread count never changes results — only
    /// wall-clock.
    pub threads: Option<usize>,
}

impl ScanOptions {
    /// Sequential scan (one worker).
    pub fn sequential() -> ScanOptions {
        ScanOptions { threads: Some(1) }
    }

    fn resolve_threads(&self) -> usize {
        if let Some(n) = self.threads {
            return n.max(1);
        }
        if let Some(n) = std::env::var("METAM_SCAN_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            return n.max(1);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// A scanned lake directory: table registry + persisted profile cache.
#[derive(Debug)]
pub struct LakeCatalog {
    root: PathBuf,
    entries: Vec<TableMeta>,
    by_name: HashMap<String, usize>,
    cache_hits: usize,
    cache_misses: usize,
    shards_written: usize,
    sketch_hits: usize,
    sketch_misses: usize,
    load_counters: Arc<LoadCounters>,
    sketch_counters: Arc<LoadCounters>,
}

/// File metadata used for cache invalidation.
fn fingerprint(path: &Path) -> Result<Fingerprint> {
    let meta = std::fs::metadata(path)?;
    let (s, ns) = match meta.modified() {
        Ok(t) => match t.duration_since(std::time::UNIX_EPOCH) {
            Ok(d) => (d.as_secs(), d.subsec_nanos()),
            Err(_) => (0, 0),
        },
        Err(_) => (0, 0),
    };
    Ok((meta.len(), s, ns))
}

/// One changed file queued for (re-)profiling.
struct MissJob {
    file_name: String,
    path: PathBuf,
    fp: Fingerprint,
    /// Whether the sketch record needs (re-)writing. `false` when only
    /// the manifest shard was lost (e.g. corruption) but the sketch is
    /// still fresh — profiling then leaves the valid record alone.
    write_sketch: bool,
}

/// Profile one file: parse the CSV, compute per-column statistics, and
/// persist the parsed table into the columnar cache plus (when stale) its
/// discovery-sketch record (both best-effort — a read-only `.metam`
/// degrades loads to CSV, it must not fail the scan).
fn profile_one(root: &Path, job: &MissJob) -> Result<TableMeta> {
    let _span = metam_obs::span("scan.profile", &job.file_name);
    let table = read_table_file(&job.path)?;
    let _ = cache::store(root, &job.file_name, job.fp, &table);
    if job.write_sketch {
        let _ = sketch::store(
            root,
            &job.file_name,
            job.fp,
            &sketch::TableSketch::from_table(&table),
        );
    }
    Ok(TableMeta {
        name: table.name.clone(),
        file_name: job.file_name.clone(),
        file_size: job.fp.0,
        mtime_s: job.fp.1,
        mtime_ns: job.fp.2,
        nrows: table.nrows(),
        ncols: table.ncols(),
        columns: table
            .columns()
            .iter()
            .map(ColumnStats::from_column)
            .collect(),
    })
}

/// Profile every queued file over the shared worker pool
/// ([`metam_pool::try_map`]). Results come back in job (file-name) order,
/// so the merged manifest is position-stable regardless of scheduling.
fn profile_all(root: &Path, jobs: &[MissJob], threads: usize) -> Vec<Result<TableMeta>> {
    metam_pool::try_map(jobs, threads, |job| profile_one(root, job))
}

impl LakeCatalog {
    /// The `.metam` metadata directory under a lake root (manifest shards
    /// + columnar cache).
    pub fn meta_dir(root: &Path) -> PathBuf {
        root.join(".metam")
    }

    /// Path of the **legacy** single-file manifest under a lake root.
    /// Current catalogs are sharded (`catalog-<k>.tsv`); this path is
    /// read for migration only.
    pub fn manifest_path(root: &Path) -> PathBuf {
        manifest::legacy_path(&Self::meta_dir(root))
    }

    /// [`scan_with`](Self::scan_with) under default options (worker count
    /// from `METAM_SCAN_THREADS` or the machine's parallelism).
    pub fn scan(root: impl AsRef<Path>) -> Result<LakeCatalog> {
        Self::scan_with(root, &ScanOptions::default())
    }

    /// Scan `root` for CSV files, profiling new/changed files (in
    /// parallel) and reusing the persisted profile cache for unchanged
    /// ones; the refreshed manifest is written back (only shards that
    /// changed) before returning.
    pub fn scan_with(root: impl AsRef<Path>, options: &ScanOptions) -> Result<LakeCatalog> {
        let root = root.as_ref().to_path_buf();
        let mut scan_span = metam_obs::span("scan", root.display().to_string());
        let meta_dir = Self::meta_dir(&root);
        // A corrupt shard must not brick the lake: its entries are simply
        // absent from the cached view (the rewrite below heals it).
        let cached = manifest::load_cached(&meta_dir);

        let mut files: Vec<(String, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&root)? {
            let entry = entry?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let is_csv = path
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
            if !is_csv {
                continue;
            }
            let file_name = entry.file_name().to_string_lossy().into_owned();
            files.push((file_name, path));
        }
        files.sort();

        // Table names are file stems; two files must not collapse onto one
        // name (e.g. `trips.csv` + `trips.CSV`) or lookups and the
        // din-exclusion logic would silently pick one of them.
        let mut stems: Vec<&str> = files
            .iter()
            .map(|(f, _)| f.rsplit_once('.').map_or(f.as_str(), |(stem, _)| stem))
            .collect();
        stems.sort_unstable();
        if let Some(dup) = stems.windows(2).find(|w| w[0] == w[1]) {
            return Err(LakeError::BadArgument(format!(
                "two lake files share the table name {:?}; rename one",
                dup[0]
            )));
        }

        let cached_by_file: HashMap<&str, &TableMeta> =
            cached.iter().map(|e| (e.file_name.as_str(), e)).collect();

        /// A scan slot: an unchanged entry reused as-is, or the index of
        /// a queued profiling job.
        enum Planned {
            Hit(TableMeta),
            Miss(usize),
        }
        let mut plan = Vec::with_capacity(files.len());
        let mut jobs: Vec<MissJob> = Vec::new();
        let mut sketch_hits = 0usize;
        for (file_name, path) in files {
            let fp = fingerprint(&path)?;
            // A manifest hit only counts when the sketch record is fresh
            // too: a missing/stale/corrupt record demotes the file to a
            // miss, so sketches heal by re-profiling exactly their file.
            let sketch_fresh = sketch::is_fresh(&root, &file_name, fp);
            if sketch_fresh {
                sketch_hits += 1;
            }
            match cached_by_file
                .get(file_name.as_str())
                .filter(|e| e.fingerprint() == fp && sketch_fresh)
            {
                Some(&hit) => plan.push(Planned::Hit(hit.clone())),
                None => {
                    plan.push(Planned::Miss(jobs.len()));
                    jobs.push(MissJob {
                        file_name,
                        path,
                        fp,
                        write_sketch: !sketch_fresh,
                    });
                }
            }
        }
        let sketch_misses = plan.len() - sketch_hits;

        let cache_misses = jobs.len();
        let cache_hits = plan.len() - cache_misses;
        let mut profiled = profile_all(&root, &jobs, options.resolve_threads())
            .into_iter()
            .map(Some)
            .collect::<Vec<_>>();

        // Merge back in file-name order; the first failure (in that same
        // deterministic order) aborts the scan like the sequential path.
        let mut entries = Vec::with_capacity(plan.len());
        for slot in plan {
            match slot {
                Planned::Hit(entry) => entries.push(entry),
                // metam-analyze: allow(panic-in-lib): each Miss index is planned exactly once, so the slot is still occupied
                Planned::Miss(i) => entries.push(profiled[i].take().expect("job used once")?),
            }
        }

        let shards_written = manifest::store_sharded(&meta_dir, &entries)?;
        metam_obs::counter_add("lake.scan.profile_hits", cache_hits as u64);
        metam_obs::counter_add("lake.scan.profile_misses", cache_misses as u64);
        metam_obs::counter_add("lake.scan.shards_written", shards_written as u64);
        metam_obs::counter_add("lake.scan.sketch_hits", sketch_hits as u64);
        metam_obs::counter_add("lake.scan.sketch_misses", sketch_misses as u64);
        scan_span.field("files", entries.len() as f64);
        scan_span.field("profile_hits", cache_hits as f64);
        scan_span.field("profile_misses", cache_misses as f64);
        scan_span.field("sketch_hits", sketch_hits as f64);
        scan_span.field("sketch_misses", sketch_misses as f64);
        let by_name = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.clone(), i))
            .collect();
        Ok(LakeCatalog {
            root,
            entries,
            by_name,
            cache_hits,
            cache_misses,
            shards_written,
            sketch_hits,
            sketch_misses,
            load_counters: Arc::new(LoadCounters::default()),
            sketch_counters: Arc::new(LoadCounters::default()),
        })
    }

    /// Lake root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Registered tables, in deterministic (file-name) order.
    pub fn entries(&self) -> &[TableMeta] {
        &self.entries
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the lake holds no tables.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Files whose cached profile was reused by the last scan.
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Files the last scan had to (re-)profile.
    pub fn cache_misses(&self) -> usize {
        self.cache_misses
    }

    /// Manifest shards the last scan rewrote (0 on a fully-cached rescan;
    /// touching one file rewrites exactly its shard).
    pub fn shards_written(&self) -> usize {
        self.shards_written
    }

    /// Total number of manifest shards in the on-disk layout.
    pub fn shard_count(&self) -> usize {
        manifest::SHARD_COUNT
    }

    /// Files whose sketch record was fresh at the last scan.
    pub fn sketch_hits(&self) -> usize {
        self.sketch_hits
    }

    /// Files whose sketch record the last scan had to (re-)write (new or
    /// changed files, plus healed missing/stale/corrupt records).
    pub fn sketch_misses(&self) -> usize {
        self.sketch_misses
    }

    /// The `.mtc`-vs-CSV load counters, shared: the returned handle keeps
    /// counting even after the catalog moves into a `Session`.
    pub fn load_counters(&self) -> Arc<LoadCounters> {
        Arc::clone(&self.load_counters)
    }

    /// Prepare-time sketch counters (records served vs table-load
    /// fallbacks in [`sketch_descriptors`](Self::sketch_descriptors)),
    /// shared like [`load_counters`](Self::load_counters).
    pub fn sketch_load_counters(&self) -> Arc<LoadCounters> {
        Arc::clone(&self.sketch_counters)
    }

    /// Catalog record by table name (O(1); the index is built at scan
    /// time, so 100k-entry catalogs don't pay a linear probe per lookup).
    pub fn get(&self, name: &str) -> Option<&TableMeta> {
        self.by_name.get(name).map(|&i| &self.entries[i])
    }

    /// Load one table's data, deserializing from the columnar cache when
    /// it is fresh and falling back to (and re-caching from) the CSV
    /// source otherwise.
    pub fn load_table(&self, name: &str) -> Result<Table> {
        let entry = self
            .get(name)
            .ok_or_else(|| LakeError::UnknownTable(name.to_string()))?;
        self.load_entry(entry)
    }

    fn load_entry(&self, entry: &TableMeta) -> Result<Table> {
        if let Some(table) = cache::load(&self.root, entry) {
            self.load_counters.add_hit();
            return Ok(table);
        }
        self.load_counters.add_miss();
        let path = self.root.join(&entry.file_name);
        let table = read_table_file(&path)?;
        // Heal the cache — but only when the file still matches the
        // cataloged fingerprint; a file modified since the scan would
        // otherwise pin stale bytes under a fresh-looking key.
        if let Ok(fp) = fingerprint(&path) {
            if fp == entry.fingerprint() {
                let _ = cache::store(&self.root, &entry.file_name, fp, &table);
            }
        }
        Ok(table)
    }

    /// Load every table except those named in `exclude` (typically the
    /// input dataset, which must not join with itself).
    pub fn load_all_except(&self, exclude: &[&str]) -> Result<Vec<Arc<Table>>> {
        let mut tables = Vec::with_capacity(self.entries.len());
        for entry in &self.entries {
            if exclude.contains(&entry.name.as_str()) {
                continue;
            }
            tables.push(Arc::new(self.load_entry(entry)?));
        }
        Ok(tables)
    }

    /// Names of every table except those in `exclude`, in catalog
    /// (file-name) order — the repository indexing shared by
    /// [`sketch_descriptors`](Self::sketch_descriptors),
    /// [`load_all_except`](Self::load_all_except) and the lazy table
    /// provider built over this catalog.
    pub fn repository_names(&self, exclude: &[&str]) -> Vec<String> {
        self.entries
            .iter()
            .filter(|e| !exclude.contains(&e.name.as_str()))
            .map(|e| e.name.clone())
            .collect()
    }

    /// Payload-free [`TableDescriptor`]s for every table except those in
    /// `exclude`, served from persisted sketch records — the sublinear
    /// half of a catalog-backed prepare: no `.mtc` or CSV payload is
    /// touched for a fresh record. A missing or damaged record degrades
    /// to loading just that table (counted on
    /// [`sketch_load_counters`](Self::sketch_load_counters) as a miss)
    /// and heals the record on the way. Descriptor order matches
    /// [`repository_names`](Self::repository_names).
    pub fn sketch_descriptors(&self, exclude: &[&str]) -> Result<Vec<TableDescriptor>> {
        let mut span = metam_obs::span("prepare.sketch_index", self.root.display().to_string());
        let mut out = Vec::new();
        let mut record_hits = 0usize;
        for entry in &self.entries {
            if exclude.contains(&entry.name.as_str()) {
                continue;
            }
            let loaded = match sketch::load(&self.root, entry) {
                Some(record) => {
                    record_hits += 1;
                    self.sketch_counters.add_hit();
                    record
                }
                None => {
                    self.sketch_counters.add_miss();
                    let table = self.load_entry(entry)?;
                    let record = sketch::TableSketch::from_table(&table);
                    let _ =
                        sketch::store(&self.root, &entry.file_name, entry.fingerprint(), &record);
                    record
                }
            };
            out.push(loaded.to_descriptor());
        }
        let fallbacks = out.len() - record_hits;
        span.field("sketch_hits", record_hits as f64);
        span.field("sketch_fallbacks", fallbacks as f64);
        metam_obs::counter_add("lake.sketch.hits", record_hits as u64);
        metam_obs::counter_add("lake.sketch.fallbacks", fallbacks as u64);
        Ok(out)
    }

    /// Total rows across the catalog (from cached metadata; no file reads).
    pub fn total_rows(&self) -> usize {
        self.entries.iter().map(|e| e.nrows).sum()
    }

    /// Total columns across the catalog.
    pub fn total_columns(&self) -> usize {
        self.entries.iter().map(|e| e.ncols).sum()
    }

    /// Whether the lake directory has drifted from this catalog since its
    /// scan: a CSV file added, removed, renamed, or re-fingerprinted
    /// (size+mtime — the same invalidation key every cache layer uses).
    /// I/O trouble while checking counts as stale, so a long-lived holder
    /// (the `metam serve` registry) errs toward a [`rescan`](Self::rescan)
    /// rather than serving answers about files it can no longer see.
    pub fn is_stale(&self) -> bool {
        let mut current: Vec<(String, PathBuf)> = Vec::new();
        let Ok(dir) = std::fs::read_dir(&self.root) else {
            return true;
        };
        for entry in dir {
            let Ok(entry) = entry else { return true };
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let is_csv = path
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("csv"));
            if !is_csv {
                continue;
            }
            current.push((entry.file_name().to_string_lossy().into_owned(), path));
        }
        current.sort();
        if current.len() != self.entries.len() {
            return true;
        }
        // Entries are already in file-name order (scan sorts before
        // profiling), so a pairwise walk compares the full file sets.
        current
            .iter()
            .zip(&self.entries)
            .any(|((name, path), meta)| {
                name != &meta.file_name
                    || fingerprint(path).map_or(true, |fp| fp != meta.fingerprint())
            })
    }

    /// Re-scan the same lake directory, producing a refreshed catalog that
    /// keeps observing on **this** catalog's [`LoadCounters`] handles —
    /// the refresh hook for long-lived holders (`metam serve`), whose
    /// server-lifetime hit/miss totals must survive catalog swaps.
    /// Unchanged files reuse the persisted profile cache exactly like any
    /// other scan; only drifted files re-profile.
    pub fn rescan(&self, options: &ScanOptions) -> Result<LakeCatalog> {
        let mut fresh = Self::scan_with(&self.root, options)?;
        fresh.load_counters = Arc::clone(&self.load_counters);
        fresh.sketch_counters = Arc::clone(&self.sketch_counters);
        Ok(fresh)
    }
}

/// Read one CSV file as a [`Table`] named by its file stem, tagged with the
/// lake directory name as its provenance source.
pub fn read_table_file(path: &Path) -> Result<Table> {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "table".to_string());
    let file =
        std::fs::File::open(path).map_err(|e| LakeError::Io(format!("{}: {e}", path.display())))?;
    let reader = std::io::BufReader::new(file);
    let mut table = read_csv(&stem, reader, true)?;
    if let Some(dir) = path.parent().and_then(|p| p.file_name()) {
        table.source = dir.to_string_lossy().into_owned();
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-lake-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn scan_profiles_and_caches() {
        let dir = tmp_dir("scan");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\nz2,2\n").unwrap();
        fs::write(dir.join("b.csv"), "zip,w\nz1,5\n").unwrap();
        fs::write(dir.join("notes.txt"), "not a table").unwrap();

        let cat = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 2);
        assert_eq!(cat.cache_hits(), 0);
        assert_eq!(cat.cache_misses(), 2);
        assert_eq!(cat.get("a").unwrap().nrows, 2);
        assert_eq!(cat.total_rows(), 3);
        assert_eq!(cat.total_columns(), 4);
        assert!(cat.shards_written() >= 1, "cold scan writes shards");

        // Second scan: everything unchanged ⇒ all hits, nothing rewritten.
        let cat2 = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat2.cache_hits(), 2);
        assert_eq!(cat2.cache_misses(), 0);
        assert_eq!(cat2.entries(), cat.entries());
        assert_eq!(cat2.shards_written(), 0, "unchanged lake rewrites nothing");

        // Touch one file with different content size ⇒ one miss, and only
        // that file's shard is rewritten.
        fs::write(dir.join("b.csv"), "zip,w\nz1,5\nz9,6\n").unwrap();
        let cat3 = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat3.cache_misses(), 1);
        assert_eq!(cat3.cache_hits(), 1);
        assert_eq!(cat3.get("b").unwrap().nrows, 2);
        assert_eq!(cat3.shards_written(), 1, "only the touched shard");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_stems_are_rejected() {
        let dir = tmp_dir("stems");
        fs::write(dir.join("trips.csv"), "x\n1\n").unwrap();
        fs::write(dir.join("trips.CSV"), "y\n2\n").unwrap();
        assert!(matches!(
            LakeCatalog::scan(&dir),
            Err(LakeError::BadArgument(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn removed_files_drop_out() {
        let dir = tmp_dir("remove");
        fs::write(dir.join("a.csv"), "x\n1\n").unwrap();
        fs::write(dir.join("b.csv"), "y\n2\n").unwrap();
        assert_eq!(LakeCatalog::scan(&dir).unwrap().len(), 2);
        fs::remove_file(dir.join("b.csv")).unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 1);
        assert!(cat.get("b").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn take_unflushed_hands_each_load_out_once() {
        let dir = tmp_dir("unflushed");
        fs::write(dir.join("a.csv"), "x\n1\n2\n").unwrap();
        fs::write(dir.join("b.csv"), "y\n3\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        let counters = cat.load_counters();

        cat.load_table("a").unwrap();
        cat.load_table("b").unwrap();
        let first = counters.take_unflushed();
        assert_eq!(first.0 + first.1, 2, "both loads in the first drain");
        assert_eq!(
            counters.take_unflushed(),
            (0, 0),
            "a second drain with no new loads hands out nothing"
        );
        // Lifetime totals are untouched by draining.
        assert_eq!(counters.hits() + counters.misses(), 2);

        cat.load_table("a").unwrap();
        let second = counters.take_unflushed();
        assert_eq!(second.0 + second.1, 1, "only the new load is unflushed");
        assert_eq!(counters.hits() + counters.misses(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn staleness_detected_and_rescan_keeps_counter_handles() {
        let dir = tmp_dir("stale");
        fs::write(dir.join("a.csv"), "x\n1\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        assert!(!cat.is_stale(), "freshly scanned lake is not stale");
        cat.load_table("a").unwrap();
        let counters = cat.load_counters();
        let lifetime = counters.hits() + counters.misses();
        assert_eq!(lifetime, 1);

        // Content drift (different size ⇒ different fingerprint) and file
        // additions both count as stale.
        fs::write(dir.join("a.csv"), "x\n1\n2\n").unwrap();
        assert!(cat.is_stale(), "re-fingerprinted file is drift");
        fs::write(dir.join("b.csv"), "y\n9\n").unwrap();
        assert!(cat.is_stale(), "added file is drift");

        let fresh = cat.rescan(&ScanOptions::sequential()).unwrap();
        assert!(!fresh.is_stale());
        assert_eq!(fresh.len(), 2, "rescan sees the added table");
        assert_eq!(fresh.get("a").unwrap().nrows, 2);
        fresh.load_table("b").unwrap();
        assert_eq!(
            counters.hits() + counters.misses(),
            lifetime + 1,
            "the refreshed catalog observes on the original counter handles"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shard_heals() {
        let dir = tmp_dir("heal");
        fs::write(dir.join("a.csv"), "x\n1\n").unwrap();
        LakeCatalog::scan(&dir).unwrap();
        let shard = manifest::shard_path(&LakeCatalog::meta_dir(&dir), manifest::shard_of("a.csv"));
        assert!(shard.exists(), "cold scan wrote the shard");
        fs::write(&shard, "garbage\nmore garbage").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.cache_misses(), 1, "corrupt shard forces re-profiling");
        // And the shard is valid again.
        let cat2 = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cat2.cache_hits(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_single_file_catalog_migrates_to_shards() {
        let dir = tmp_dir("migrate");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\nz2,2\n").unwrap();
        fs::write(dir.join("b.csv"), "zip,w\nz1,5\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();

        // Rebuild the old layout by hand: one catalog.tsv, no shards.
        let meta_dir = LakeCatalog::meta_dir(&dir);
        let legacy = manifest::legacy_path(&meta_dir);
        manifest::store(&legacy, cat.entries()).unwrap();
        for k in 0..manifest::SHARD_COUNT {
            let _ = fs::remove_file(manifest::shard_path(&meta_dir, k));
        }

        // The next scan reads the legacy manifest (all hits — nothing
        // re-profiles), writes shards, and removes the old file.
        let migrated = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(migrated.cache_hits(), 2, "migration must not re-profile");
        assert_eq!(migrated.cache_misses(), 0);
        assert_eq!(migrated.entries(), cat.entries());
        assert!(!legacy.exists(), "legacy manifest removed after migration");
        let occupied = manifest::occupied_shards(migrated.entries());
        for &k in &occupied {
            assert!(manifest::shard_path(&meta_dir, k).exists());
        }

        // And the sharded layout is now authoritative.
        let again = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(again.cache_hits(), 2);
        assert_eq!(again.shards_written(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_scan_matches_sequential_scan() {
        let dir = tmp_dir("parallel");
        for i in 0..23 {
            let rows: String = (0..10).map(|r| format!("z{r},{}\n", r * (i + 1))).collect();
            fs::write(
                dir.join(format!("t{i:02}.csv")),
                format!("zip,v{i}\n{rows}"),
            )
            .unwrap();
        }
        let sequential = LakeCatalog::scan_with(&dir, &ScanOptions::sequential()).unwrap();
        let shard_texts = |d: &Path| -> Vec<Option<String>> {
            (0..manifest::SHARD_COUNT)
                .map(|k| {
                    fs::read_to_string(manifest::shard_path(&LakeCatalog::meta_dir(d), k)).ok()
                })
                .collect()
        };
        let seq_shards = shard_texts(&dir);

        // Wipe all persisted state and rescan with many workers.
        fs::remove_dir_all(LakeCatalog::meta_dir(&dir)).unwrap();
        let parallel = LakeCatalog::scan_with(&dir, &ScanOptions { threads: Some(4) }).unwrap();
        assert_eq!(parallel.entries(), sequential.entries());
        assert_eq!(parallel.cache_hits(), sequential.cache_hits());
        assert_eq!(parallel.cache_misses(), sequential.cache_misses());
        assert_eq!(
            shard_texts(&dir),
            seq_shards,
            "manifest shards are byte-identical regardless of thread count"
        );

        // A warm parallel rescan hits everywhere, exactly like sequential.
        let warm = LakeCatalog::scan_with(&dir, &ScanOptions { threads: Some(4) }).unwrap();
        assert_eq!(warm.cache_hits(), 23);
        assert_eq!(warm.cache_misses(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_table_reads_data_and_source() {
        let dir = tmp_dir("load");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        let t = cat.load_table("a").unwrap();
        assert_eq!(t.nrows(), 1);
        assert_eq!(t.name, "a");
        assert!(!t.source.is_empty(), "source tag comes from the lake dir");
        assert!(matches!(
            cat.load_table("nope"),
            Err(LakeError::UnknownTable(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_table_prefers_the_columnar_cache() {
        let dir = tmp_dir("mtc");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\nz2,2\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        let counters = cat.load_counters();
        let from_cache = cat.load_table("a").unwrap();
        assert_eq!(counters.hits(), 1, "profile-time cache serves the load");
        assert_eq!(counters.misses(), 0);
        // The cached deserialization equals the CSV parse exactly.
        let from_csv = read_table_file(&dir.join("a.csv")).unwrap();
        assert_eq!(from_cache, from_csv);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_file_falls_back_to_csv_and_heals() {
        let dir = tmp_dir("mtc-heal");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        let mtc = cache::cache_path(&dir, "a.csv");
        assert!(mtc.exists(), "scan populates the cache");
        // Truncate the payload: the load must fall back to CSV…
        let bytes = fs::read(&mtc).unwrap();
        fs::write(&mtc, &bytes[..bytes.len() / 2]).unwrap();
        let counters = cat.load_counters();
        let t = cat.load_table("a").unwrap();
        assert_eq!(t.nrows(), 1);
        assert_eq!(counters.hits(), 0);
        assert_eq!(counters.misses(), 1, "corrupt cache counts as a miss");
        // …and heal the cache, so the next load hits again.
        let t2 = cat.load_table("a").unwrap();
        assert_eq!(t2, t);
        assert_eq!(counters.hits(), 1, "healed cache serves the next load");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_maintains_sketch_records() {
        let dir = tmp_dir("sketch-scan");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\nz2,2\n").unwrap();
        fs::write(dir.join("b.csv"), "zip,w\nz1,5\n").unwrap();

        let cold = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(cold.sketch_hits(), 0);
        assert_eq!(cold.sketch_misses(), 2, "cold scan writes every record");
        assert!(sketch::sketch_path(&dir, "a.csv").exists());

        let warm = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(warm.sketch_hits(), 2, "unchanged lake reuses records");
        assert_eq!(warm.sketch_misses(), 0);

        // Deleting one record demotes that file to a profile miss: the
        // scan re-profiles exactly it and rewrites the record.
        fs::remove_file(sketch::sketch_path(&dir, "b.csv")).unwrap();
        let healed = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(healed.sketch_misses(), 1);
        assert_eq!(
            healed.cache_misses(),
            1,
            "missing sketch forces re-profiling"
        );
        assert_eq!(healed.cache_hits(), 1, "the intact file stays cached");
        assert!(sketch::sketch_path(&dir, "b.csv").exists(), "record healed");

        // Corrupting a record has the same effect as deleting it.
        let path = sketch::sketch_path(&dir, "a.csv");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        let reheal = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(reheal.sketch_misses(), 1, "corrupt record re-profiles");
        let last = LakeCatalog::scan(&dir).unwrap();
        assert_eq!(last.sketch_hits(), 2, "healed records hit again");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sketch_descriptors_match_in_memory_descriptors() {
        let dir = tmp_dir("sketch-desc");
        fs::write(dir.join("din.csv"), "k,y\na,1\nb,2\n").unwrap();
        fs::write(dir.join("x.csv"), "k,v\na,2\nb,3\nc,4\n").unwrap();
        fs::write(dir.join("y.csv"), "k,w\na,7\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        let counters = cat.sketch_load_counters();

        let descriptors = cat.sketch_descriptors(&["din"]).unwrap();
        assert_eq!(counters.hits(), 2, "fresh records serve every table");
        assert_eq!(counters.misses(), 0);
        assert_eq!(cat.repository_names(&["din"]), vec!["x", "y"]);

        // Byte-identical to descriptors computed from the loaded tables.
        let eager: Vec<TableDescriptor> = cat
            .load_all_except(&["din"])
            .unwrap()
            .iter()
            .map(|t| TableDescriptor::from_table(t))
            .collect();
        assert_eq!(descriptors, eager);

        // A lost record degrades to loading that one table — and heals.
        fs::remove_file(sketch::sketch_path(&dir, "x.csv")).unwrap();
        let again = cat.sketch_descriptors(&["din"]).unwrap();
        assert_eq!(again, eager, "fallback path produces the same result");
        assert_eq!(counters.misses(), 1, "one record fell back to a load");
        assert!(sketch::sketch_path(&dir, "x.csv").exists(), "record healed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_all_except_skips_din() {
        let dir = tmp_dir("except");
        fs::write(dir.join("din.csv"), "k,y\na,1\n").unwrap();
        fs::write(dir.join("ext.csv"), "k,v\na,2\n").unwrap();
        let cat = LakeCatalog::scan(&dir).unwrap();
        let tables = cat.load_all_except(&["din"]).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].name, "ext");
        assert_eq!(
            cat.load_counters().hits(),
            1,
            "repository loads come from the columnar cache"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
