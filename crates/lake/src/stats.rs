//! Per-column summary statistics stored in the catalog.
//!
//! These are the lake's *profile cache*: cheap table-level statistics
//! computed once per file version and reused until the file changes. They
//! back the `profile` CLI view and give discovery a first look at a table
//! without re-reading it.

use metam_table::{Column, DataType};

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column name (`None` for anonymous columns).
    pub name: Option<String>,
    /// Inferred logical type.
    pub dtype: DataType,
    /// Number of rows with a missing value.
    pub null_count: usize,
    /// Number of distinct non-null normalized keys.
    pub distinct_count: usize,
    /// Minimum of the numeric view, when one exists.
    pub min: Option<f64>,
    /// Maximum of the numeric view.
    pub max: Option<f64>,
    /// Mean of the numeric view.
    pub mean: Option<f64>,
    /// Population standard deviation of the numeric view.
    pub std: Option<f64>,
}

impl ColumnStats {
    /// Profile one column.
    pub fn from_column(column: &Column) -> ColumnStats {
        ColumnStats {
            name: column.name.clone(),
            dtype: column.dtype(),
            null_count: column.null_count(),
            distinct_count: column.distinct_count(),
            min: column.min(),
            max: column.max(),
            mean: column.mean(),
            std: column.std(),
        }
    }

    /// Display name (anonymous columns render as `_colN`).
    pub fn display_name(&self, index: usize) -> String {
        self.name.clone().unwrap_or_else(|| format!("_col{index}"))
    }
}

/// Stable string form of a [`DataType`] for the manifest.
pub fn dtype_to_str(dtype: DataType) -> &'static str {
    match dtype {
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
        DataType::Bool => "bool",
    }
}

/// Parse a manifest dtype token.
pub fn dtype_from_str(s: &str) -> Option<DataType> {
    match s {
        "int" => Some(DataType::Int),
        "float" => Some(DataType::Float),
        "str" => Some(DataType::Str),
        "bool" => Some(DataType::Bool),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_reflect_column() {
        let c = Column::from_floats(
            Some("x".into()),
            vec![Some(1.0), None, Some(3.0), Some(3.0)],
        );
        let s = ColumnStats::from_column(&c);
        assert_eq!(s.dtype, DataType::Float);
        assert_eq!(s.null_count, 1);
        assert_eq!(s.distinct_count, 2);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(3.0));
        assert!((s.mean.unwrap() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.display_name(0), "x");
    }

    #[test]
    fn anonymous_column_displays_positionally() {
        let c = Column::from_ints(None, vec![Some(1)]);
        let s = ColumnStats::from_column(&c);
        assert_eq!(s.display_name(2), "_col2");
    }

    #[test]
    fn dtype_roundtrip() {
        for d in [
            DataType::Int,
            DataType::Float,
            DataType::Str,
            DataType::Bool,
        ] {
            assert_eq!(dtype_from_str(dtype_to_str(d)), Some(d));
        }
        assert_eq!(dtype_from_str("blob"), None);
    }
}
