//! Persisted per-column discovery sketches under `<lake>/.metam/sketches/`.
//!
//! Every profiled file gets one binary record, `<file name>.mks`, holding
//! what candidate generation needs and nothing else: per column, the
//! MinHash signature with its exact distinct count, the null count, a
//! dtype tag and the numeric value range. `LakeCatalog::sketch_descriptors`
//! rebuilds [`TableDescriptor`]s straight from these records, so a
//! discover run constructs its [`metam_discovery::DiscoveryIndex`] without
//! touching `.mtc` or CSV payloads — prepare cost scales with catalog
//! metadata, not lake bytes.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "MSKS"                 version: u32 (= SKETCH_VERSION)
//! fingerprint: size u64, mtime_s u64, mtime_ns u32
//! name: u32 len + utf8         source: u32 len + utf8
//! approx_bytes: u64            nrows: u64
//! ncols: u32
//! per column:
//!   named: u8 (0|1) [+ name: u32 len + utf8]
//!   dtype: u8 (0=int 1=float 2=str 3=bool)
//!   null_count: u64            distinct: u64
//!   min: u8 presence [+ f64 bits]   max: u8 presence [+ f64 bits]
//!   sketch slots: SKETCH_SLOTS × u64
//! fnv1a-64 checksum of everything above: u64
//! ```
//!
//! Invalidation mirrors the manifest and the `.mtc` cache: the embedded
//! fingerprint must match the file's current size + mtime. A version
//! bump, a stale fingerprint, truncation or a checksum mismatch all read
//! as "no record" — the scan then re-profiles just that file and rewrites
//! its record, and a prepare-time miss degrades to loading that one table
//! (healing the record on the way). Records never fail a scan: writes are
//! best-effort, reads are `Option`.

use std::path::{Path, PathBuf};

use metam_discovery::{ColumnDescriptor, MinHash, TableDescriptor, SKETCH_SLOTS};
use metam_table::{DataType, Table};

use crate::catalog::Fingerprint;
use crate::TableMeta;

/// First four bytes of every sketch record.
pub const SKETCH_MAGIC: &[u8; 4] = b"MSKS";

/// Record-format version; bump on breaking layout changes. A version
/// mismatch invalidates the record exactly like a stale fingerprint.
pub const SKETCH_VERSION: u32 = 1;

/// Directory holding `.mks` sketch records under a lake root.
pub fn sketch_dir(root: &Path) -> PathBuf {
    root.join(".metam").join("sketches")
}

/// Sketch-record path of one lake file.
pub fn sketch_path(root: &Path, file_name: &str) -> PathBuf {
    sketch_dir(root).join(format!("{file_name}.mks"))
}

/// The trailing-checksum function of the record format (FNV-1a 64),
/// public so tools and tests can craft or re-seal records.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything persisted about one column: the coupled sketch/cardinality
/// pair plus the cheap summary facts discovery may filter on.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSketch {
    /// Column name (`None` for anonymous columns).
    pub name: Option<String>,
    /// Inferred logical type.
    pub dtype: DataType,
    /// Number of rows with a missing value.
    pub null_count: usize,
    /// Minimum of the numeric view, when one exists.
    pub min: Option<f64>,
    /// Maximum of the numeric view.
    pub max: Option<f64>,
    /// MinHash signature over the column's normalized distinct values;
    /// its `cardinality` is the exact distinct count.
    pub sketch: MinHash,
}

/// One table's persisted sketch record.
#[derive(Debug, Clone, PartialEq)]
pub struct TableSketch {
    /// Table name (the file stem).
    pub name: String,
    /// Provenance tag (the lake directory name).
    pub source: String,
    /// Approximate in-memory size in bytes of the materialized table.
    pub approx_bytes: usize,
    /// Row count.
    pub nrows: usize,
    /// Per-column sketches, in column order.
    pub columns: Vec<ColumnSketch>,
}

impl TableSketch {
    /// Sketch a materialized table (the profile-time computation).
    pub fn from_table(table: &Table) -> TableSketch {
        let columns = table
            .columns()
            .iter()
            .map(|col| ColumnSketch {
                name: col.name.clone(),
                dtype: col.dtype(),
                null_count: col.null_count(),
                min: col.min(),
                max: col.max(),
                sketch: MinHash::from_keys(&col.distinct_keys()),
            })
            .collect();
        TableSketch {
            name: table.name.clone(),
            source: table.source.clone(),
            approx_bytes: table.approx_bytes(),
            nrows: table.nrows(),
            columns,
        }
    }

    /// Rebuild the payload-free descriptor the discovery index consumes.
    /// `keyish` is recomputed from the persisted counts with the same
    /// formula `DiscoveryIndex::build` uses, so a catalog-backed index is
    /// byte-identical to an in-memory one.
    pub fn to_descriptor(&self) -> TableDescriptor {
        let columns = self
            .columns
            .iter()
            .map(|c| {
                let non_null = self.nrows.saturating_sub(c.null_count);
                ColumnDescriptor {
                    name: c.name.clone(),
                    keyish: non_null > 0 && c.sketch.cardinality * 2 >= non_null,
                    sketch: c.sketch.clone(),
                }
            })
            .collect();
        TableDescriptor {
            name: self.name.clone(),
            source: self.source.clone(),
            approx_bytes: self.approx_bytes,
            columns,
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        None => out.push(0),
    }
}

fn dtype_tag(dtype: DataType) -> u8 {
    match dtype {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Option<DataType> {
    match tag {
        0 => Some(DataType::Int),
        1 => Some(DataType::Float),
        2 => Some(DataType::Str),
        3 => Some(DataType::Bool),
        _ => None,
    }
}

/// Serialize a sketch record (with its invalidation fingerprint) to bytes.
pub fn encode(fp: Fingerprint, sketch: &TableSketch) -> Vec<u8> {
    let (size, mtime_s, mtime_ns) = fp;
    let mut out = Vec::new();
    out.extend_from_slice(SKETCH_MAGIC);
    out.extend_from_slice(&SKETCH_VERSION.to_le_bytes());
    out.extend_from_slice(&size.to_le_bytes());
    out.extend_from_slice(&mtime_s.to_le_bytes());
    out.extend_from_slice(&mtime_ns.to_le_bytes());
    put_str(&mut out, &sketch.name);
    put_str(&mut out, &sketch.source);
    out.extend_from_slice(&(sketch.approx_bytes as u64).to_le_bytes());
    out.extend_from_slice(&(sketch.nrows as u64).to_le_bytes());
    out.extend_from_slice(&(sketch.columns.len() as u32).to_le_bytes());
    for col in &sketch.columns {
        match &col.name {
            Some(name) => {
                out.push(1);
                put_str(&mut out, name);
            }
            None => out.push(0),
        }
        out.push(dtype_tag(col.dtype));
        out.extend_from_slice(&(col.null_count as u64).to_le_bytes());
        out.extend_from_slice(&(col.sketch.cardinality as u64).to_le_bytes());
        put_opt_f64(&mut out, col.min);
        put_opt_f64(&mut out, col.max);
        for slot in col.sketch.slots() {
            out.extend_from_slice(&slot.to_le_bytes());
        }
    }
    let sum = checksum(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Bounds-checked little reader over a record body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len())?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn opt_f64(&mut self) -> Option<Option<f64>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(f64::from_bits(self.u64()?))),
            _ => None,
        }
    }
}

/// Deserialize a sketch record, verifying magic, version and checksum.
/// `None` on any mismatch or damage — never an error (callers re-profile).
pub fn decode(bytes: &[u8]) -> Option<(Fingerprint, TableSketch)> {
    if bytes.len() < SKETCH_MAGIC.len() + 8 {
        return None;
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    if checksum(body) != stored {
        return None;
    }
    let mut cur = Cursor {
        bytes: body,
        pos: 0,
    };
    if cur.take(4)? != SKETCH_MAGIC {
        return None;
    }
    if cur.u32()? != SKETCH_VERSION {
        return None;
    }
    let fp = (cur.u64()?, cur.u64()?, cur.u32()?);
    let name = cur.str()?;
    let source = cur.str()?;
    let approx_bytes = cur.u64()? as usize;
    let nrows = cur.u64()? as usize;
    let ncols = cur.u32()? as usize;
    // Every column costs at least SKETCH_SLOTS*8 bytes of slots alone; a
    // count exceeding the remaining payload is corrupt — reject before
    // trusting it as an allocation size.
    if ncols > (body.len() - cur.pos) / (SKETCH_SLOTS * 8) {
        return None;
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let col_name = if cur.u8()? != 0 {
            Some(cur.str()?)
        } else {
            None
        };
        let dtype = dtype_from_tag(cur.u8()?)?;
        let null_count = cur.u64()? as usize;
        let cardinality = cur.u64()? as usize;
        let min = cur.opt_f64()?;
        let max = cur.opt_f64()?;
        let mut slots = [0u64; SKETCH_SLOTS];
        for slot in slots.iter_mut() {
            *slot = cur.u64()?;
        }
        columns.push(ColumnSketch {
            name: col_name,
            dtype,
            null_count,
            min,
            max,
            sketch: MinHash::from_parts(slots, cardinality),
        });
    }
    if cur.pos != body.len() {
        return None;
    }
    Some((
        fp,
        TableSketch {
            name,
            source,
            approx_bytes,
            nrows,
            columns,
        },
    ))
}

/// Persist `sketch` as the record of `file_name` at fingerprint `fp`.
/// Best-effort by design: a full disk or read-only `.metam` must not fail
/// a scan — candidate generation just keeps falling back to table loads.
pub fn store(
    root: &Path,
    file_name: &str,
    fp: Fingerprint,
    sketch: &TableSketch,
) -> std::io::Result<()> {
    std::fs::create_dir_all(sketch_dir(root))?;
    std::fs::write(sketch_path(root, file_name), encode(fp, sketch))
}

/// Load the sketch record for a catalog entry, validating version,
/// checksum and the embedded fingerprint against the entry's recorded
/// size + mtime. `None` on any mismatch or damage — never an error.
pub fn load(root: &Path, entry: &TableMeta) -> Option<TableSketch> {
    let bytes = std::fs::read(sketch_path(root, &entry.file_name)).ok()?;
    let (fp, mut sketch) = decode(&bytes)?;
    if fp != entry.fingerprint() {
        return None;
    }
    // Pin identity to the *current* catalog view, exactly like the `.mtc`
    // cache does: the stem is authoritative for the name and a renamed
    // lake directory changes the provenance tag.
    sketch.name = entry.name.clone();
    if let Some(dir) = root.file_name() {
        sketch.source = dir.to_string_lossy().into_owned();
    }
    Some(sketch)
}

/// `true` when `file_name` has a fully valid sketch record at `fp`
/// (magic, version, checksum and fingerprint all check out). The scan
/// planner uses this to demote manifest hits whose sketch is missing or
/// damaged, so stale records heal by re-profiling just their file.
pub fn is_fresh(root: &Path, file_name: &str, fp: Fingerprint) -> bool {
    let Ok(bytes) = std::fs::read(sketch_path(root, file_name)) else {
        return false;
    };
    matches!(decode(&bytes), Some((stored_fp, _)) if stored_fp == fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-sketch-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn table() -> Table {
        let mut t = Table::from_columns(
            "t",
            vec![
                Column::from_strings(
                    Some("zip".into()),
                    (0..40).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("rate".into()),
                    (0..40)
                        .map(|i| (i % 5 != 0).then_some(i as f64 / 3.0))
                        .collect(),
                ),
                Column::from_ints(None, (0..40).map(|i| Some(i % 7)).collect()),
            ],
        )
        .unwrap();
        t.source = "lake".into();
        t
    }

    fn entry(fp: Fingerprint) -> TableMeta {
        TableMeta {
            name: "t".into(),
            file_name: "t.csv".into(),
            file_size: fp.0,
            mtime_s: fp.1,
            mtime_ns: fp.2,
            nrows: 40,
            ncols: 3,
            columns: Vec::new(),
        }
    }

    #[test]
    fn encode_decode_roundtrips_bit_identically() {
        let sketch = TableSketch::from_table(&table());
        let fp = (12, 34, 56);
        let bytes = encode(fp, &sketch);
        let (fp2, back) = decode(&bytes).expect("valid record");
        assert_eq!(fp2, fp);
        assert_eq!(back, sketch, "sketch ↔ bytes ↔ sketch is lossless");
        assert_eq!(encode(fp, &back), bytes, "re-encoding is byte-identical");
    }

    #[test]
    fn descriptor_from_record_equals_descriptor_from_table() {
        let t = table();
        let sketch = TableSketch::from_table(&t);
        let bytes = encode((1, 2, 3), &sketch);
        let (_, back) = decode(&bytes).unwrap();
        assert_eq!(back.to_descriptor(), TableDescriptor::from_table(&t));
    }

    #[test]
    fn store_then_load_validates_fingerprint() {
        let root = tmp_root("fp");
        let sketch = TableSketch::from_table(&table());
        store(&root, "t.csv", (10, 20, 30), &sketch).unwrap();
        assert!(load(&root, &entry((10, 20, 30))).is_some());
        assert!(load(&root, &entry((11, 20, 30))).is_none(), "stale size");
        assert!(load(&root, &entry((10, 21, 30))).is_none(), "stale mtime");
        assert!(is_fresh(&root, "t.csv", (10, 20, 30)));
        assert!(!is_fresh(&root, "t.csv", (10, 20, 31)));
        assert!(!is_fresh(&root, "missing.csv", (10, 20, 30)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn load_pins_name_and_source_to_catalog_view() {
        let root = tmp_root("pin");
        let mut sketch = TableSketch::from_table(&table());
        sketch.name = "old-name".into();
        sketch.source = "old-source".into();
        store(&root, "t.csv", (1, 2, 3), &sketch).unwrap();
        let loaded = load(&root, &entry((1, 2, 3))).unwrap();
        assert_eq!(loaded.name, "t", "entry stem is authoritative");
        assert_eq!(
            loaded.source,
            root.file_name().unwrap().to_string_lossy(),
            "lake directory is the provenance tag"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn version_bump_invalidates_even_with_valid_checksum() {
        let sketch = TableSketch::from_table(&table());
        let mut bytes = encode((1, 2, 3), &sketch);
        // Re-seal the record with a bumped version: the checksum is
        // valid, so only the version gate can reject it.
        let body_len = bytes.len() - 8;
        bytes[4..8].copy_from_slice(&(SKETCH_VERSION + 1).to_le_bytes());
        let sum = checksum(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(decode(&bytes).is_none(), "future version must not parse");
    }

    #[test]
    fn truncated_or_corrupt_record_is_rejected() {
        let sketch = TableSketch::from_table(&table());
        let bytes = encode((1, 2, 3), &sketch);
        for cut in [0, 4, 17, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_none(), "cut at {cut}");
        }
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(decode(&flipped).is_none(), "bit flip");
        assert!(decode(b"xx").is_none(), "garbage");
    }

    #[test]
    fn huge_column_count_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SKETCH_MAGIC);
        bytes.extend_from_slice(&SKETCH_VERSION.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 20]); // fingerprint
        bytes.extend_from_slice(&0u32.to_le_bytes()); // name ""
        bytes.extend_from_slice(&0u32.to_le_bytes()); // source ""
        bytes.extend_from_slice(&0u64.to_le_bytes()); // approx_bytes
        bytes.extend_from_slice(&0u64.to_le_bytes()); // nrows
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // ncols: absurd
        let sum = checksum(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(decode(&bytes).is_none());
    }
}
