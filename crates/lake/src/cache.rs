//! The columnar on-disk table cache under `<lake>/.metam/cache/`.
//!
//! Every profiled file's parsed [`Table`] is persisted as
//! `<file name>.mtc` — a fingerprint prefix (file size + mtime, the same
//! invalidation key the catalog manifest uses) followed by a
//! [`metam_table::colbin`] payload. `LakeCatalog::load_table` /
//! `load_all_except` deserialize columns straight from this cache instead
//! of re-parsing CSV text on every discover run; a missing, stale,
//! truncated or corrupt cache file silently falls back to the CSV source
//! (and is healed by the next write).

use std::path::{Path, PathBuf};

use metam_table::{colbin, Table};

use crate::catalog::Fingerprint;
use crate::TableMeta;

/// Cache-file prefix; bump on breaking layout changes.
const CACHE_MAGIC: &[u8; 4] = b"MLC1";

/// Directory holding `.mtc` cache files under a lake root.
pub fn cache_dir(root: &Path) -> PathBuf {
    root.join(".metam").join("cache")
}

/// Cache path of one lake file.
pub fn cache_path(root: &Path, file_name: &str) -> PathBuf {
    cache_dir(root).join(format!("{file_name}.mtc"))
}

fn encode(fp: Fingerprint, table: &Table) -> Vec<u8> {
    let (size, mtime_s, mtime_ns) = fp;
    let mut out = Vec::new();
    out.extend_from_slice(CACHE_MAGIC);
    out.extend_from_slice(&size.to_le_bytes());
    out.extend_from_slice(&mtime_s.to_le_bytes());
    out.extend_from_slice(&mtime_ns.to_le_bytes());
    out.extend_from_slice(&colbin::to_bytes(table));
    out
}

/// Persist `table` as the cached deserialization of `file_name` at
/// fingerprint `fp`. Best-effort by design: a full disk or read-only
/// `.metam` must not fail a scan, so callers ignore the result — loads
/// just keep falling back to CSV.
pub fn store(root: &Path, file_name: &str, fp: Fingerprint, table: &Table) -> std::io::Result<()> {
    std::fs::create_dir_all(cache_dir(root))?;
    std::fs::write(cache_path(root, file_name), encode(fp, table))
}

/// Load the cached table for a catalog entry, validating the fingerprint
/// against the entry's recorded size + mtime and the payload checksum.
/// `None` on any mismatch or damage — never an error.
pub fn load(root: &Path, entry: &TableMeta) -> Option<Table> {
    let bytes = std::fs::read(cache_path(root, &entry.file_name)).ok()?;
    let header_len = CACHE_MAGIC.len() + 8 + 8 + 4;
    if bytes.len() < header_len || &bytes[..4] != CACHE_MAGIC {
        return None;
    }
    // The length guard above makes these slices exact-width, but a
    // corrupt cache must degrade to a CSV fallback, never abort.
    let size = u64::from_le_bytes(bytes.get(4..12)?.try_into().ok()?);
    let mtime_s = u64::from_le_bytes(bytes.get(12..20)?.try_into().ok()?);
    let mtime_ns = u32::from_le_bytes(bytes.get(20..24)?.try_into().ok()?);
    if (size, mtime_s, mtime_ns) != (entry.file_size, entry.mtime_s, entry.mtime_ns) {
        return None;
    }
    let mut table = colbin::read_table(&bytes[header_len..]).ok()?;
    // Pin identity to the *current* catalog view (a renamed lake directory
    // changes the provenance tag; the stem is authoritative for the name).
    table.name = entry.name.clone();
    if let Some(dir) = root.file_name() {
        table.source = dir.to_string_lossy().into_owned();
    }
    Some(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn entry(fp: Fingerprint) -> TableMeta {
        TableMeta {
            name: "t".into(),
            file_name: "t.csv".into(),
            file_size: fp.0,
            mtime_s: fp.1,
            mtime_ns: fp.2,
            nrows: 1,
            ncols: 1,
            columns: Vec::new(),
        }
    }

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![Column::from_strings(
                Some("s".into()),
                vec![Some("NA".into())],
            )],
        )
        .unwrap()
    }

    #[test]
    fn store_then_load_roundtrips() {
        let root = tmp_root("roundtrip");
        let fp = (10, 20, 30);
        store(&root, "t.csv", fp, &table()).unwrap();
        let t = load(&root, &entry(fp)).expect("cache hit");
        assert_eq!(t.nrows(), 1);
        assert_eq!(
            t.column_by_name("s").unwrap().get(0),
            metam_table::Value::Str("NA".into())
        );
        assert!(!t.source.is_empty(), "source pinned to the lake dir name");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_fingerprint_misses() {
        let root = tmp_root("stale");
        store(&root, "t.csv", (10, 20, 30), &table()).unwrap();
        assert!(load(&root, &entry((11, 20, 30))).is_none());
        assert!(load(&root, &entry((10, 21, 30))).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_or_corrupt_payload_misses() {
        let root = tmp_root("corrupt");
        let fp = (10, 20, 30);
        store(&root, "t.csv", fp, &table()).unwrap();
        let path = cache_path(&root, "t.csv");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(load(&root, &entry(fp)).is_none(), "truncated");
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        assert!(load(&root, &entry(fp)).is_none(), "corrupt");
        std::fs::write(&path, b"xx").unwrap();
        assert!(load(&root, &entry(fp)).is_none(), "garbage");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_file_misses() {
        let root = tmp_root("missing");
        assert!(load(&root, &entry((1, 2, 3))).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }
}
