//! Building blocks the session front door assembles a lake run from.
//!
//! The supported front door is `metam::session::Session::from_catalog` /
//! `from_lake` in the umbrella crate — it resolves the input dataset, the
//! task and the target, then assembles one `Prepared` bundle through
//! `metam_core::prepared::assemble`. This module contributes the two
//! lake-specific pieces: [`parse_task`], the single authority on CLI task
//! specs, and [`repository_tables`] / [`repository_descriptors`], which
//! decide what a prepare run searches over. (The deprecated
//! `prepare_from_catalog*` wrappers that used to live here were removed
//! after their one-release grace period.)
//!
//! [`repository_tables`] is the eager path: every repository table loads
//! up front. [`repository_descriptors`] is the sketch-backed path: it
//! returns payload-free descriptors (from persisted sketch records) plus
//! a [`CatalogTableProvider`] that loads a table through the catalog only
//! when the materializer first needs it — so a discover run touches the
//! input dataset plus only candidate-winning tables.

use std::sync::Arc;

use metam_core::Task;
use metam_discovery::{TableDescriptor, TableProvider};
use metam_table::Table;
use metam_tasks::classification::ClassificationTask;
use metam_tasks::clustering::ClusteringFitTask;
use metam_tasks::regression::RegressionTask;

use crate::{LakeCatalog, LakeError, Result};

/// Resolve the repository tables a prepare run should search over:
/// everything in the catalog except the withheld names. `None` (the
/// default) withholds the table named like the input dataset — right when
/// `din` was loaded *from* the catalog, which must not join with itself.
/// Pass `Some(&[])` when `din` is external to the lake, so a lake table
/// that merely shares its name still participates in discovery.
pub fn repository_tables(
    catalog: &LakeCatalog,
    din: &Table,
    exclude_tables: Option<&[String]>,
) -> Result<Vec<Arc<Table>>> {
    let excluded: Vec<&str> = match exclude_tables {
        Some(names) => names.iter().map(String::as_str).collect(),
        None => vec![din.name.as_str()],
    };
    catalog.load_all_except(&excluded)
}

/// A deferred [`TableProvider`] over a [`LakeCatalog`]: table `idx` is the
/// `idx`-th repository name, loaded through the catalog (columnar cache
/// first, CSV fallback) only when the materializer first asks for it.
#[derive(Debug)]
pub struct CatalogTableProvider {
    catalog: Arc<LakeCatalog>,
    names: Vec<String>,
}

impl TableProvider for CatalogTableProvider {
    fn len(&self) -> usize {
        self.names.len()
    }

    fn fetch(&self, idx: usize) -> std::result::Result<Arc<Table>, String> {
        let name = self.names.get(idx).ok_or_else(|| {
            format!(
                "table index {idx} out of bounds for {} tables",
                self.names.len()
            )
        })?;
        self.catalog
            .load_table(name)
            .map(Arc::new)
            .map_err(|e| e.to_string())
    }
}

/// The sketch-backed twin of [`repository_tables`]: resolve the same
/// repository (same exclusion semantics, same order) as payload-free
/// descriptors read from the catalog's persisted sketch records, plus a
/// lazy [`CatalogTableProvider`] aligned index-for-index with them.
/// Candidate generation over the descriptors is byte-identical to the
/// eager path; table payloads load only at materialization time.
pub fn repository_descriptors(
    catalog: &Arc<LakeCatalog>,
    din: &Table,
    exclude_tables: Option<&[String]>,
) -> Result<(Vec<TableDescriptor>, CatalogTableProvider)> {
    let excluded: Vec<&str> = match exclude_tables {
        Some(names) => names.iter().map(String::as_str).collect(),
        None => vec![din.name.as_str()],
    };
    let descriptors = catalog.sketch_descriptors(&excluded)?;
    let names = catalog.repository_names(&excluded);
    Ok((
        descriptors,
        CatalogTableProvider {
            catalog: Arc::clone(catalog),
            names,
        },
    ))
}

/// A CLI-parsable task kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Random-forest classification on a named target.
    Classification,
    /// Random-forest regression on a named target.
    Regression,
    /// Unsupervised k-means clustering scored by silhouette (no target).
    Clustering,
}

/// A task parsed from a CLI spec: the boxed task, its target column (when
/// the kind is supervised), and the recognized kind (so callers never
/// re-parse the spec string).
pub struct ParsedTask {
    /// The instantiated task.
    pub task: Box<dyn Task>,
    /// Target column name in the input dataset; `None` for unsupervised
    /// kinds (clustering).
    pub target: Option<String>,
    /// Which kind the spec named.
    pub kind: TaskKind,
}

/// Parse a CLI task spec `kind:arg` into a task plus its target column.
///
/// Supported kinds (the tasks runnable on any table, no ground truth
/// needed): `classification:<column>`, `regression:<column>` and
/// `clustering:<k>` (unsupervised, `k ≥ 2` clusters).
pub fn parse_task(spec: &str, seed: u64) -> Result<ParsedTask> {
    let (kind, arg) = spec.split_once(':').ok_or_else(|| {
        LakeError::BadArgument(format!(
            "task spec must be kind:arg (e.g. classification:label or clustering:3), got {spec:?}"
        ))
    })?;
    let arg = arg.trim();
    if arg.is_empty() {
        return Err(LakeError::BadArgument(
            "task spec has an empty argument".into(),
        ));
    }
    let (task, target, kind): (Box<dyn Task>, Option<String>, TaskKind) = match kind.trim() {
        "classification" => (
            Box::new(ClassificationTask::new(arg, seed)),
            Some(arg.into()),
            TaskKind::Classification,
        ),
        "regression" => (
            Box::new(RegressionTask::new(arg, seed)),
            Some(arg.into()),
            TaskKind::Regression,
        ),
        "clustering" => {
            let k: usize = arg.parse().map_err(|_| {
                LakeError::BadArgument(format!(
                    "clustering needs a cluster count (e.g. clustering:3), got {arg:?}"
                ))
            })?;
            if k < 2 {
                return Err(LakeError::BadArgument(format!(
                    "clustering needs at least 2 clusters, got {k}"
                )));
            }
            (
                Box::new(ClusteringFitTask::new(k, seed)),
                None,
                TaskKind::Clustering,
            )
        }
        other => {
            return Err(LakeError::BadArgument(format!(
                "unknown task kind {other:?} (expected classification, regression or clustering)"
            )))
        }
    };
    Ok(ParsedTask { task, target, kind })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_core::prepared::{assemble, AssembleOptions};
    use metam_profile::default_profiles;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_lake(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-prepare-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn repository_tables_feed_a_full_assembly() {
        let dir = tmp_lake("ok");
        let din_rows: String = (0..40)
            .map(|i| format!("z{i},{}\n", if i % 2 == 0 { "a" } else { "b" }))
            .collect();
        fs::write(dir.join("din.csv"), format!("zip,label\n{din_rows}")).unwrap();
        let ext_rows: String = (0..40).map(|i| format!("z{i},{}\n", i as f64)).collect();
        fs::write(dir.join("ext.csv"), format!("zipcode,rate\n{ext_rows}")).unwrap();

        let catalog = LakeCatalog::scan(&dir).unwrap();
        let din = catalog.load_table("din").unwrap();
        let parsed = parse_task("classification:label", 3).unwrap();
        let target_column = parsed
            .target
            .as_deref()
            .and_then(|t| din.column_index(t).ok());
        let tables = repository_tables(&catalog, &din, None).unwrap();
        assert_eq!(tables.len(), 1, "din itself is withheld");
        let prepared = assemble(
            din,
            tables,
            target_column,
            parsed.task,
            &default_profiles(),
            &AssembleOptions {
                seed: 3,
                ..Default::default()
            },
        );

        assert!(
            !prepared.candidates.is_empty(),
            "ext.rate must be discovered"
        );
        assert_eq!(prepared.candidates.len(), prepared.profiles.len());
        assert_eq!(prepared.profile_names.len(), 5);
        assert_eq!(prepared.target_column, Some(1));
        assert!(prepared.relevance.is_none(), "a real lake has no truth");
        // The din table itself must not appear as a candidate source.
        assert!(prepared.candidates.iter().all(|c| c.source_table != "din"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_exclusion_keeps_same_named_lake_table_in_play() {
        let dir = tmp_lake("external");
        // The lake owns a table also called "din" — different data.
        let rows: String = (0..30).map(|i| format!("z{i},{}\n", i as f64)).collect();
        fs::write(dir.join("din.csv"), format!("zipcode,rate\n{rows}")).unwrap();
        // The *external* input dataset shares the stem but lives elsewhere.
        let ext_dir = tmp_lake("external-home");
        let ext = ext_dir.join("din.csv");
        let din_rows: String = (0..30)
            .map(|i| format!("z{i},{}\n", if i % 2 == 0 { "a" } else { "b" }))
            .collect();
        fs::write(&ext, format!("zip,label\n{din_rows}")).unwrap();

        let catalog = LakeCatalog::scan(&dir).unwrap();
        let din = crate::catalog::read_table_file(&ext).unwrap();
        assert_eq!(din.name, "din", "stems collide by construction");
        let withheld = repository_tables(&catalog, &din, None).unwrap();
        assert!(withheld.is_empty(), "default withholds the name collision");
        let kept = repository_tables(&catalog, &din, Some(&[])).unwrap();
        assert_eq!(kept.len(), 1, "empty exclusion keeps the lake's own din");
        assert_eq!(kept[0].name, "din");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&ext_dir);
    }

    #[test]
    fn parse_task_accepts_known_kinds() {
        let parsed = parse_task("classification:label", 0).unwrap();
        assert_eq!(parsed.kind, TaskKind::Classification);
        assert_eq!(parsed.target.as_deref(), Some("label"));
        assert!(parse_task("regression: price ", 0).is_ok());
        assert!(matches!(
            parse_task("regression:", 0),
            Err(LakeError::BadArgument(_))
        ));
        assert!(matches!(
            parse_task("classification", 0),
            Err(LakeError::BadArgument(_))
        ));
        assert!(matches!(
            parse_task("frobnicate:x", 0),
            Err(LakeError::BadArgument(_))
        ));
    }

    #[test]
    fn parse_task_accepts_clustering() {
        let parsed = parse_task("clustering:3", 0).unwrap();
        assert_eq!(parsed.kind, TaskKind::Clustering);
        assert_eq!(parsed.target, None, "clustering is unsupervised");
        assert_eq!(parsed.task.name(), "clustering-fit");
        assert!(matches!(
            parse_task("clustering:x", 0),
            Err(LakeError::BadArgument(_))
        ));
        assert!(matches!(
            parse_task("clustering:1", 0),
            Err(LakeError::BadArgument(_))
        ));
    }
}
