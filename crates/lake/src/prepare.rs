//! Plug a [`LakeCatalog`] into the discovery → profiles → search flow.
//!
//! [`prepare_from_catalog`] is the lake-side twin of the umbrella crate's
//! `pipeline::prepare`: instead of a synthetic [`Scenario`] it takes a
//! scanned directory, an input dataset and a **user-supplied task**, and
//! assembles the `SearchInputs` bundle every search method consumes.

use std::sync::Arc;

use metam_core::engine::SearchInputs;
use metam_core::Task;
use metam_discovery::path::PathConfig;
use metam_discovery::{generate_candidates, Candidate, DiscoveryIndex, Materializer};
use metam_profile::{default_profiles, ProfileSet};
use metam_table::Table;
use metam_tasks::classification::ClassificationTask;
use metam_tasks::regression::RegressionTask;

use crate::{LakeCatalog, LakeError, Result};

/// Knobs for [`prepare_from_catalog`] (mirrors `pipeline::PrepareOptions`,
/// plus the target-column name a real lake cannot infer).
#[derive(Debug, Clone)]
pub struct LakeOptions {
    /// Join-path enumeration limits.
    pub path: PathConfig,
    /// Cap on generated candidates.
    pub max_candidates: usize,
    /// Rows sampled for profile estimation (paper: 100).
    pub profile_sample: usize,
    /// Seed for sampling and profile estimation.
    pub seed: u64,
    /// Name of the task's target column in the input dataset, when the
    /// task is supervised — resolved for target-aware profiles and the
    /// iARDA baseline.
    pub target: Option<String>,
    /// Catalog tables to withhold from the repository, by name. `None`
    /// (the default) withholds the table named like the input dataset —
    /// right when `din` was loaded *from* the catalog, which must not
    /// join with itself. Pass `Some(vec![])` when `din` is external to
    /// the lake, so a lake table that merely shares its name still
    /// participates in discovery.
    pub exclude_tables: Option<Vec<String>>,
}

impl Default for LakeOptions {
    fn default() -> Self {
        LakeOptions {
            path: PathConfig::default(),
            max_candidates: 100_000,
            profile_sample: 100,
            seed: 0,
            target: None,
            exclude_tables: None,
        }
    }
}

/// A lake with everything materialized for searching. Owns the input
/// dataset, candidates, profiles and task; borrow [`inputs`](Self::inputs)
/// to run any search method.
pub struct PreparedLake {
    /// The input dataset.
    pub din: Table,
    /// Index of the target column in `din`, if supervised.
    pub target_column: Option<usize>,
    /// Candidate augmentations discovered in the lake.
    pub candidates: Vec<Candidate>,
    /// Profile vectors per candidate.
    pub profiles: Vec<Vec<f64>>,
    /// Profile names.
    pub profile_names: Vec<String>,
    /// Materializer over the lake tables.
    pub materializer: Materializer,
    /// The downstream task.
    pub task: Box<dyn Task>,
}

impl PreparedLake {
    /// Borrow as the search-input bundle every method consumes.
    pub fn inputs(&self) -> SearchInputs<'_> {
        SearchInputs {
            din: &self.din,
            target_column: self.target_column,
            candidates: &self.candidates,
            profiles: &self.profiles,
            profile_names: &self.profile_names,
            materializer: &self.materializer,
            task: self.task.as_ref(),
        }
    }
}

/// [`prepare_from_catalog_with`] using the paper's default profile set.
pub fn prepare_from_catalog(
    catalog: &LakeCatalog,
    din: Table,
    task: Box<dyn Task>,
    options: &LakeOptions,
) -> Result<PreparedLake> {
    prepare_from_catalog_with(catalog, din, task, default_profiles(), options)
}

/// Full lake assembly: load every catalog table (minus the input dataset
/// itself), index, enumerate candidates, evaluate profiles, bundle.
pub fn prepare_from_catalog_with(
    catalog: &LakeCatalog,
    din: Table,
    task: Box<dyn Task>,
    profile_set: ProfileSet,
    options: &LakeOptions,
) -> Result<PreparedLake> {
    if let Some(target) = options.target.as_deref() {
        if din.column_index(target).is_err() {
            return Err(LakeError::BadArgument(format!(
                "target column {target:?} not found in input dataset {:?}",
                din.name
            )));
        }
    }
    let excluded: Vec<&str> = match &options.exclude_tables {
        Some(names) => names.iter().map(String::as_str).collect(),
        None => vec![din.name.as_str()],
    };
    let tables: Vec<Arc<Table>> = catalog.load_all_except(&excluded)?;
    let index = DiscoveryIndex::build(tables.clone());
    let candidates = generate_candidates(&din, &index, &options.path, options.max_candidates);
    let materializer = Materializer::new(tables);
    let target_column = options
        .target
        .as_deref()
        .and_then(|t| din.column_index(t).ok());
    let profiles = profile_set.evaluate_all(
        &din,
        target_column,
        &candidates,
        &materializer,
        options.profile_sample,
        options.seed,
    );
    let profile_names = profile_set.names().into_iter().map(String::from).collect();
    Ok(PreparedLake {
        din,
        target_column,
        candidates,
        profiles,
        profile_names,
        materializer,
        task,
    })
}

/// A CLI-parsable task kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Random-forest classification on a named target.
    Classification,
    /// Random-forest regression on a named target.
    Regression,
}

/// A task parsed from a CLI spec: the boxed task, its target column, and
/// the recognized kind (so callers never re-parse the spec string).
pub struct ParsedTask {
    /// The instantiated task.
    pub task: Box<dyn Task>,
    /// Target column name in the input dataset.
    pub target: String,
    /// Which kind the spec named.
    pub kind: TaskKind,
}

/// Parse a CLI task spec `kind:target` into a task plus its target column.
///
/// Supported kinds (the tasks trainable on any table, no ground truth
/// needed): `classification:<column>` and `regression:<column>`.
pub fn parse_task(spec: &str, seed: u64) -> Result<ParsedTask> {
    let (kind, target) = spec.split_once(':').ok_or_else(|| {
        LakeError::BadArgument(format!(
            "task spec must be kind:target (e.g. classification:label), got {spec:?}"
        ))
    })?;
    let target = target.trim();
    if target.is_empty() {
        return Err(LakeError::BadArgument(
            "task spec has an empty target".into(),
        ));
    }
    let (task, kind): (Box<dyn Task>, TaskKind) = match kind.trim() {
        "classification" => (
            Box::new(ClassificationTask::new(target, seed)),
            TaskKind::Classification,
        ),
        "regression" => (
            Box::new(RegressionTask::new(target, seed)),
            TaskKind::Regression,
        ),
        other => {
            return Err(LakeError::BadArgument(format!(
                "unknown task kind {other:?} (expected classification or regression)"
            )))
        }
    };
    Ok(ParsedTask {
        task,
        target: target.into(),
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_lake(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-prepare-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn prepare_assembles_aligned_artifacts() {
        let dir = tmp_lake("ok");
        let din_rows: String = (0..40)
            .map(|i| format!("z{i},{}\n", if i % 2 == 0 { "a" } else { "b" }))
            .collect();
        fs::write(dir.join("din.csv"), format!("zip,label\n{din_rows}")).unwrap();
        let ext_rows: String = (0..40).map(|i| format!("z{i},{}\n", i as f64)).collect();
        fs::write(dir.join("ext.csv"), format!("zipcode,rate\n{ext_rows}")).unwrap();

        let catalog = LakeCatalog::scan(&dir).unwrap();
        let din = catalog.load_table("din").unwrap();
        let ParsedTask { task, target, .. } = parse_task("classification:label", 3).unwrap();
        let options = LakeOptions {
            target: Some(target),
            seed: 3,
            ..Default::default()
        };
        let prepared = prepare_from_catalog(&catalog, din, task, &options).unwrap();

        assert!(
            !prepared.candidates.is_empty(),
            "ext.rate must be discovered"
        );
        assert_eq!(prepared.candidates.len(), prepared.profiles.len());
        assert_eq!(prepared.profile_names.len(), 5);
        assert_eq!(prepared.target_column, Some(1));
        // The din table itself must not appear as a candidate source.
        assert!(prepared.candidates.iter().all(|c| c.source_table != "din"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn external_din_keeps_same_named_lake_table_in_play() {
        let dir = tmp_lake("external");
        // The lake owns a table also called "din" — different data.
        let rows: String = (0..30).map(|i| format!("z{i},{}\n", i as f64)).collect();
        fs::write(dir.join("din.csv"), format!("zipcode,rate\n{rows}")).unwrap();
        // The *external* input dataset shares the stem but lives elsewhere.
        let ext_dir = tmp_lake("external-home");
        let ext = ext_dir.join("din.csv");
        let din_rows: String = (0..30)
            .map(|i| format!("z{i},{}\n", if i % 2 == 0 { "a" } else { "b" }))
            .collect();
        fs::write(&ext, format!("zip,label\n{din_rows}")).unwrap();

        let catalog = LakeCatalog::scan(&dir).unwrap();
        let din = crate::catalog::read_table_file(&ext).unwrap();
        assert_eq!(din.name, "din", "stems collide by construction");
        let ParsedTask { task, target, .. } = parse_task("classification:label", 0).unwrap();
        let options = LakeOptions {
            target: Some(target),
            exclude_tables: Some(vec![]),
            ..Default::default()
        };
        let prepared = prepare_from_catalog(&catalog, din, task, &options).unwrap();
        assert!(
            prepared.candidates.iter().any(|c| c.source_table == "din"),
            "the lake's own 'din' table must still be a candidate source"
        );
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&ext_dir);
    }

    #[test]
    fn missing_target_is_a_clear_error() {
        let dir = tmp_lake("badtarget");
        fs::write(dir.join("din.csv"), "zip,y\nz1,1\n").unwrap();
        let catalog = LakeCatalog::scan(&dir).unwrap();
        let din = catalog.load_table("din").unwrap();
        let task = parse_task("regression:y", 0).unwrap().task;
        let options = LakeOptions {
            target: Some("nope".into()),
            ..Default::default()
        };
        assert!(matches!(
            prepare_from_catalog(&catalog, din, task, &options),
            Err(LakeError::BadArgument(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_task_accepts_known_kinds() {
        assert!(parse_task("classification:label", 0).is_ok());
        assert!(parse_task("regression: price ", 0).is_ok());
        assert!(matches!(
            parse_task("clustering:3", 0),
            Err(LakeError::BadArgument(_))
        ));
        assert!(matches!(
            parse_task("regression:", 0),
            Err(LakeError::BadArgument(_))
        ));
        assert!(matches!(
            parse_task("classification", 0),
            Err(LakeError::BadArgument(_))
        ));
    }
}
