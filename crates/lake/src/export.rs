//! Export a `metam-datagen` scenario as an on-disk CSV lake.
//!
//! This is the bridge between the synthetic world and the lake subsystem:
//! write `din.csv` plus one CSV per repository table, then `scan` +
//! `discover` the directory as if it were real open data. Because the
//! scenario carries planted ground truth, the round trip is
//! self-validating — discovery over the exported lake must recover the
//! planted augmentations (see `tests/lake_roundtrip.rs`).
//!
//! String cells round-trip verbatim: the CSV writer quotes any string
//! that would otherwise re-type on read-back (null markers like `"NA"` /
//! `"-"`, numeric or boolean spellings, padded whitespace), and quoted
//! cells parse as verbatim strings — no spurious nulls, ever. Numeric
//! cells keep their numeric value and null pattern, though a float column
//! whose values are all integral (`1.0`, `2.0`) re-reads as an `Int`
//! column — the text form carries no fraction to prove floatness; its
//! numeric view (and what joins) is unchanged.

use std::path::{Path, PathBuf};

use metam_datagen::Scenario;
use metam_table::csv::write_csv;
use metam_table::Table;

use crate::{LakeError, Result};

/// Where an exported scenario landed.
#[derive(Debug, Clone)]
pub struct ExportReport {
    /// Path of the exported input dataset (`din.csv`).
    pub din_path: PathBuf,
    /// `(table name, file path)` for every exported repository table.
    pub table_files: Vec<(String, PathBuf)>,
}

/// Make a table name safe as a file stem (the stem must round-trip back to
/// the table name, so only conservative characters survive).
fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() {
        "table".to_string()
    } else {
        cleaned
    }
}

fn write_table(dir: &Path, stem: &str, table: &Table) -> Result<PathBuf> {
    let path = dir.join(format!("{stem}.csv"));
    let file = std::fs::File::create(&path)
        .map_err(|e| LakeError::Io(format!("{}: {e}", path.display())))?;
    write_csv(table, std::io::BufWriter::new(file))?;
    Ok(path)
}

/// Write `scenario` into `dir` as a CSV lake: `din.csv` plus one file per
/// repository table. Union-side tables (`scenario.union_tables`) are task
/// internals, not repository members, and are not exported.
///
/// Table names that sanitize to the same file stem are an error — the stem
/// *is* the catalog name, so a collision would silently merge two tables.
/// Stems are compared case-insensitively: `Crime.csv` and `crime.csv` are
/// one file on the case-insensitive filesystems of macOS and Windows.
pub fn export_scenario(scenario: &Scenario, dir: impl AsRef<Path>) -> Result<ExportReport> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;

    let mut used: Vec<String> = vec!["din".to_string()];
    let mut table_files = Vec::with_capacity(scenario.tables.len());
    for table in &scenario.tables {
        let stem = sanitize(&table.name);
        let folded = stem.to_ascii_lowercase();
        if used.contains(&folded) {
            return Err(LakeError::BadArgument(format!(
                "table name collision after sanitizing: {stem:?}"
            )));
        }
        used.push(folded);
        let path = write_table(dir, &stem, table)?;
        table_files.push((table.name.clone(), path));
    }
    let din_path = write_table(dir, "din", &scenario.din)?;
    Ok(ExportReport {
        din_path,
        table_files,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("metam-export-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn export_writes_every_table() {
        let dir = tmp_dir("all");
        let scenario = build_supervised(&SupervisedConfig {
            n_rows: 60,
            n_informative: 1,
            n_irrelevant_tables: 2,
            n_erroneous_tables: 1,
            ..Default::default()
        });
        let report = export_scenario(&scenario, &dir).unwrap();
        assert!(report.din_path.exists());
        assert_eq!(report.table_files.len(), scenario.tables.len());
        for (_, path) in &report.table_files {
            assert!(path.exists());
        }
        // The exported din re-reads with the same shape.
        let din = crate::catalog::read_table_file(&report.din_path).unwrap();
        assert_eq!(din.nrows(), scenario.din.nrows());
        assert_eq!(din.ncols(), scenario.din.ncols());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn case_folded_stem_collision_is_rejected() {
        use metam_datagen::{GroundTruth, Scenario, TaskSpec};
        use metam_table::{Column, Table};
        use std::sync::Arc;

        let mk = |name: &str| {
            Arc::new(
                Table::from_columns(
                    name,
                    vec![Column::from_ints(Some("k".into()), vec![Some(1)])],
                )
                .unwrap(),
            )
        };
        let scenario = Scenario {
            name: "collision".into(),
            din: Table::from_columns(
                "d",
                vec![Column::from_ints(Some("k".into()), vec![Some(1)])],
            )
            .unwrap(),
            tables: vec![mk("Crime"), mk("crime")],
            spec: TaskSpec::Classification { target: "k".into() },
            ground_truth: GroundTruth::default(),
            union_tables: Vec::new(),
            eval_table: None,
        };
        let dir = tmp_dir("collide");
        assert!(matches!(
            export_scenario(&scenario, &dir),
            Err(LakeError::BadArgument(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sanitize_keeps_safe_names() {
        assert_eq!(sanitize("crime_stats-2021.v2"), "crime_stats-2021.v2");
        assert_eq!(sanitize("weird name/slash"), "weird_name_slash");
        assert_eq!(sanitize(""), "table");
    }
}
