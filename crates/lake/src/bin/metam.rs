//! `metam` — goal-oriented data discovery over a directory of CSV files.
//!
//! See `metam help` (or [`metam_lake::cli`]) for the command reference.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(metam_lake::cli::run(&args));
}
