//! The `metam` command-line interface.
//!
//! ```text
//! metam demo <dir> [--seed N]              seed a synthetic CSV lake
//! metam scan <dir>                         build/refresh the catalog
//! metam profile <dir> [--table NAME]       show cached column statistics
//! metam discover <dir> --din NAME --task kind:target [options]
//! ```
//!
//! `discover` runs the full goal-oriented pipeline over the lake and
//! reports the selected augmentations together with the query-budget
//! accounting (queries used, remaining, stop reason) so real-lake runs are
//! debuggable.

use metam_core::{Metam, MetamConfig, StopReason};
use metam_datagen::repo::price_classification;

use crate::catalog::read_table_file;
use crate::prepare::{parse_task, prepare_from_catalog, LakeOptions};
use crate::{export_scenario, LakeCatalog, LakeError, Result};

const USAGE: &str = "\
usage: metam <command> [args]

commands:
  demo <dir> [--seed N]       write a synthetic demo lake (price scenario)
  scan <dir>                  scan a directory of CSVs into a catalog
  profile <dir> [--table T]   print cached per-column statistics
  discover <dir> --din NAME --task kind:target
           [--theta T] [--budget N] [--seed N]
           [--max-candidates N] [--sample N]
                              run goal-oriented discovery over the lake

task kinds: classification:<column> | regression:<column>
`--din` accepts a catalog table name or a path to a CSV file.";

/// Parsed flag list: positional args + `--key value` pairs.
struct Flags {
    positional: Vec<String>,
    pairs: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags> {
        let mut positional = Vec::new();
        let mut pairs = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| LakeError::BadArgument(format!("flag --{key} needs a value")))?;
                pairs.push((key.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Flags { positional, pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_num<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw.parse::<T>().map(Some).map_err(|_| {
                LakeError::BadArgument(format!("--{key} needs a number, got {raw:?}"))
            }),
        }
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<()> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(LakeError::BadArgument(format!("unknown flag --{k}")));
            }
        }
        Ok(())
    }
}

/// Run the CLI on `args` (without the program name). Returns the exit code.
pub fn run(args: &[String]) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn dispatch(args: &[String]) -> Result<()> {
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return Err(LakeError::BadArgument("no command given".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "demo" => cmd_demo(rest),
        "scan" => cmd_scan(rest),
        "profile" => cmd_profile(rest),
        "discover" => cmd_discover(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("{USAGE}");
            Err(LakeError::BadArgument(format!("unknown command {other:?}")))
        }
    }
}

fn lake_dir(flags: &Flags) -> Result<&str> {
    flags
        .positional
        .first()
        .map(String::as_str)
        .ok_or_else(|| LakeError::BadArgument("missing <dir> argument".into()))
}

fn cmd_demo(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&["seed"])?;
    let dir = lake_dir(&flags)?;
    let seed = flags.get_num::<u64>("seed")?.unwrap_or(7);
    let scenario = price_classification(seed);
    let report = export_scenario(&scenario, dir)?;
    println!(
        "wrote demo lake to {dir}: din.csv + {} tables (seed {seed})",
        report.table_files.len()
    );
    println!(
        "next: metam scan {dir} && metam discover {dir} --din din --task classification:label"
    );
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&[])?;
    let dir = lake_dir(&flags)?;
    let catalog = LakeCatalog::scan(dir)?;
    println!("{:<24} {:>8} {:>6}", "table", "rows", "cols");
    for entry in catalog.entries() {
        println!("{:<24} {:>8} {:>6}", entry.name, entry.nrows, entry.ncols);
    }
    println!(
        "{} tables, {} rows, {} columns | profile cache: {} hit(s), {} miss(es)",
        catalog.len(),
        catalog.total_rows(),
        catalog.total_columns(),
        catalog.cache_hits(),
        catalog.cache_misses(),
    );
    println!(
        "catalog: {}",
        LakeCatalog::manifest_path(catalog.root()).display()
    );
    Ok(())
}

fn cmd_profile(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&["table"])?;
    let dir = lake_dir(&flags)?;
    let catalog = LakeCatalog::scan(dir)?;
    let only = flags.get("table");
    if let Some(name) = only {
        if catalog.get(name).is_none() {
            return Err(LakeError::UnknownTable(name.to_string()));
        }
    }
    for entry in catalog.entries() {
        if only.is_some_and(|n| n != entry.name) {
            continue;
        }
        println!("\n== {} ({} rows) ==", entry.name, entry.nrows);
        println!(
            "{:<20} {:>6} {:>7} {:>9} {:>11} {:>11} {:>11}",
            "column", "type", "nulls", "distinct", "min", "max", "mean"
        );
        for (i, c) in entry.columns.iter().enumerate() {
            println!(
                "{:<20} {:>6} {:>7} {:>9} {:>11} {:>11} {:>11}",
                c.display_name(i),
                crate::stats::dtype_to_str(c.dtype),
                c.null_count,
                c.distinct_count,
                fmt_opt(c.min),
                fmt_opt(c.max),
                fmt_opt(c.mean),
            );
        }
    }
    Ok(())
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.3}"))
        .unwrap_or_else(|| "-".to_string())
}

fn cmd_discover(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args)?;
    flags.reject_unknown(&[
        "din",
        "task",
        "theta",
        "budget",
        "seed",
        "max-candidates",
        "sample",
    ])?;
    let dir = lake_dir(&flags)?;
    let din_arg = flags
        .get("din")
        .ok_or_else(|| LakeError::BadArgument("discover needs --din".into()))?
        .to_string();
    let task_spec = flags
        .get("task")
        .ok_or_else(|| LakeError::BadArgument("discover needs --task kind:target".into()))?
        .to_string();
    let theta = flags.get_num::<f64>("theta")?;
    let budget = flags.get_num::<usize>("budget")?.unwrap_or(300);
    let seed = flags.get_num::<u64>("seed")?.unwrap_or(0);

    let catalog = LakeCatalog::scan(dir)?;
    println!(
        "lake {dir}: {} tables ({} cache hits, {} misses)",
        catalog.len(),
        catalog.cache_hits(),
        catalog.cache_misses()
    );

    // `--din` is a catalog table name or a CSV path. Only a catalog-owned
    // input dataset is withheld from the repository (it must not join with
    // itself); an external file leaves every lake table in play, even one
    // that happens to share its name.
    let (din, din_from_catalog) = if catalog.get(&din_arg).is_some() {
        (catalog.load_table(&din_arg)?, true)
    } else if std::path::Path::new(&din_arg).is_file() {
        (read_table_file(std::path::Path::new(&din_arg))?, false)
    } else {
        return Err(LakeError::UnknownTable(din_arg.clone()));
    };
    println!(
        "din {:?}: {} rows × {} columns",
        din.name,
        din.nrows(),
        din.ncols()
    );

    let parsed = parse_task(&task_spec, seed)?;
    let (task, target) = (parsed.task, parsed.target);
    if parsed.kind == crate::prepare::TaskKind::Regression {
        if let Ok(col) = din.column_by_name(&target) {
            if col.dtype() == metam_table::DataType::Str {
                eprintln!(
                    "warning: regression target {target:?} is a string column — utility will \
                     likely be 0; did you mean classification:{target}?"
                );
            }
        }
    }
    let mut options = LakeOptions {
        seed,
        target: Some(target),
        exclude_tables: if din_from_catalog { None } else { Some(vec![]) },
        ..Default::default()
    };
    if let Some(n) = flags.get_num::<usize>("max-candidates")? {
        options.max_candidates = n;
    }
    if let Some(n) = flags.get_num::<usize>("sample")? {
        options.profile_sample = n;
    }

    let prepared = prepare_from_catalog(&catalog, din, task, &options)?;
    println!(
        "{} candidate augmentations discovered",
        prepared.candidates.len()
    );

    let config = MetamConfig {
        theta,
        max_queries: budget,
        seed,
        ..Default::default()
    };
    let result = Metam::new(config).run(&prepared.inputs());

    println!(
        "\nutility: {:.4} (base {:.4}, gain {:+.4})",
        result.utility,
        result.base_utility,
        result.utility - result.base_utility
    );
    println!(
        "queries: {} used / {} budget ({} remaining)",
        result.queries,
        result.budget,
        result.queries_remaining()
    );
    println!("stop reason: {}", stop_reason_label(result.stop_reason));
    if result.selected.is_empty() {
        println!("selected: (no augmentation improved the task)");
    } else {
        println!("selected {} augmentation(s):", result.selected.len());
        for &id in &result.selected {
            let c = &prepared.candidates[id];
            println!("  [{id}] {}", c.name);
        }
    }
    Ok(())
}

/// Human-readable stop reason (satellite: budget accounting must be
/// observable from the CLI).
pub fn stop_reason_label(reason: StopReason) -> &'static str {
    match reason {
        StopReason::ThetaReached => "theta reached (target utility met)",
        StopReason::BudgetExhausted => "budget exhausted (query limit hit)",
        StopReason::Exhausted => "exhausted (no candidate improves further)",
        StopReason::MaxRounds => "max rounds (safety bound hit)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn tmp_lake(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metam-cli-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn strs(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scan_and_profile_commands_work() {
        let dir = tmp_lake("cmd");
        fs::write(dir.join("a.csv"), "zip,v\nz1,1\nz2,2\n").unwrap();
        let d = dir.to_string_lossy().into_owned();
        assert_eq!(run(&strs(&["scan", &d])), 0);
        assert_eq!(run(&strs(&["profile", &d])), 0);
        assert_eq!(run(&strs(&["profile", &d, "--table", "a"])), 0);
        assert_eq!(run(&strs(&["profile", &d, "--table", "zzz"])), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_arguments_fail_cleanly() {
        assert_eq!(run(&strs(&[])), 2);
        assert_eq!(run(&strs(&["frobnicate"])), 2);
        assert_eq!(run(&strs(&["scan"])), 2);
        assert_eq!(run(&strs(&["discover", "/nonexistent", "--task", "x"])), 2);
        let dir = tmp_lake("badflag");
        fs::write(dir.join("a.csv"), "x\n1\n").unwrap();
        let d = dir.to_string_lossy().into_owned();
        assert_eq!(run(&strs(&["scan", &d, "--bogus", "1"])), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn demo_then_discover_end_to_end() {
        let dir = tmp_lake("e2e");
        let d = dir.to_string_lossy().into_owned();
        assert_eq!(run(&strs(&["demo", &d, "--seed", "7"])), 0);
        assert_eq!(run(&strs(&["scan", &d])), 0);
        assert_eq!(
            run(&strs(&[
                "discover",
                &d,
                "--din",
                "din",
                "--task",
                "classification:label",
                "--budget",
                "60",
                "--seed",
                "7",
            ])),
            0
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_reasons_have_labels() {
        for r in [
            StopReason::ThetaReached,
            StopReason::BudgetExhausted,
            StopReason::Exhausted,
            StopReason::MaxRounds,
        ] {
            assert!(!stop_reason_label(r).is_empty());
        }
    }
}
