//! Named wall-clock spans. A [`span`] guard measures from construction to
//! drop, records the duration into the metrics registry (histogram
//! `span.<kind>`), and — when a sink is installed — emits one JSONL line
//! `{"ts":..,"span":<kind>,"name":<name>,"secs":..}` at close.

use std::time::Instant;

use crate::{metrics, sink};

/// A running span; closes (records + emits) on drop.
#[derive(Debug)]
#[must_use = "a span measures until dropped; binding it to _ closes it immediately"]
pub struct Span {
    kind: &'static str,
    name: String,
    start: Instant,
    extra: Vec<(&'static str, f64)>,
}

impl Span {
    /// Attach a numeric field to the closing line (also useful to carry
    /// sizes: rows, files, candidates).
    pub fn field(&mut self, key: &'static str, v: f64) {
        self.extra.push((key, v));
    }

    /// Elapsed seconds so far.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let secs = self.elapsed_secs();
        metrics::record(&format!("span.{}", self.kind), secs);
        if sink::enabled() {
            let mut e = sink::Event::span(self.kind, &self.name).num("secs", secs);
            for &(key, v) in &self.extra {
                e = e.num(key, v);
            }
            e.emit();
        }
    }
}

/// Open a span of the given kind over a named instance (a file, a stage, a
/// method). Hold the guard for the duration of the work:
///
/// ```
/// {
///     let _span = metam_obs::span("prepare.profiles", "demo");
///     // ... work ...
/// } // closes here: histogram updated, line emitted if tracing
/// ```
pub fn span(kind: &'static str, name: impl Into<String>) -> Span {
    Span {
        kind,
        name: name.into(),
        start: Instant::now(),
        extra: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_into_the_registry() {
        {
            let mut s = span("test.span.unit", "one");
            s.field("rows", 42.0);
        }
        let snap = metrics::snapshot();
        let h = snap.histogram("span.test.span.unit").expect("recorded");
        assert!(h.count >= 1);
        assert!(h.min >= 0.0);
    }
}
