//! The JSONL event sink: where trace lines go, if anywhere.
//!
//! The sink is process-global and off by default; every emission site
//! guards with the single-atomic-load [`enabled`] check, so an
//! uninstrumented run pays one relaxed load per potential event and
//! nothing else. Install a sink explicitly ([`install_file`],
//! [`install_stderr`], [`install_writer`]) or from the environment
//! ([`init_from_env`] reads `METAM_TRACE=<path|stderr>`).
//!
//! Every line is one complete JSON object carrying at least:
//!
//! * `ts` — seconds since the first observability call in this process,
//! * `span` *or* `event` — the line's kind (a span closes with a `secs`
//!   duration; an event is a point occurrence),
//! * `name` — the instance within the kind (file name, stage, query kind).
//!
//! Lines are written atomically under a mutex, so concurrent scan workers
//! interleave whole events, never bytes.

use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::json;

static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Seconds since the first observability call in this process (the `ts`
/// field of every trace line).
pub fn now_secs() -> f64 {
    epoch().elapsed().as_secs_f64()
}

/// `true` when a trace sink is installed. The hot-path guard: emission
/// sites check this before building an event.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install an arbitrary writer as the trace sink (tests, in-memory
/// buffers, sockets).
pub fn install_writer(writer: Box<dyn Write + Send>) {
    let _ = epoch(); // pin ts=0 to installation at the latest
    *sink().lock().unwrap_or_else(PoisonError::into_inner) = Some(writer);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Install a line-buffered file sink at `path` (truncates).
pub fn install_file(path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = File::create(path)?;
    install_writer(Box::new(file));
    Ok(())
}

/// Install a sink that writes trace lines to stderr.
pub fn install_stderr() {
    install_writer(Box::new(std::io::stderr()));
}

/// Remove the sink (flushes first). Subsequent events are dropped at the
/// [`enabled`] guard.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut guard = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(w) = guard.as_mut() {
        let _ = w.flush();
    }
    *guard = None;
}

/// Install a sink from `METAM_TRACE`: unset/empty → disabled, `stderr` →
/// stderr, anything else → a file path. Returns whether a sink was
/// installed; a path that cannot be created reports the error on stderr
/// and leaves tracing off (observability must never fail the run).
pub fn init_from_env() -> bool {
    match std::env::var("METAM_TRACE") {
        Ok(v) if v == "stderr" => {
            install_stderr();
            true
        }
        Ok(v) if !v.trim().is_empty() => match install_file(&v) {
            Ok(()) => true,
            Err(e) => {
                eprintln!("warning: METAM_TRACE={v}: {e}; tracing disabled");
                false
            }
        },
        _ => false,
    }
}

/// Flush the sink (file sinks buffer in the OS; tests and CLI exits call
/// this to make the trace readable immediately).
pub fn flush() {
    if !enabled() {
        return;
    }
    if let Some(w) = sink()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .as_mut()
    {
        let _ = w.flush();
    }
}

fn write_line(line: &str) {
    let mut guard = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(w) = guard.as_mut() {
        let _ = writeln!(w, "{line}");
    }
}

/// Builder for one trace line. Constructing one stamps `ts` and the
/// kind/name header; chain typed fields, then [`emit`](Event::emit):
///
/// ```
/// if metam_obs::enabled() {
///     metam_obs::Event::event("query", "sequential")
///         .int("queries", 3)
///         .num("utility", 0.71)
///         .emit();
/// }
/// ```
#[derive(Debug)]
pub struct Event {
    buf: String,
}

impl Event {
    fn header(kind_key: &str, kind: &str, name: &str) -> Event {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"ts\":");
        json::write_f64(&mut buf, now_secs());
        buf.push_str(",\"");
        buf.push_str(kind_key);
        buf.push_str("\":");
        json::write_string(&mut buf, kind);
        buf.push_str(",\"name\":");
        json::write_string(&mut buf, name);
        Event { buf }
    }

    /// A point event line: `{"ts":..,"event":<kind>,"name":<name>,...}`.
    #[allow(clippy::self_named_constructors)] // deliberate symmetry with `Event::span`
    pub fn event(kind: &str, name: &str) -> Event {
        Event::header("event", kind, name)
    }

    /// A closed-span line: `{"ts":..,"span":<kind>,"name":<name>,...}`.
    pub fn span(kind: &str, name: &str) -> Event {
        Event::header("span", kind, name)
    }

    /// Add a float field.
    pub fn num(mut self, key: &str, v: f64) -> Event {
        self.buf.push(',');
        json::write_string(&mut self.buf, key);
        self.buf.push(':');
        json::write_f64(&mut self.buf, v);
        self
    }

    /// Add an integer field. `usize::MAX` encodes as `null` (the
    /// workspace-wide convention for "unbounded").
    pub fn int(mut self, key: &str, v: usize) -> Event {
        self.buf.push(',');
        json::write_string(&mut self.buf, key);
        self.buf.push(':');
        if v == usize::MAX {
            self.buf.push_str("null");
        } else {
            self.buf.push_str(&v.to_string());
        }
        self
    }

    /// Add a string field.
    pub fn str(mut self, key: &str, v: &str) -> Event {
        self.buf.push(',');
        json::write_string(&mut self.buf, key);
        self.buf.push(':');
        json::write_string(&mut self.buf, v);
        self
    }

    /// Add an array-of-integers field.
    pub fn ints(mut self, key: &str, vs: &[usize]) -> Event {
        self.buf.push(',');
        json::write_string(&mut self.buf, key);
        self.buf.push_str(":[");
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    /// Close the object and write the line (dropped when no sink is
    /// installed).
    pub fn emit(mut self) {
        if !enabled() {
            return;
        }
        self.buf.push('}');
        write_line(&self.buf);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! A shareable in-memory sink for tests.

    use std::io::Write;
    use std::sync::{Arc, Mutex, PoisonError};

    /// `Write` into an `Arc<Mutex<Vec<u8>>>` the test keeps a clone of.
    #[derive(Debug, Clone, Default)]
    pub struct SharedBuf(pub Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        /// The captured bytes as a string.
        pub fn contents(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap_or_else(PoisonError::into_inner))
                .into_owned()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::SharedBuf;
    use super::*;
    use crate::json::{parse, Value};
    use std::sync::Mutex as StdMutex;

    /// The sink is process-global; serialize tests that install one.
    static SINK_TESTS: StdMutex<()> = StdMutex::new(());

    #[test]
    fn events_are_valid_jsonl_with_required_fields() {
        let _guard = SINK_TESTS.lock().unwrap_or_else(PoisonError::into_inner);
        let buf = SharedBuf::default();
        install_writer(Box::new(buf.clone()));
        Event::event("query", "sequential")
            .int("queries", 3)
            .int("remaining", usize::MAX)
            .num("utility", 0.5)
            .ints("set", &[1, 2])
            .str("note", "a\"b")
            .emit();
        Event::span("scan.profile", "trips.csv")
            .num("secs", 0.25)
            .emit();
        disable();

        let text = buf.contents();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = parse(line).expect("every line parses");
            assert!(v.get("ts").and_then(Value::as_f64).is_some());
            assert!(v.get("name").and_then(Value::as_str).is_some());
            assert!(v.get("span").is_some() || v.get("event").is_some());
        }
        let first = parse(lines[0]).unwrap();
        assert_eq!(first.get("remaining"), Some(&Value::Null), "MAX → null");
    }

    #[test]
    fn disabled_sink_drops_events() {
        let _guard = SINK_TESTS.lock().unwrap_or_else(PoisonError::into_inner);
        disable();
        assert!(!enabled());
        // Must not panic or write anywhere.
        Event::event("query", "x").emit();
    }
}
