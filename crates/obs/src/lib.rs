#![forbid(unsafe_code)]
//! # metam-obs
//!
//! End-to-end telemetry for the Metam workspace: a lightweight,
//! dependency-free tracing + metrics facade. Three pieces:
//!
//! * **[`sink`]** — a process-global line-delimited JSON (JSONL) event
//!   sink, off by default, selected via `METAM_TRACE=<path|stderr>`
//!   ([`init_from_env`]) or installed explicitly. Every line carries
//!   `ts`, `span`/`event`, and `name`.
//! * **[`span`](mod@span)** — named wall-clock spans ([`span()`]): guard
//!   objects that time a region, feed the `span.<kind>` histogram, and
//!   emit a close line when tracing.
//! * **[`metrics`]** — a thread-safe registry of monotonic counters and
//!   histograms ([`counter_add`], [`record`]), snapshotted into the CLI's
//!   `--json` `metrics` section ([`metrics_snapshot`]).
//!
//! Instrumentation is **passive and cheap**: with no sink installed the
//! per-event cost is one relaxed atomic load, and nothing observable
//! changes about the instrumented computation — searches stay
//! bit-identical, traced or not. The emitting crates guard event
//! construction behind [`enabled`].
//!
//! [`json`] additionally provides a minimal parser used to *validate*
//! emitted trace files (schema tests, `metam trace-validate`).

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod sink;
pub mod span;

pub use metrics::{
    counter_add, record, reset as reset_metrics, snapshot as metrics_snapshot, HistSummary,
    MetricsSnapshot,
};
pub use sink::{
    disable, enabled, flush, init_from_env, install_file, install_stderr, install_writer, now_secs,
    Event,
};
pub use span::{span, Span};

/// Validate a JSONL trace: every non-empty line must parse as a JSON
/// object carrying a numeric `ts`, a string `name`, and a string `span` or
/// `event` kind. Returns `(span_lines, event_lines)` or the first
/// offending line's number and problem.
pub fn validate_trace(text: &str) -> Result<(usize, usize), String> {
    let mut spans = 0usize;
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = i + 1;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if v.get("ts").and_then(json::Value::as_f64).is_none() {
            return Err(format!("line {lineno}: missing numeric \"ts\""));
        }
        if v.get("name").and_then(json::Value::as_str).is_none() {
            return Err(format!("line {lineno}: missing string \"name\""));
        }
        let is_span = v.get("span").and_then(json::Value::as_str).is_some();
        let is_event = v.get("event").and_then(json::Value::as_str).is_some();
        match (is_span, is_event) {
            (true, false) => spans += 1,
            (false, true) => events += 1,
            _ => {
                return Err(format!(
                    "line {lineno}: needs exactly one of string \"span\" / \"event\""
                ))
            }
        }
    }
    Ok((spans, events))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_wellformed_and_rejects_broken_lines() {
        let good = "{\"ts\":0.1,\"span\":\"scan\",\"name\":\"lake\",\"secs\":1}\n\
                    \n\
                    {\"ts\":0.2,\"event\":\"query\",\"name\":\"sequential\"}\n";
        assert_eq!(validate_trace(good), Ok((1, 1)));
        assert!(
            validate_trace("{\"event\":\"x\",\"name\":\"y\"}").is_err(),
            "no ts"
        );
        assert!(
            validate_trace("{\"ts\":1,\"event\":\"x\"}").is_err(),
            "no name"
        );
        assert!(
            validate_trace("{\"ts\":1,\"name\":\"y\"}").is_err(),
            "neither span nor event"
        );
        assert!(
            validate_trace("{\"ts\":1,\"span\":\"a\",\"event\":\"b\",\"name\":\"y\"}").is_err(),
            "both span and event"
        );
        assert!(validate_trace("not json").is_err());
    }
}
