//! The process-wide metrics registry: monotonic counters and duration /
//! value histograms behind one mutex. Recording is cheap (one lock + one
//! `BTreeMap` probe) and is designed for *coarse* instrumentation points —
//! per file, per stage, per task query — never per row.
//!
//! The registry is global and cumulative for the process; callers that
//! want a scoped view (tests, long-lived daemons) snapshot before and
//! after, or [`reset`] between runs.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock, PoisonError};

/// Summary statistics of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl HistSummary {
    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

impl Default for HistSummary {
    fn default() -> Self {
        HistSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistSummary>,
}

fn registry() -> &'static Mutex<Registry> {
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Registry::default()))
}

fn lock() -> std::sync::MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// Add `n` to the named monotonic counter (created at 0 on first use).
pub fn counter_add(name: &str, n: u64) {
    if n == 0 {
        return;
    }
    let mut reg = lock();
    match reg.counters.get_mut(name) {
        Some(c) => *c += n,
        None => {
            reg.counters.insert(name.to_string(), n);
        }
    }
}

/// Record one sample into the named histogram.
pub fn record(name: &str, v: f64) {
    let mut reg = lock();
    match reg.histograms.get_mut(name) {
        Some(h) => h.record(v),
        None => {
            let mut h = HistSummary::default();
            h.record(v);
            reg.histograms.insert(name.to_string(), h);
        }
    }
}

/// Clear every counter and histogram (tests; daemons between requests).
pub fn reset() {
    let mut reg = lock();
    reg.counters.clear();
    reg.histograms.clear();
}

/// A point-in-time copy of the registry, name-sorted (deterministic JSON).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, summary)` for every histogram.
    pub histograms: Vec<(String, HistSummary)>,
}

impl MetricsSnapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Compact JSON object:
    /// `{"counters":{...},"histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,"mean":..}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(&mut out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_string(&mut out, name);
            out.push_str(&format!(":{{\"count\":{},\"sum\":", h.count));
            crate::json::write_f64(&mut out, h.sum);
            out.push_str(",\"min\":");
            crate::json::write_f64(&mut out, if h.count == 0 { 0.0 } else { h.min });
            out.push_str(",\"max\":");
            crate::json::write_f64(&mut out, if h.count == 0 { 0.0 } else { h.max });
            out.push_str(",\"mean\":");
            crate::json::write_f64(&mut out, h.mean());
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// Copy the registry out (name-sorted, deterministic).
pub fn snapshot() -> MetricsSnapshot {
    let reg = lock();
    MetricsSnapshot {
        counters: reg.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; use names unique to this test file
    // so concurrent test threads cannot interfere.

    #[test]
    fn counters_accumulate_and_snapshot() {
        counter_add("test.metrics.counter_a", 2);
        counter_add("test.metrics.counter_a", 3);
        counter_add("test.metrics.counter_zero", 0);
        let snap = snapshot();
        assert_eq!(snap.counter("test.metrics.counter_a"), Some(5));
        assert_eq!(
            snap.counter("test.metrics.counter_zero"),
            None,
            "0 adds create nothing"
        );
    }

    #[test]
    fn histograms_track_summary_stats() {
        record("test.metrics.hist", 1.0);
        record("test.metrics.hist", 3.0);
        let snap = snapshot();
        let h = snap.histogram("test.metrics.hist").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.mean(), 2.0);
    }

    #[test]
    fn snapshot_json_parses() {
        counter_add("test.metrics.json_counter", 1);
        record("test.metrics.json_hist", 0.5);
        let json = snapshot().to_json();
        let v = crate::json::parse(&json).expect("snapshot JSON must parse");
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").is_some());
    }
}
