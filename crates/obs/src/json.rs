//! Minimal JSON support for the trace layer: an escaping writer (every
//! event line is built by hand, no serializer dependency) and a small
//! recursive-descent parser used to *validate* emitted JSONL — by the
//! schema tests and the `metam trace-validate` CLI command.

use std::collections::BTreeMap;

/// Append a JSON string literal (quoted, escaped) to `out`.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number (finite floats render plainly; NaN/∞ become null,
/// matching serde_json's lossy default).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (key order is not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse one complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not emitted by this crate's
                        // writer; map lone surrogates to the replacement
                        // character rather than failing validation.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes_and_parser_roundtrips() {
        let mut out = String::new();
        write_string(&mut out, "a \"b\"\n\tc\\");
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed, Value::Str("a \"b\"\n\tc\\".to_string()));
    }

    #[test]
    fn parses_event_shaped_objects() {
        let v = parse(
            r#"{"ts":1.5,"event":"query","name":"sequential","set":[1,2],"ok":true,"x":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("event").and_then(Value::as_str), Some("query"));
        assert_eq!(
            v.get("set"),
            Some(&Value::Arr(vec![Value::Num(1.0), Value::Num(2.0)]))
        );
        assert_eq!(v.get("x"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("[1,,2]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn nonfinite_floats_write_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }
}
