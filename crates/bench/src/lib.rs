#![forbid(unsafe_code)]
//! Shared harness utilities for the per-figure experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's §VI: it prints the same rows/series the paper reports and dumps
//! them as JSON under `--out` so EXPERIMENTS.md numbers are reproducible.
//!
//! Usage of every binary: `cargo run --release -p metam-bench --bin figN --
//! [--seed N] [--quick] [--out DIR]`.

#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

use metam::core::engine::SearchInputs;
use metam::core::trace::{resample, TracePoint};
use metam::{
    run_method, run_method_with_observer, Method, Prepared, QueryEvent, RunObserver, RunResult,
    StopReason,
};
use serde::Serialize;

/// Command-line arguments shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Args {
    /// Master seed.
    pub seed: u64,
    /// Shrink scales for a fast smoke run.
    pub quick: bool,
    /// Output directory for JSON dumps.
    pub out: PathBuf,
}

impl Args {
    /// Parse from `std::env::args`. Unknown flags abort with usage.
    pub fn parse() -> Args {
        let mut args = Args {
            seed: 42,
            quick: false,
            out: PathBuf::from("results"),
        };
        let mut iter = std::env::args().skip(1);
        while let Some(flag) = iter.next() {
            match flag.as_str() {
                "--seed" => {
                    args.seed = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--quick" => args.quick = true,
                "--out" => {
                    args.out =
                        PathBuf::from(iter.next().unwrap_or_else(|| usage("--out needs a path")));
                }
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: <bin> [--seed N] [--quick] [--out DIR]");
    std::process::exit(2)
}

/// One plotted series: method label + (queries, utility) points.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x = queries, y = utility)` samples.
    pub points: Vec<(usize, f64)>,
}

/// One figure panel (e.g. Fig. 3a).
#[derive(Debug, Clone, Serialize)]
pub struct Panel {
    /// Panel id, e.g. `fig3a`.
    pub id: String,
    /// Panel title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Panel {
    /// New empty panel with the standard axes.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Panel {
        Panel {
            id: id.into(),
            title: title.into(),
            x_label: "queries".into(),
            y_label: "utility".into(),
            series: Vec::new(),
        }
    }

    /// Pretty-print the panel as an aligned text table.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.id, self.title);
        if self.series.is_empty() {
            println!("(no series)");
            return;
        }
        print!("{:>10}", self.x_label);
        for s in &self.series {
            print!("{:>12}", truncate(&s.label, 12));
        }
        println!();
        let grid: Vec<usize> = self.series[0].points.iter().map(|p| p.0).collect();
        for (row, &x) in grid.iter().enumerate() {
            print!("{x:>10}");
            for s in &self.series {
                match s.points.get(row) {
                    Some(&(_, y)) => print!("{y:>12.3}"),
                    None => print!("{:>12}", "-"),
                }
            }
            println!();
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s[..n].to_string()
    }
}

/// A tabular report (Tables I/II style).
#[derive(Debug, Clone, Serialize)]
pub struct TableReport {
    /// Table id, e.g. `table2`.
    pub id: String,
    /// Title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
}

impl TableReport {
    /// New empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: Vec<&str>) -> TableReport {
        TableReport {
            id: id.into(),
            title: title.into(),
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Pretty-print.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.id, self.title);
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.get(i).map_or(0, String::len))
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
                    + 2
            })
            .collect();
        for (h, w) in self.headers.iter().zip(&widths) {
            print!("{h:>w$}", w = *w);
        }
        println!();
        for row in &self.rows {
            for (cell, w) in row.iter().zip(&widths) {
                print!("{cell:>w$}", w = *w);
            }
            println!();
        }
    }
}

/// Dump any serializable artifact as `out/<name>.json`.
pub fn save_json<T: Serialize>(out: &PathBuf, name: &str, value: &T) {
    if fs::create_dir_all(out).is_err() {
        eprintln!("warning: cannot create {out:?}; skipping JSON dump");
        return;
    }
    let path = out.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {path:?}: {e}");
            } else {
                println!("saved {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialization failed: {e}"),
    }
}

/// An evenly spaced query grid `0..=budget` with ~`points` samples.
pub fn query_grid(budget: usize, points: usize) -> Vec<usize> {
    let points = points.max(2);
    let step = (budget / (points - 1)).max(1);
    let mut grid: Vec<usize> = (0..points).map(|i| i * step).collect();
    if *grid.last().unwrap_or(&0) < budget {
        grid.push(budget);
    }
    grid.truncate(points + 1);
    grid
}

/// A [`RunObserver`] that rebuilds the utility-vs-queries trajectory from
/// the per-query event stream — one point per counted task query — plus
/// the stop reason. Observation is passive, so the recorded points are
/// bit-identical to the engine's own trace.
#[derive(Debug, Default)]
pub struct TrajectoryRecorder {
    /// `(queries, best utility so far)` after every counted query.
    pub points: Vec<TracePoint>,
    /// Why the search stopped, once it has.
    pub stop_reason: Option<StopReason>,
}

impl RunObserver for TrajectoryRecorder {
    fn on_query(&mut self, event: &QueryEvent<'_>) {
        self.points.push(TracePoint {
            queries: event.query,
            utility: event.best_utility,
        });
    }

    fn on_finish(&mut self, stop_reason: StopReason) {
        self.stop_reason = Some(stop_reason);
    }
}

/// Run every method on the prepared scenario and resample each per-query
/// trajectory on the grid — the engine behind every utility-vs-queries
/// panel. Trajectories come from the observer event stream
/// ([`TrajectoryRecorder`]), not a re-run.
pub fn run_methods(
    prepared: &Prepared,
    methods: &[Method],
    theta: Option<f64>,
    budget: usize,
    grid: &[usize],
) -> Vec<Series> {
    methods
        .iter()
        .map(|m| {
            let mut recorder = TrajectoryRecorder::default();
            let r = run_method_with_observer(m, &prepared.inputs(), theta, budget, &mut recorder);
            Series {
                label: r.method.clone(),
                points: resample(&recorder.points, grid),
            }
        })
        .collect()
}

/// Run a single method and return the raw result (for query-count tables).
pub fn run_one(
    prepared: &Prepared,
    method: &Method,
    theta: Option<f64>,
    budget: usize,
) -> RunResult {
    run_method(method, &prepared.inputs(), theta, budget)
}

/// Borrow a `SearchInputs` with a synthetic task override — used by the
/// scalability experiments where the model fit would drown the measurement.
pub fn inputs_with_task<'a>(prepared: &'a Prepared, task: &'a dyn metam::Task) -> SearchInputs<'a> {
    SearchInputs {
        din: &prepared.din,
        target_column: prepared.target_column,
        candidates: &prepared.candidates,
        profiles: &prepared.profiles,
        profile_names: &prepared.profile_names,
        materializer: &prepared.materializer,
        task,
        threads: prepared.threads,
    }
}

/// The standard method lineup of Fig. 3 (iARDA appended only for ML tasks,
/// as in the paper).
pub fn standard_methods(seed: u64, with_iarda: Option<bool>) -> Vec<Method> {
    let mut methods = vec![
        Method::Metam(metam::MetamConfig {
            seed,
            ..Default::default()
        }),
        Method::Mw { seed },
        Method::Overlap,
        Method::Uniform { seed },
    ];
    if let Some(classification) = with_iarda {
        methods.push(Method::IArda {
            classification,
            seed,
        });
    }
    methods
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_even_and_capped() {
        let g = query_grid(100, 5);
        assert_eq!(g[0], 0);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(*g.last().unwrap() >= 100);
    }

    #[test]
    fn recorder_trajectory_matches_engine_trace() {
        let scenario = metam::datagen::repo::price_classification(11);
        let prepared = metam::Session::from_scenario(scenario)
            .seed(11)
            .prepare()
            .expect("scenario sessions are infallible");
        let mut recorder = TrajectoryRecorder::default();
        let observed = run_method_with_observer(
            &Method::Overlap,
            &prepared.inputs(),
            None,
            40,
            &mut recorder,
        );
        // One point per counted query, bit-identical to the engine's trace.
        assert_eq!(recorder.points, observed.trace);
        assert!(recorder.stop_reason.is_some());
        // Observation is passive: the unobserved run is identical.
        let plain = run_method(&Method::Overlap, &prepared.inputs(), None, 40);
        assert_eq!(plain.queries, observed.queries);
        assert_eq!(plain.selected, observed.selected);
        assert_eq!(plain.utility, observed.utility);
    }

    #[test]
    fn table_report_rows_align() {
        let mut t = TableReport::new("t", "test", vec!["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        t.print();
    }
}

pub mod synthetic;
