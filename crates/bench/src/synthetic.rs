//! Synthetic large-scale fixtures for the scalability experiments
//! (Fig. 6 and the criterion benches).
//!
//! Real model fits would drown the framework costs being measured, so
//! these fixtures use a cheap [`LinearSyntheticTask`] and candidates that
//! all materialize against one tiny repository table. Profile vectors are
//! drawn from a mixture of tight blobs — matching the paper's observation
//! that real candidates cluster well (|C| ≪ n).

use std::sync::Arc;

use metam::core::task::LinearSyntheticTask;
use metam::discovery::{Candidate, JoinPath, Materializer};
use metam::Prepared;
use metam_table::{Column, Table};

fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    z as f64 / u64::MAX as f64
}

/// Build a fixture with `n_candidates` candidates, `n_profiles` profile
/// dimensions and `n_blobs` profile clusters, bundled as the same unified
/// [`Prepared`] struct the real pipeline produces. A small fraction of
/// candidates (1 in 499) is useful to the synthetic task.
pub fn scaled_fixture(
    n_candidates: usize,
    n_profiles: usize,
    n_blobs: usize,
    seed: u64,
) -> Prepared {
    let rows = 16;
    let din = Table::from_columns(
        "din",
        vec![Column::from_strings(
            Some("key".into()),
            (0..rows).map(|i| Some(format!("k{i}"))).collect(),
        )],
    )
    .expect("aligned"); // metam-analyze: allow(panic-in-lib): fixture columns share the fixed row count
    let ext = Table::from_columns(
        "ext",
        vec![
            Column::from_strings(
                Some("key".into()),
                (0..rows).map(|i| Some(format!("k{i}"))).collect(),
            ),
            Column::from_floats(
                Some("v".into()),
                (0..rows).map(|i| Some(i as f64)).collect(),
            ),
        ],
    )
    .expect("aligned"); // metam-analyze: allow(panic-in-lib): fixture columns share the fixed row count
    let tables = vec![Arc::new(ext)];

    let mut state = seed ^ 0xF16;
    // Blob centers in [0,1]^l.
    let centers: Vec<Vec<f64>> = (0..n_blobs.max(1))
        .map(|_| (0..n_profiles).map(|_| splitmix(&mut state)).collect())
        .collect();
    let mut candidates = Vec::with_capacity(n_candidates);
    let mut profiles = Vec::with_capacity(n_candidates);
    let mut weights = vec![0.0; n_candidates];
    for id in 0..n_candidates {
        candidates.push(Candidate {
            id,
            path: JoinPath::single(0, 0, 0),
            value_column: 1,
            name: format!("cand_{id}"),
            source_table: "ext".into(),
            column_name: "v".into(),
            source: String::new(),
            discovered_containment: splitmix(&mut state),
        });
        let c = &centers[id % centers.len()];
        profiles.push(
            c.iter()
                .map(|&v| (v + 0.02 * (splitmix(&mut state) - 0.5)).clamp(0.0, 1.0))
                .collect(),
        );
        if id % 499 == 0 {
            weights[id] = 0.02;
        }
    }
    let task = LinearSyntheticTask { base: 0.2, weights };
    let profile_names = (0..n_profiles).map(|i| format!("p{i}")).collect();
    Prepared {
        din,
        target_column: None,
        candidates,
        profiles,
        profile_names,
        materializer: Materializer::new(tables),
        task: Box::new(task),
        relevance: None,
        threads: 1,
    }
}

/// Run one method for a fixed query budget and return wall-clock seconds.
pub fn time_method(fixture: &Prepared, method: &metam::Method, budget: usize) -> f64 {
    let start = std::time::Instant::now();
    let r = metam::run_method(method, &fixture.inputs(), None, budget);
    let elapsed = start.elapsed().as_secs_f64();
    // Touch the result so the run cannot be optimized away.
    assert!(r.utility >= 0.0);
    elapsed
}

/// Guard used by tests: synthetic tasks must respond to the planted useful
/// candidates.
pub fn sanity_check(fixture: &Prepared) -> bool {
    let mut t = fixture.din.clone();
    let col = fixture
        .materializer
        .materialize(&fixture.din, &fixture.candidates[0])
        .expect("materializes"); // metam-analyze: allow(panic-in-lib): bench fixture plants candidate 0 as materializable
    t.add_column((*col).clone()).expect("row counts match"); // metam-analyze: allow(panic-in-lib): materialized column matches din rows by construction
    fixture.task.utility(&t) > fixture.task.utility(&fixture.din)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_shapes() {
        let f = scaled_fixture(1000, 5, 10, 1);
        assert_eq!(f.candidates.len(), 1000);
        assert_eq!(f.profiles.len(), 1000);
        assert_eq!(f.profiles[0].len(), 5);
        assert!(sanity_check(&f));
    }

    #[test]
    fn blobby_profiles_cluster_small() {
        let f = scaled_fixture(5000, 5, 12, 2);
        let clustering = metam::core::cluster::cluster_partition(&f.profiles, 0.05, 0);
        assert!(
            clustering.len() <= 24,
            "expected ~12 blobs, got {}",
            clustering.len()
        );
    }
}
