//! Figure 8: number of queries needed to identify the single planted
//! ground-truth augmentation while sweeping (a) irrelevant and
//! (b) erroneous distractor augmentations.
//!
//! "Found" = reaching 70 % of the ground-truth augmentation's utility
//! lift, probed with a separate engine so the probe doesn't count.

use std::collections::BTreeSet;

use metam::core::engine::QueryEngine;
use metam::datagen::supervised::{build_supervised, SupervisedConfig};
use metam::{Metam, MetamConfig, StopReason};
use metam_bench::{save_json, Args, Panel, Series};

/// Queries Metam needs to reach the 70 % ground-truth lift.
fn queries_to_ground_truth(scenario: metam::datagen::Scenario, seed: u64, budget: usize) -> usize {
    let prepared = metam::Session::from_scenario(scenario)
        .seed(seed)
        .prepare()
        .expect("prepare");
    let relevance = prepared.relevance.clone().expect("scenarios carry truth");
    let gt = relevance
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .expect("one planted candidate");

    // Probe the target utility (separate engine; not billed).
    let inputs = prepared.inputs();
    let mut probe = QueryEngine::new(&inputs, usize::MAX);
    let base = probe.base_utility().expect("unbounded budget");
    let gt_u = probe
        .utility_of(&BTreeSet::from([gt]))
        .expect("unbounded budget");
    let theta = base + 0.7 * (gt_u - base);

    // Relaxed mode (τ = 1, no minimality pass): accept the first improving
    // augmentation — the cleanest proxy for "queries until the ground truth
    // is identified".
    let result = Metam::new(MetamConfig {
        theta: Some(theta),
        max_queries: budget,
        tau: Some(1),
        minimality: false,
        seed,
        ..Default::default()
    })
    .run(&prepared.inputs());
    if result.stop_reason == StopReason::ThetaReached {
        result.queries
    } else {
        budget
    }
}

fn main() {
    let args = Args::parse();
    let budget = if args.quick { 150 } else { 400 };
    // Distractor *candidate* counts (each distractor table yields ~3
    // candidates; the paper sweeps up to 100K — we sweep a laptop-scale
    // version with the same shape).
    let counts: Vec<usize> = if args.quick {
        vec![0, 60, 300]
    } else {
        vec![0, 300, 900, 1800]
    };

    let base_cfg = SupervisedConfig {
        seed: args.seed,
        n_rows: 300,
        n_informative: 1,
        n_duplicates: 0,
        n_irrelevant_tables: 0,
        n_erroneous_tables: 0,
        classification: true,
        name: "fig8".to_string(),
        ..Default::default()
    };

    // (a) fixed erroneous (≈100 candidates), varying irrelevant.
    let mut panel_a = Panel::new("fig8a", "(a) queries to ground truth vs #irrelevant");
    panel_a.x_label = "irrelevant".into();
    panel_a.y_label = "queries".into();
    let mut points = Vec::new();
    for &count in &counts {
        let cfg = SupervisedConfig {
            n_irrelevant_tables: count / 3,
            n_erroneous_tables: 33,
            name: format!("fig8a_{count}"),
            ..base_cfg.clone()
        };
        let q = queries_to_ground_truth(build_supervised(&cfg), args.seed, budget);
        eprintln!("[fig8a] irrelevant={count}: {q} queries");
        points.push((count, q as f64));
    }
    panel_a.series.push(Series {
        label: "Metam".into(),
        points,
    });
    panel_a.print();

    // (b) fixed irrelevant, varying erroneous.
    let mut panel_b = Panel::new("fig8b", "(b) queries to ground truth vs #erroneous");
    panel_b.x_label = "erroneous".into();
    panel_b.y_label = "queries".into();
    let mut points = Vec::new();
    for &count in &counts {
        let cfg = SupervisedConfig {
            n_irrelevant_tables: 33,
            n_erroneous_tables: count, // one candidate per erroneous table
            name: format!("fig8b_{count}"),
            ..base_cfg.clone()
        };
        let q = queries_to_ground_truth(build_supervised(&cfg), args.seed, budget);
        eprintln!("[fig8b] erroneous={count}: {q} queries");
        points.push((count, q as f64));
    }
    panel_b.series.push(Series {
        label: "Metam".into(),
        points,
    });
    panel_b.print();

    save_json(&args.out, "fig8", &vec![panel_a, panel_b]);
}
