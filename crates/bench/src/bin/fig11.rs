//! Figure 11: ablations. (a) cluster radius ε ∈ {0.03, 0.05, 0.07};
//! (b) Metam vs its variants Nc (no clustering), Eq (no Thompson
//! sampling) and NcEq (neither).

use metam::{MetamConfig, Method};
use metam_bench::{query_grid, run_methods, save_json, Args, Panel};

fn main() {
    let args = Args::parse();
    let scale = if args.quick { 8 } else { 1 };
    let budget = 500 / scale;
    let grid = query_grid(budget, 12);
    let mut reports = Vec::new();

    let scenario = metam::datagen::repo::price_classification(args.seed);
    let prepared = metam::Session::from_scenario(scenario)
        .seed(args.seed)
        .prepare()
        .expect("prepare");
    eprintln!("[fig11] {} candidates", prepared.candidates.len());

    // (a) ε sweep.
    let mut panel_a = Panel::new("fig11a", "(a) varying cluster radius ε");
    for &eps in &[0.03f64, 0.05, 0.07] {
        let method = Method::Metam(MetamConfig {
            epsilon: eps,
            seed: args.seed,
            ..Default::default()
        });
        let mut series = run_methods(&prepared, &[method], None, budget, &grid);
        if let Some(mut s) = series.pop() {
            s.label = format!("eps={eps}");
            panel_a.series.push(s);
        }
        eprintln!("[fig11a] eps={eps} done");
    }
    panel_a.print();
    reports.push(panel_a);

    // (b) variants.
    let mut panel_b = Panel::new("fig11b", "(b) Metam vs Nc / Eq / NcEq variants");
    let variants: Vec<(&str, bool, bool)> = vec![
        ("Metam", true, true),
        ("Nc", false, true),
        ("Eq", true, false),
        ("NcEq", false, false),
    ];
    for (label, use_clustering, use_thompson) in variants {
        let method = Method::Metam(MetamConfig {
            use_clustering,
            use_thompson,
            seed: args.seed,
            ..Default::default()
        });
        let mut series = run_methods(&prepared, &[method], None, budget, &grid);
        if let Some(mut s) = series.pop() {
            s.label = label.to_string();
            panel_b.series.push(s);
        }
        eprintln!("[fig11b] {label} done");
    }
    panel_b.print();
    reports.push(panel_b);

    save_json(&args.out, "fig11", &reports);
}
