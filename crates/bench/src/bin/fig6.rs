//! Figure 6: scalability — running time for a fixed 1000-query budget,
//! (a) varying the number of join paths / candidates, (b) varying the
//! number of data profiles.
//!
//! As in the paper, the framework cost is what's measured (candidate
//! scoring, clustering, ranking), so the task is a cheap synthetic one;
//! see DESIGN.md's experiment index.

use metam::{MetamConfig, Method};
use metam_bench::synthetic::{scaled_fixture, time_method};
use metam_bench::{save_json, Args, Panel, Series};

fn main() {
    let args = Args::parse();
    let budget = if args.quick { 200 } else { 1000 };
    let candidate_grid: Vec<usize> = if args.quick {
        vec![20_000, 60_000, 100_000]
    } else {
        vec![200_000, 400_000, 600_000, 800_000, 1_000_000]
    };
    let profile_grid: Vec<usize> = if args.quick {
        vec![10, 20, 40]
    } else {
        vec![20, 40, 60, 80, 100]
    };

    let methods: Vec<(&str, Method)> = vec![
        (
            "Metam",
            Method::Metam(MetamConfig {
                seed: args.seed,
                ..Default::default()
            }),
        ),
        ("MW", Method::Mw { seed: args.seed }),
        ("Overlap", Method::Overlap),
        ("Uniform", Method::Uniform { seed: args.seed }),
    ];

    // (a) time vs #candidates at 5 profiles.
    let mut panel_a = Panel::new("fig6a", "(a) runtime vs #join paths (fixed 5 profiles)");
    panel_a.x_label = "candidates".into();
    panel_a.y_label = "seconds".into();
    for (label, method) in &methods {
        let mut points = Vec::new();
        for &n in &candidate_grid {
            let fixture = scaled_fixture(n, 5, 24, args.seed);
            let secs = time_method(&fixture, method, budget);
            eprintln!("[fig6a] {label} n={n}: {secs:.2}s");
            points.push((n, secs));
        }
        panel_a.series.push(Series {
            label: label.to_string(),
            points,
        });
    }
    panel_a.print();

    // (b) time vs #profiles at a fixed candidate count.
    let n_fixed = if args.quick { 20_000 } else { 100_000 };
    let mut panel_b = Panel::new(
        "fig6b",
        format!("(b) runtime vs #profiles ({n_fixed} candidates)"),
    );
    panel_b.x_label = "profiles".into();
    panel_b.y_label = "seconds".into();
    for (label, method) in &methods {
        let mut points = Vec::new();
        for &l in &profile_grid {
            let fixture = scaled_fixture(n_fixed, l, 24, args.seed);
            let secs = time_method(&fixture, method, budget);
            eprintln!("[fig6b] {label} l={l}: {secs:.2}s");
            points.push((l, secs));
        }
        panel_b.series.push(Series {
            label: label.to_string(),
            points,
        });
    }
    panel_b.print();

    save_json(&args.out, "fig6", &vec![panel_a, panel_b]);
}
