//! Table I: characteristics of the data repositories.
//!
//! The paper indexes Open Data (69K tables, 119 GB) and Kaggle (1950
//! tables); we generate scaled-down repositories with the same *structure*
//! (varied widths, shared key domains, missing headers/values) and report
//! the same statistics columns.

use std::sync::Arc;

use metam::discovery::DiscoveryIndex;
use metam_bench::{save_json, Args, TableReport};

fn main() {
    let args = Args::parse();
    let (n_open, n_kaggle) = if args.quick { (200, 50) } else { (2000, 500) };

    let mut table = TableReport::new(
        "table1",
        "Characteristics of datasets (scaled synthetic repositories)",
        vec![
            "Dataset",
            "#Tables",
            "#Columns",
            "#Joinable Columns",
            "Size",
        ],
    );

    for (name, n, seed_off) in [("Open-Data", n_open, 0u64), ("Kaggle", n_kaggle, 1)] {
        let repo = metam::datagen::repo::random_repository(args.seed + seed_off, n, name);
        let index = DiscoveryIndex::build(repo.into_iter().map(Arc::new).collect());
        let stats = index.stats();
        table.push_row(vec![
            name.to_string(),
            stats.n_tables.to_string(),
            stats.n_columns.to_string(),
            stats.n_keyish.to_string(),
            format!("{:.1}M", stats.bytes as f64 / 1e6),
        ]);
    }
    table.print();
    println!("\n(paper: Open-Data 69K tables / 29.5M cols / 28.6M joinable / 119G;");
    println!("        Kaggle 1950 tables / 91231 cols / 6.7M joinable / 18G)");
    save_json(&args.out, "table1", &table);
}
