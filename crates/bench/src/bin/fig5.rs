//! Figure 5: semi-synthetic evaluation — a synthesized target planted from
//! five random augmentations, averaged over many instantiations (the paper
//! uses 100; `--quick` shrinks both instances and budgets).

use metam::core::trace::utility_at;
use metam::{run_method, Method};
use metam_bench::{query_grid, save_json, Args, Panel, Series};

fn averaged_panel(
    id: &str,
    title: &str,
    instances: u64,
    budget: usize,
    seed: u64,
    build: impl Fn(u64) -> metam::datagen::Scenario,
) -> Panel {
    let grid = query_grid(budget, 10);
    let method_names = ["Metam", "MW", "Overlap", "Uniform"];
    let mut sums: Vec<Vec<f64>> = vec![vec![0.0; grid.len()]; method_names.len()];

    for inst in 0..instances {
        let scenario = build(inst);
        let prepared = metam::Session::from_scenario(scenario)
            .seed(seed ^ inst)
            .prepare()
            .expect("prepare");
        let methods = [
            Method::Metam(metam::MetamConfig {
                seed: seed ^ inst,
                ..Default::default()
            }),
            Method::Mw { seed: seed ^ inst },
            Method::Overlap,
            Method::Uniform { seed: seed ^ inst },
        ];
        for (mi, m) in methods.iter().enumerate() {
            let r = run_method(m, &prepared.inputs(), None, budget);
            for (gi, &q) in grid.iter().enumerate() {
                sums[mi][gi] += utility_at(&r.trace, q);
            }
        }
        eprintln!("[{id}] instance {}/{instances} done", inst + 1);
    }

    let mut panel = Panel::new(id, title);
    for (mi, name) in method_names.iter().enumerate() {
        panel.series.push(Series {
            label: name.to_string(),
            points: grid
                .iter()
                .zip(&sums[mi])
                .map(|(&q, &s)| (q, s / instances as f64))
                .collect(),
        });
    }
    panel
}

fn main() {
    let args = Args::parse();
    let (instances, scale) = if args.quick { (2, 8) } else { (8, 4) };

    let mut reports = Vec::new();
    let p = averaged_panel(
        "fig5a",
        "(a) Classification (semi-synthetic avg)",
        instances,
        500 / scale,
        args.seed,
        metam::datagen::semisynthetic::semisynthetic_classification,
    );
    p.print();
    reports.push(p);

    let p = averaged_panel(
        "fig5b",
        "(b) Causality — regression outcome (semi-synthetic avg)",
        instances,
        500 / scale,
        args.seed,
        metam::datagen::semisynthetic::semisynthetic_regression,
    );
    p.print();
    reports.push(p);

    let seed = args.seed;
    let p = averaged_panel(
        "fig5c",
        "(c) What-if (semi-synthetic avg)",
        instances,
        1400 / scale,
        args.seed,
        move |inst| {
            metam::datagen::causal_scenario::build_causal(
                &metam::datagen::causal_scenario::CausalConfig {
                    seed: seed ^ (0xF15C + inst),
                    n_irrelevant_tables: 80,
                    n_erroneous_tables: 30,
                    n_confounder_tables: 25,
                    ..Default::default()
                },
            )
        },
    );
    p.print();
    reports.push(p);

    let p = averaged_panel(
        "fig5d",
        "(d) How-to (semi-synthetic avg)",
        instances,
        800 / scale,
        args.seed,
        move |inst| {
            metam::datagen::causal_scenario::build_causal(
                &metam::datagen::causal_scenario::CausalConfig {
                    seed: seed ^ (0x407F + inst),
                    kind: metam::datagen::causal_scenario::CausalKind::HowTo,
                    n_irrelevant_tables: 80,
                    n_erroneous_tables: 30,
                    n_confounder_tables: 25,
                    ..Default::default()
                },
            )
        },
    );
    p.print();
    reports.push(p);

    save_json(&args.out, "fig5", &reports);
}
