//! Figure 4: (a) classification with AutoML as the task implementation;
//! (b) unions — augmentation by adding records.

use metam_bench::{query_grid, run_methods, save_json, Args, Panel};
use metam_datagen::scenario::TaskSpec;

fn main() {
    let args = Args::parse();
    let scale = if args.quick { 8 } else { 1 };
    let mut reports = Vec::new();

    // (a) AutoML classification on the schools scenario.
    {
        let mut scenario = metam::datagen::repo::schools_classification(args.seed);
        if let TaskSpec::Classification { target } = &scenario.spec {
            scenario.spec = TaskSpec::AutoMlClassification {
                target: target.clone(),
            };
        }
        let prepared = metam::Session::from_scenario(scenario)
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        eprintln!("[fig4a] {} candidates", prepared.candidates.len());
        let budget = 500 / scale;
        let methods = metam_bench::standard_methods(args.seed, Some(true));
        let grid = query_grid(budget, 12);
        let series = run_methods(&prepared, &methods, None, budget, &grid);
        let mut panel = Panel::new("fig4a", "(a) AutoML classification — schools");
        panel.series = series;
        panel.print();
        reports.push(panel);
    }

    // (b) Unions: record-addition augmentations for NYC rent.
    {
        let scenario =
            metam::datagen::unions::build_unions(&metam::datagen::unions::UnionsConfig {
                seed: args.seed,
                ..Default::default()
            });
        let prepared = metam::Session::from_scenario(scenario)
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        eprintln!("[fig4b] {} union candidates", prepared.candidates.len());
        let budget = 200 / scale.min(4);
        let methods = metam_bench::standard_methods(args.seed, None);
        let grid = query_grid(budget, 10);
        let series = run_methods(&prepared, &methods, None, budget, &grid);
        let mut panel = Panel::new("fig4b", "(b) Unions — NYC rent (record addition)");
        panel.series = series;
        panel.print();
        reports.push(panel);
    }

    save_json(&args.out, "fig4", &reports);
}
