//! Figure 10: removing profiles. Sweeps (informative, uninformative)
//! profile counts: I:5 UI:5 → I:5 UI:2 → I:5 UI:0 → I:3 UI:0. Removing
//! noise helps; removing informative profiles costs queries.

use metam::profile::correlation::CorrelationProfile;
use metam::profile::embedding::EmbeddingProfile;
use metam::profile::metadata::MetadataProfile;
use metam::profile::mutual_info::MutualInfoProfile;
use metam::profile::overlap::OverlapProfile;
use metam::profile::synthetic::FixedProfile;
use metam::profile::ProfileSet;
use metam::{MetamConfig, Method};
use metam_bench::{query_grid, run_methods, save_json, Args, Panel};

/// Build a profile set with `informative ∈ {3, 5}` real profiles and
/// `uninformative` noise profiles.
fn profile_set(informative: usize, uninformative: usize, seed: u64) -> ProfileSet {
    let mut set = ProfileSet::new();
    set.push(Box::new(CorrelationProfile));
    set.push(Box::new(MutualInfoProfile::default()));
    set.push(Box::new(OverlapProfile));
    if informative >= 5 {
        set.push(Box::new(EmbeddingProfile));
        set.push(Box::new(MetadataProfile));
    }
    for u in 0..uninformative {
        set.push(Box::new(FixedProfile::uninformative(
            format!("noise_{u}"),
            100_000,
            seed ^ (u as u64 + 0x10),
        )));
    }
    set
}

fn main() {
    let args = Args::parse();
    let scale = if args.quick { 8 } else { 1 };
    let settings = [(5usize, 5usize), (5, 2), (5, 0), (3, 0)];
    let mut reports = Vec::new();

    let panels: Vec<(&str, &str, metam::datagen::Scenario, usize)> = vec![
        (
            "fig10a",
            "(a) Classification — removing profiles",
            metam::datagen::repo::price_classification(args.seed),
            500 / scale,
        ),
        (
            "fig10b",
            "(b) Regression — removing profiles",
            metam::datagen::repo::collisions_regression(args.seed),
            500 / scale,
        ),
    ];

    for (id, title, scenario, budget) in panels {
        let grid = query_grid(budget, 12);
        let mut panel = Panel::new(id, title);
        for &(i, ui) in &settings {
            let prepared = metam::Session::from_scenario(scenario.clone())
                .profiles(profile_set(i, ui, args.seed))
                .seed(args.seed)
                .prepare()
                .expect("prepare");
            let mut series = run_methods(
                &prepared,
                &[Method::Metam(MetamConfig {
                    seed: args.seed,
                    ..Default::default()
                })],
                None,
                budget,
                &grid,
            );
            if let Some(mut s) = series.pop() {
                s.label = format!("I:{i} UI:{ui}");
                panel.series.push(s);
            }
            eprintln!("[{id}] I:{i} UI:{ui} done");
        }
        panel.print();
        reports.push(panel);
    }
    save_json(&args.out, "fig10", &reports);
}
