//! Figure 9: Metam with a growing number of *uninformative* profiles
//! (UI ∈ {0, 2, 4, 8}) on top of the 5 informative defaults — the solution
//! quality should hold, at the cost of a few more queries.

use metam::profile::synthetic::FixedProfile;
use metam::profile::{default_profiles, ProfileSet};
use metam::{MetamConfig, Method};
use metam_bench::{query_grid, run_methods, save_json, Args, Panel};

fn profiles_with_noise(n_uninformative: usize, n_candidates_hint: usize, seed: u64) -> ProfileSet {
    let mut set = default_profiles();
    for u in 0..n_uninformative {
        set.push(Box::new(FixedProfile::uninformative(
            format!("noise_{u}"),
            n_candidates_hint,
            seed ^ (u as u64 + 1),
        )));
    }
    set
}

fn main() {
    let args = Args::parse();
    let scale = if args.quick { 8 } else { 1 };
    let mut reports = Vec::new();

    let panels: Vec<(&str, &str, metam::datagen::Scenario, usize)> = vec![
        (
            "fig9a",
            "(a) Classification with UI uninformative profiles",
            metam::datagen::repo::price_classification(args.seed),
            500 / scale,
        ),
        (
            "fig9b",
            "(b) Regression with UI uninformative profiles",
            metam::datagen::repo::collisions_regression(args.seed),
            500 / scale,
        ),
    ];

    for (id, title, scenario, budget) in panels {
        let grid = query_grid(budget, 12);
        let mut panel = Panel::new(id, title);
        for &ui in &[0usize, 2, 4, 8] {
            // Enough noise values for any candidate count we'll see.
            let prepared = metam::Session::from_scenario(scenario.clone())
                .profiles(profiles_with_noise(ui, 100_000, args.seed))
                .seed(args.seed)
                .prepare()
                .expect("prepare");
            let mut series = run_methods(
                &prepared,
                &[Method::Metam(MetamConfig {
                    seed: args.seed,
                    ..Default::default()
                })],
                None,
                budget,
                &grid,
            );
            if let Some(mut s) = series.pop() {
                s.label = format!("UI:{ui}");
                panel.series.push(s);
            }
            eprintln!("[{id}] UI={ui} done");
        }
        panel.print();
        reports.push(panel);
    }
    save_json(&args.out, "fig9", &reports);
}
