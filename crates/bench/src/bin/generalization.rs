//! §VI-A.4 generalization experiments: entity linking, fair
//! classification and clustering. Reports queries-to-target per method —
//! the paper's "Metam in 4 queries, MW in 10, others > 40" style numbers.

use metam::{run_method, MetamConfig, Method};
use metam_bench::{save_json, Args, TableReport};

fn row_for(prepared: &metam::Prepared, theta: f64, budget: usize, seed: u64) -> Vec<String> {
    let methods = [
        Method::Metam(MetamConfig {
            seed,
            ..Default::default()
        }),
        Method::Mw { seed },
        Method::Overlap,
        Method::Uniform { seed },
    ];
    methods
        .iter()
        .map(|m| {
            let r = run_method(m, &prepared.inputs(), Some(theta), budget);
            if r.utility >= theta {
                format!("{} q (u={:.2})", r.queries, r.utility)
            } else {
                format!(">{budget} q (u={:.2})", r.utility)
            }
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let budget = if args.quick { 60 } else { 200 };

    let mut table = TableReport::new(
        "generalization",
        "Queries to reach the target utility (θ per task)",
        vec!["Task", "Metam", "MW", "Overlap", "Uniform"],
    );

    // Entity linking: 1 useful column among dozens of joinable distractors.
    {
        let scenario =
            metam::datagen::linking::build_linking(&metam::datagen::linking::LinkingConfig {
                seed: args.seed,
                ..Default::default()
            });
        let prepared = metam::Session::from_scenario(scenario)
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        eprintln!(
            "[gen] entity linking: {} candidates",
            prepared.candidates.len()
        );
        let mut row = vec!["Entity linking (θ=0.95)".to_string()];
        row.extend(row_for(&prepared, 0.95, budget, args.seed));
        table.push_row(row);
    }

    // Fair classification: unfair features are filtered by the task.
    {
        let scenario =
            metam::datagen::fairness::build_fairness(&metam::datagen::fairness::FairnessConfig {
                seed: args.seed,
                ..Default::default()
            });
        let prepared = metam::Session::from_scenario(scenario)
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        eprintln!("[gen] fairness: {} candidates", prepared.candidates.len());
        // Target: a solid lift over the fair baseline.
        let base = {
            let inputs = prepared.inputs();
            let mut probe = metam::core::engine::QueryEngine::new(&inputs, usize::MAX);
            probe.base_utility().expect("unbounded")
        };
        let theta = (base + 0.13).min(0.99);
        let mut row = vec![format!("Fair classification (θ={theta:.2})")];
        row.extend(row_for(&prepared, theta, budget, args.seed));
        table.push_row(row);
    }

    // Clustering: 8 candidates, one useful (ONI).
    {
        let scenario = metam::datagen::clustering::build_clustering(
            &metam::datagen::clustering::ClusteringConfig {
                seed: args.seed,
                ..Default::default()
            },
        );
        let prepared = metam::Session::from_scenario(scenario)
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        eprintln!("[gen] clustering: {} candidates", prepared.candidates.len());
        let mut row = vec!["Clustering (θ=0.9)".to_string()];
        row.extend(row_for(&prepared, 0.9, budget.min(50), args.seed));
        table.push_row(row);
    }

    table.print();
    println!("\n(paper: linking Metam 4 / MW 10 / rest >40; fairness Metam <10 / rest >50;");
    println!("        clustering all ≈4 queries)");
    save_json(&args.out, "generalization", &table);
}
