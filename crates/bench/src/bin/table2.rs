//! Table II: utility achieved within ≤ 1000 queries across six datasets
//! (four causal tasks, two predictive-analytics tasks) for Metam, MW,
//! Overlap and Uniform.

use metam::{run_method, Method};
use metam_bench::{save_json, Args, TableReport};

fn main() {
    let args = Args::parse();
    let budget = if args.quick { 120 } else { 300 };

    let mut table = TableReport::new(
        "table2",
        format!("Utility within {budget} queries ((C) = causal task)"),
        vec!["Dataset", "Metam", "MW", "Overlap", "Uniform"],
    );

    let mut dump = Vec::new();
    for (name, scenario) in metam::datagen::repo::table2_scenarios(args.seed) {
        let prepared = metam::Session::from_scenario(scenario)
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        eprintln!("[table2] {name}: {} candidates", prepared.candidates.len());
        let methods = [
            Method::Metam(metam::MetamConfig {
                seed: args.seed,
                ..Default::default()
            }),
            Method::Mw { seed: args.seed },
            Method::Overlap,
            Method::Uniform { seed: args.seed },
        ];
        let mut row = vec![name.to_string()];
        for m in &methods {
            let r = run_method(m, &prepared.inputs(), None, budget);
            row.push(format!("{:.2}", r.utility));
            dump.push((name.to_string(), r.method.clone(), r.utility, r.queries));
        }
        table.push_row(row);
    }
    table.print();
    println!("\n(paper Table II: Metam 0.75–1.0, MW 0.20–0.50, Overlap 0.0–0.5, Uniform 0.1–0.5)");
    save_json(&args.out, "table2", &table);
    save_json(&args.out, "table2_raw", &dump);
}
