//! Figure 7: adding informative *task-specific* profiles (ARDA feature
//! importance [37]) accelerates Metam further; generic-profile Metam is
//! also plotted for the paper's "fewer queries with specialized profiles"
//! comparison.

use metam::profile::task_specific::TaskSpecificProfile;
use metam::profile::{default_profiles, ProfileSet};
use metam::{MetamConfig, Method};
use metam_bench::{query_grid, run_methods, save_json, Args, Panel, Series};

fn arda_profiles(classification: bool, seed: u64) -> ProfileSet {
    let mut set = default_profiles();
    set.push(Box::new(TaskSpecificProfile {
        classification,
        seed,
    }));
    set
}

fn main() {
    let args = Args::parse();
    let scale = if args.quick { 8 } else { 1 };
    let mut reports = Vec::new();

    let panels: Vec<(&str, &str, metam::datagen::Scenario, usize, bool)> = vec![
        (
            "fig7a",
            "(a) Classification with ARDA profiles",
            metam::datagen::repo::price_classification(args.seed),
            400 / scale,
            true,
        ),
        (
            "fig7b",
            "(b) Regression with ARDA profiles",
            metam::datagen::repo::collisions_regression(args.seed),
            300 / scale,
            false,
        ),
    ];

    for (id, title, scenario, budget, classification) in panels {
        let grid = query_grid(budget, 12);
        // With task-specific profiles.
        let prepared_arda = metam::Session::from_scenario(scenario.clone())
            .profiles(arda_profiles(classification, args.seed))
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        eprintln!("[{id}] {} candidates", prepared_arda.candidates.len());
        let methods = [
            Method::Metam(MetamConfig {
                seed: args.seed,
                ..Default::default()
            }),
            Method::Mw { seed: args.seed },
            Method::Overlap,
            Method::Uniform { seed: args.seed },
        ];
        let mut series = run_methods(&prepared_arda, &methods, None, budget, &grid);
        for s in &mut series {
            s.label = format!("{}+ARDA", s.label);
        }
        // Generic-profile Metam for contrast.
        let prepared_generic = metam::Session::from_scenario(scenario)
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        let generic = run_methods(
            &prepared_generic,
            &[Method::Metam(MetamConfig {
                seed: args.seed,
                ..Default::default()
            })],
            None,
            budget,
            &grid,
        );
        series.push(Series {
            label: "Metam(generic)".to_string(),
            points: generic
                .into_iter()
                .next()
                .map(|s| s.points)
                .unwrap_or_default(),
        });

        let mut panel = Panel::new(id, title);
        panel.series = series;
        panel.print();
        reports.push(panel);
    }
    save_json(&args.out, "fig7", &reports);
}
