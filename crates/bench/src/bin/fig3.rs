//! Figure 3: utility vs #queries for four tasks (classification,
//! regression, what-if, how-to) — Metam vs MW / Overlap / Uniform, plus
//! iARDA on the supervised tasks.

use metam_bench::{query_grid, run_methods, save_json, Args, Panel};

fn main() {
    let args = Args::parse();
    let scale = if args.quick { 8 } else { 1 };

    let panels: Vec<(&str, &str, metam::datagen::Scenario, usize, Option<bool>)> = vec![
        (
            "fig3a",
            "(a) Classification — housing prices",
            metam::datagen::repo::price_classification(args.seed),
            600 / scale,
            Some(true),
        ),
        (
            "fig3b",
            "(b) Regression — NYC collisions",
            metam::datagen::repo::collisions_regression(args.seed),
            300 / scale,
            Some(false),
        ),
        (
            "fig3c",
            "(c) What-if — SAT scores",
            metam::datagen::repo::sat_whatif(args.seed),
            700 / scale,
            None,
        ),
        (
            "fig3d",
            "(d) How-to — SAT scores",
            metam::datagen::repo::sat_howto(args.seed),
            400 / scale,
            None,
        ),
    ];

    let mut reports = Vec::new();
    for (id, title, scenario, budget, iarda) in panels {
        let prepared = metam::Session::from_scenario(scenario)
            .seed(args.seed)
            .prepare()
            .expect("prepare");
        eprintln!("[{id}] {} candidates", prepared.candidates.len());
        let methods = metam_bench::standard_methods(args.seed, iarda);
        let grid = query_grid(budget, 12);
        let series = run_methods(&prepared, &methods, None, budget, &grid);
        let mut panel = Panel::new(id, title);
        panel.series = series;
        panel.print();
        reports.push(panel);
    }
    save_json(&args.out, "fig3", &reports);
}
