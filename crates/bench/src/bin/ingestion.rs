//! Lake ingestion benchmark: parallel scan vs sequential, shard rewrite
//! granularity, and `.mtc` columnar-cache loads vs CSV re-parsing.
//!
//! Generates a many-file CSV lake (500 files; 60 with `--quick`), then
//! measures and **asserts** the ingestion properties the lake layer
//! promises:
//!
//! 1. a cold parallel scan produces byte-identical catalog state to a
//!    sequential scan (and beats it on wall-clock when >1 core is up),
//! 2. a warm rescan is all cache hits and rewrites zero manifest shards,
//! 3. touching one file re-profiles one file and rewrites one shard,
//! 4. repository loads deserialize from the columnar cache, not CSV.
//!
//! `--quick` is the CI smoke mode (run by `ci.sh`): small lake, all
//! structural assertions, no timing assertions.

use std::path::{Path, PathBuf};
use std::time::Instant;

use metam::lake::{manifest, LakeCatalog, ScanOptions};
use metam_bench::{save_json, Args, TableReport};

/// Deterministic row data (tiny splitmix; no rand dependency needed).
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn generate_lake(dir: &Path, n_files: usize, n_rows: usize, seed: u64) {
    std::fs::create_dir_all(dir).expect("create lake dir");
    for f in 0..n_files {
        let mut csv = String::from("zip,value,count,note\n");
        for r in 0..n_rows {
            let h = mix(seed ^ ((f as u64) << 32) ^ r as u64);
            csv.push_str(&format!(
                "z{},{:.3},{},n{}\n",
                r,
                (h % 10_000) as f64 / 7.0,
                h % 97,
                h % 13,
            ));
        }
        std::fs::write(dir.join(format!("t{f:04}.csv")), csv).expect("write lake file");
    }
}

fn wipe_meta(dir: &Path) {
    let _ = std::fs::remove_dir_all(LakeCatalog::meta_dir(dir));
}

fn timed_scan(dir: &Path, options: &ScanOptions) -> (LakeCatalog, f64) {
    let start = Instant::now();
    let catalog = LakeCatalog::scan_with(dir, options).expect("scan");
    (catalog, start.elapsed().as_secs_f64())
}

fn main() {
    let args = Args::parse();
    let (n_files, n_rows) = if args.quick { (60, 40) } else { (500, 200) };
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let dir: PathBuf =
        std::env::temp_dir().join(format!("metam-ingestion-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "generating lake: {n_files} files x {n_rows} rows (seed {})",
        args.seed
    );
    generate_lake(&dir, n_files, n_rows, args.seed);

    // 1. Cold scans: sequential, then parallel, from identical blank state.
    let (seq_catalog, seq_secs) = timed_scan(&dir, &ScanOptions::sequential());
    assert_eq!(
        seq_catalog.cache_misses(),
        n_files,
        "cold scan profiles all"
    );
    let seq_entries = seq_catalog.entries().to_vec();
    drop(seq_catalog);
    wipe_meta(&dir);
    let (par_catalog, par_secs) = timed_scan(
        &dir,
        &ScanOptions {
            threads: Some(workers),
        },
    );
    assert_eq!(
        par_catalog.entries(),
        seq_entries.as_slice(),
        "parallel scan must be deterministic"
    );
    let speedup = seq_secs / par_secs.max(1e-9);
    println!(
        "cold scan: sequential {seq_secs:.3}s | parallel({workers}) {par_secs:.3}s | speedup {speedup:.2}x"
    );
    if !args.quick && workers > 1 {
        assert!(
            par_secs < seq_secs,
            "parallel cold scan must beat sequential on {workers} workers \
             (sequential {seq_secs:.3}s vs parallel {par_secs:.3}s)"
        );
    }

    // 2. Warm rescan: all hits, no shard rewritten.
    let (warm, warm_secs) = timed_scan(&dir, &ScanOptions::default());
    assert_eq!(warm.cache_hits(), n_files, "warm rescan is all cache hits");
    assert_eq!(warm.cache_misses(), 0);
    assert_eq!(warm.shards_written(), 0, "unchanged lake rewrites nothing");
    println!(
        "warm rescan: {warm_secs:.3}s, {}/{} hits, {} shard(s) rewritten",
        warm.cache_hits(),
        n_files,
        warm.shards_written()
    );

    // 3. Touch one file: one re-profile, one shard rewritten.
    let touched = dir.join("t0000.csv");
    let mut text = std::fs::read_to_string(&touched).expect("read");
    text.push_str("z9999,1.0,1,extra\n");
    std::fs::write(&touched, text).expect("touch");
    let (after_touch, _) = timed_scan(&dir, &ScanOptions::default());
    assert_eq!(after_touch.cache_misses(), 1, "only the touched file");
    assert_eq!(after_touch.cache_hits(), n_files - 1);
    assert_eq!(
        after_touch.shards_written(),
        1,
        "touching one file rewrites exactly its shard (of {})",
        manifest::SHARD_COUNT
    );

    // 4. Repository loads: CSV re-parse (cache wiped) vs `.mtc` columns.
    let _ = std::fs::remove_dir_all(metam::lake::cache::cache_dir(&dir));
    let counters = after_touch.load_counters();
    let start = Instant::now();
    let from_csv = after_touch.load_all_except(&[]).expect("load via CSV");
    let csv_secs = start.elapsed().as_secs_f64();
    assert_eq!(counters.misses(), n_files, "wiped cache forces CSV parsing");
    // That pass healed the cache; the next load is columnar end to end.
    let start = Instant::now();
    let from_mtc = after_touch.load_all_except(&[]).expect("load via .mtc");
    let mtc_secs = start.elapsed().as_secs_f64();
    assert_eq!(counters.hits(), n_files, "healed cache serves every load");
    assert_eq!(from_mtc.len(), from_csv.len());
    for (a, b) in from_mtc.iter().zip(&from_csv) {
        assert_eq!(a.as_ref(), b.as_ref(), "cache must be value-identical");
    }
    println!(
        "load {} tables: csv {csv_secs:.3}s | .mtc {mtc_secs:.3}s | speedup {:.2}x",
        n_files,
        csv_secs / mtc_secs.max(1e-9)
    );

    let mut table = TableReport::new(
        "ingestion",
        format!("Lake ingestion on {n_files} files ({workers} worker(s))"),
        vec!["phase", "seconds"],
    );
    for (phase, secs) in [
        ("cold scan, sequential", seq_secs),
        ("cold scan, parallel", par_secs),
        ("warm rescan (all hits)", warm_secs),
        ("load all via CSV", csv_secs),
        ("load all via .mtc", mtc_secs),
    ] {
        table.push_row(vec![phase.to_string(), format!("{secs:.4}")]);
    }
    table.print();
    save_json(&args.out, "ingestion", &table);

    let _ = std::fs::remove_dir_all(&dir);
    println!("ingestion bench OK");
}
