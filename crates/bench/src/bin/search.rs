//! Search parallelism benchmark: batched query execution over the shared
//! worker pool vs the sequential path.
//!
//! Builds a synthetic prepared fixture whose task carries a deliberate
//! per-evaluation cost (so framework time does not drown the measurement),
//! then runs the same searches at 1 worker and at the machine's available
//! parallelism, **asserting** the properties the engine promises:
//!
//! 1. the thread count never changes results — selected set, utility bits,
//!    query spend and trace are identical at every worker count,
//! 2. the batched path beats the sequential one on wall-clock when more
//!    than one core is up (skipped under `--quick`, the CI smoke mode run
//!    by `ci.sh`, which keeps only the structural assertions).

use std::hint::black_box;
use std::time::Instant;

use metam::core::task::LinearSyntheticTask;
use metam::{run_method, Method, Prepared, RunResult, Task};
use metam_bench::synthetic::scaled_fixture;
use metam_bench::{inputs_with_task, save_json, Args, TableReport};
use metam_table::Table;

/// A deterministic task with a tunable per-evaluation cost: spins a fixed
/// amount of arithmetic (kept live via `black_box`), then delegates to the
/// cheap linear task. Utility is bit-identical to the inner task's.
struct SlowTask {
    inner: LinearSyntheticTask,
    spin: u64,
}

impl Task for SlowTask {
    fn name(&self) -> &str {
        "slow-linear-synthetic"
    }

    fn utility(&self, table: &Table) -> f64 {
        let mut acc = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..self.spin {
            acc = acc.rotate_left(7) ^ i.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        }
        black_box(acc);
        self.inner.utility(table)
    }
}

fn timed_run(
    fixture: &mut Prepared,
    task: &SlowTask,
    method: &Method,
    budget: usize,
    threads: usize,
) -> (RunResult, f64) {
    fixture.threads = threads;
    let inputs = inputs_with_task(fixture, task);
    let start = Instant::now();
    let result = run_method(method, &inputs, None, budget);
    (result, start.elapsed().as_secs_f64())
}

fn assert_identical(seq: &RunResult, par: &RunResult, threads: usize) {
    assert_eq!(seq.selected, par.selected, "selected @ {threads} threads");
    assert_eq!(
        seq.utility.to_bits(),
        par.utility.to_bits(),
        "utility bits @ {threads} threads"
    );
    assert_eq!(seq.queries, par.queries, "query spend @ {threads} threads");
    assert_eq!(seq.trace, par.trace, "trace @ {threads} threads");
}

fn main() {
    let args = Args::parse();
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (n_candidates, budget, spin) = if args.quick {
        (200, 40, 20_000)
    } else {
        (600, 300, 400_000)
    };

    println!(
        "search fixture: {n_candidates} candidates, budget {budget}, \
         spin {spin} (seed {}), {workers} workers",
        args.seed
    );
    let mut fixture = scaled_fixture(n_candidates, 6, 12, args.seed);
    let task = SlowTask {
        inner: LinearSyntheticTask {
            base: 0.2,
            weights: (0..n_candidates)
                .map(|id| if id % 97 == 0 { 0.015 } else { 0.0 })
                .collect(),
        },
        spin,
    };

    // Exercise the batched path even on a single-core machine (the
    // timing assertion below still requires real parallelism).
    let par_threads = workers.max(2);
    let mut table = TableReport::new(
        "search-parallel",
        "batched search: sequential vs pooled wall-clock",
        vec!["method", "seq secs", "par secs", "speedup", "queries"],
    );
    for method in [
        Method::Uniform { seed: args.seed },
        Method::Metam(metam::MetamConfig {
            seed: args.seed,
            ..Default::default()
        }),
    ] {
        let (seq, seq_secs) = timed_run(&mut fixture, &task, &method, budget, 1);
        let (par, par_secs) = timed_run(&mut fixture, &task, &method, budget, par_threads);
        assert_identical(&seq, &par, par_threads);
        let speedup = seq_secs / par_secs.max(1e-9);
        println!(
            "{}: sequential {seq_secs:.3}s | parallel({par_threads}) {par_secs:.3}s | \
             speedup {speedup:.2}x | {} queries",
            seq.method, seq.queries
        );
        // The greedy scan keeps its whole prefetch window busy, so it is
        // the one the timing promise is pinned on; Metam's speculative
        // lookahead only wins what its predictions hit.
        if !args.quick && workers > 1 && matches!(method, Method::Uniform { .. }) {
            assert!(
                par_secs < seq_secs,
                "batched search must beat sequential on {workers} workers \
                 (sequential {seq_secs:.3}s vs parallel {par_secs:.3}s)"
            );
        }
        table.push_row(vec![
            seq.method.clone(),
            format!("{seq_secs:.3}"),
            format!("{par_secs:.3}"),
            format!("{speedup:.2}"),
            seq.queries.to_string(),
        ]);
    }
    table.print();
    save_json(&args.out, "search_parallel", &table);
    println!("ok: thread count changed wall-clock only, never results");
}
