//! Candidate-generation scalability: sketch-backed prepare vs
//! load-everything, as the lake grows.
//!
//! Generates lakes with a growing number of tables (100 → 2000; 20 → 60
//! with `--quick`) where only a fixed handful of tables actually join the
//! input dataset — the realistic shape where a lake is much bigger than
//! any one query's neighborhood. For every lake size it runs prepare both
//! ways and **asserts** the properties the sketch layer promises:
//!
//! 1. the sketch-backed candidate set is **byte-identical** to the eager
//!    (load-everything) candidate set at every table count,
//! 2. a sketch-backed prepare touches a **bounded** number of table
//!    payloads — the input dataset plus the tables on candidate join
//!    paths (the fixed joinable handful), independent of lake size,
//! 3. every repository descriptor comes from a persisted sketch record
//!    (zero table-load fallbacks),
//! 4. (full mode only) sketch-backed prepare beats load-everything on
//!    wall-clock once the lake dwarfs the join neighborhood.
//!
//! `--quick` is the CI smoke mode (run by `ci.sh`): small lakes, all
//! structural assertions, no timing assertions.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use metam::core::prepared::{assemble, AssembleOptions};
use metam::lake::prepare::{repository_descriptors, repository_tables};
use metam::lake::{parse_task, LakeCatalog};
use metam::profile::default_profiles;
use metam_bench::{save_json, Args, TableReport};

/// Tables that genuinely join the input dataset, whatever the lake size.
const N_JOINABLE: usize = 3;

/// Deterministic row data (tiny splitmix; no rand dependency needed).
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A lake of `n_tables` repository tables plus `din.csv`. The first
/// [`N_JOINABLE`] tables share din's `z<r>` keyspace; every other table
/// keys on its own `d<f>_<r>` namespace, so it can never join din.
fn generate_lake(dir: &Path, n_tables: usize, n_rows: usize, seed: u64) {
    std::fs::create_dir_all(dir).expect("create lake dir");
    let mut din = String::from("zip,label\n");
    for r in 0..n_rows {
        din.push_str(&format!("z{r},{}\n", mix(seed ^ r as u64) % 2));
    }
    std::fs::write(dir.join("din.csv"), din).expect("write din");
    for f in 0..n_tables {
        let joinable = f < N_JOINABLE;
        let mut csv = String::from("key,metric\n");
        for r in 0..n_rows {
            let h = mix(seed ^ ((f as u64) << 32) ^ r as u64);
            let key = if joinable {
                format!("z{r}")
            } else {
                format!("d{f}_{r}")
            };
            csv.push_str(&format!("{key},{:.3}\n", (h % 10_000) as f64 / 7.0));
        }
        std::fs::write(dir.join(format!("t{f:04}.csv")), csv).expect("write lake file");
    }
}

fn main() {
    let args = Args::parse();
    let sizes: &[usize] = if args.quick {
        &[20, 60]
    } else {
        &[100, 500, 1000, 2000]
    };
    let n_rows = if args.quick { 30 } else { 60 };

    let mut table = TableReport::new(
        "candidates",
        "Sketch-backed vs load-everything prepare",
        vec![
            "tables",
            "candidates",
            "payloads loaded",
            "eager s",
            "sketch s",
            "speedup",
        ],
    );

    for &n_tables in sizes {
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "metam-candidates-bench-{n_tables}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        generate_lake(&dir, n_tables, n_rows, args.seed);

        let options = AssembleOptions {
            seed: args.seed,
            ..Default::default()
        };

        // Eager path: load every repository table up front, sketch them
        // all in memory, then generate candidates.
        let catalog = LakeCatalog::scan(&dir).expect("scan");
        assert_eq!(catalog.len(), n_tables + 1);
        let eager_start = Instant::now();
        let din = catalog.load_table("din").expect("din");
        let tables = repository_tables(&catalog, &din, None).expect("repository");
        let eager = assemble(
            din,
            tables,
            Some(1),
            parse_task("classification:label", args.seed)
                .expect("task")
                .task,
            &default_profiles(),
            &options,
        );
        let eager_secs = eager_start.elapsed().as_secs_f64();
        drop(catalog);

        // Sketch path: descriptors from persisted records, payloads
        // lazily through the catalog — under fresh load counters.
        let catalog = Arc::new(LakeCatalog::scan(&dir).expect("rescan"));
        assert_eq!(catalog.sketch_hits(), n_tables + 1, "records are warm");
        let counters = catalog.load_counters();
        let sketch_counters = catalog.sketch_load_counters();
        let sketch_start = Instant::now();
        let din = catalog.load_table("din").expect("din");
        let (descriptors, provider) =
            repository_descriptors(&catalog, &din, None).expect("descriptors");
        let sketch = assemble(
            din,
            metam::core::Repository::Deferred {
                descriptors,
                provider: Box::new(provider),
            },
            Some(1),
            parse_task("classification:label", args.seed)
                .expect("task")
                .task,
            &default_profiles(),
            &options,
        );
        let sketch_secs = sketch_start.elapsed().as_secs_f64();

        // 1. Byte-identical candidate sets at every table count.
        assert_eq!(
            eager.candidates, sketch.candidates,
            "sketch-backed candidates must equal the in-memory set at {n_tables} tables"
        );
        assert!(
            !sketch.candidates.is_empty(),
            "the joinable handful must produce candidates"
        );

        // 2. Bounded payload loads: din + the tables on candidate join
        // paths — never the whole lake.
        let mut touched: Vec<usize> = sketch
            .candidates
            .iter()
            .flat_map(|c| c.path.hops.iter())
            .map(|h| h.table)
            .collect();
        touched.sort_unstable();
        touched.dedup();
        let loads = counters.hits() + counters.misses();
        assert_eq!(
            loads,
            1 + touched.len(),
            "prepare must load din + candidate-path tables only ({n_tables} tables)"
        );
        assert_eq!(
            touched.len(),
            N_JOINABLE,
            "the join neighborhood stays fixed as the lake grows"
        );

        // 3. Candidate generation ran entirely off persisted records.
        assert_eq!(sketch_counters.hits(), n_tables, "all records served");
        assert_eq!(sketch_counters.misses(), 0, "no table-load fallbacks");

        // 4. Wall-clock: once the lake dwarfs the join neighborhood, the
        // sketch path must win (skipped in --quick and at small sizes,
        // where constant factors and 1-core CI boxes dominate).
        let speedup = eager_secs / sketch_secs.max(1e-9);
        println!(
            "{n_tables:>5} tables: {} candidates | {loads} payload load(s) | eager {eager_secs:.3}s | sketch {sketch_secs:.3}s | speedup {speedup:.2}x",
            sketch.candidates.len(),
        );
        if !args.quick && n_tables >= 500 {
            assert!(
                sketch_secs < eager_secs,
                "sketch-backed prepare must beat load-everything at {n_tables} tables \
                 (eager {eager_secs:.3}s vs sketch {sketch_secs:.3}s)"
            );
        }

        table.push_row(vec![
            n_tables.to_string(),
            sketch.candidates.len().to_string(),
            loads.to_string(),
            format!("{eager_secs:.4}"),
            format!("{sketch_secs:.4}"),
            format!("{speedup:.2}x"),
        ]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    table.print();
    save_json(&args.out, "candidates", &table);
    println!("candidates bench OK");
}
