//! τ ablation (§IV-B "Impact of τ" / §VI-A.2 relaxed solutions).
//!
//! τ = |C| (default) optimizes solution size; τ = 1 accepts the first
//! improving augmentation — fewer queries per round, larger solutions
//! (the paper reports ≈9 augmentations relaxed vs 2 minimal).

use metam::{Metam, MetamConfig};
use metam_bench::{save_json, Args, TableReport};

fn main() {
    let args = Args::parse();
    let budget = if args.quick { 150 } else { 800 };

    let scenario = metam::datagen::repo::price_classification(args.seed);
    let prepared = metam::Session::from_scenario(scenario)
        .seed(args.seed)
        .prepare()
        .expect("prepare");

    // Discover |C| once so τ = |C|/2 is meaningful.
    let clustering = metam::core::cluster::cluster_partition(&prepared.profiles, 0.05, args.seed);
    let n_clusters = clustering.len().max(2);
    eprintln!(
        "[tau] {} candidates in {} clusters",
        prepared.candidates.len(),
        n_clusters
    );

    let mut table = TableReport::new(
        "ablation_tau",
        "Effect of τ (queries per round before committing)",
        vec!["tau", "utility", "queries", "|solution|", "stop"],
    );

    for (label, tau) in [
        ("1 (relaxed)", Some(1)),
        ("|C|/2", Some(n_clusters / 2)),
        ("|C| (default)", None),
    ] {
        // Without the minimality post-check, so solution sizes show the
        // raw effect of τ, as in the paper's discussion.
        let cfg = MetamConfig {
            tau,
            theta: Some(0.75),
            max_queries: budget,
            minimality: false,
            seed: args.seed,
            ..Default::default()
        };
        let r = Metam::new(cfg).run(&prepared.inputs());
        table.push_row(vec![
            label.to_string(),
            format!("{:.3}", r.utility),
            r.queries.to_string(),
            r.selected.len().to_string(),
            format!("{:?}", r.stop_reason),
        ]);
        eprintln!("[tau] {label} done");
    }
    table.print();
    save_json(&args.out, "ablation_tau", &table);
}
