//! Criterion bench: join-path materialization (single- and two-hop) — the
//! per-candidate cost underlying discovery and utility queries.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metam::discovery::path::PathConfig;
use metam::discovery::{generate_candidates, DiscoveryIndex, Materializer};
use metam_table::{Column, Table};

fn make_tables(n: usize) -> (Table, Vec<Arc<Table>>) {
    let din = Table::from_columns(
        "din",
        vec![Column::from_strings(
            Some("zip".into()),
            (0..n).map(|i| Some(format!("z{i}"))).collect(),
        )],
    )
    .expect("aligned");
    let bridge = Table::from_columns(
        "bridge",
        vec![
            Column::from_strings(
                Some("zipcode".into()),
                (0..n).map(|i| Some(format!("z{i}"))).collect(),
            ),
            Column::from_strings(
                Some("district".into()),
                (0..n)
                    .map(|i| Some(format!("d{}", i % (n / 4).max(1))))
                    .collect(),
            ),
            Column::from_floats(
                Some("rate".into()),
                (0..n).map(|i| Some(i as f64)).collect(),
            ),
        ],
    )
    .expect("aligned");
    let leaf = Table::from_columns(
        "leaf",
        vec![
            Column::from_strings(
                Some("id".into()),
                (0..n).map(|i| Some(format!("d{i}"))).collect(),
            ),
            Column::from_floats(
                Some("income".into()),
                (0..n).map(|i| Some(i as f64)).collect(),
            ),
        ],
    )
    .expect("aligned");
    (din, vec![Arc::new(bridge), Arc::new(leaf)])
}

fn bench_materialize(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialize");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let (din, tables) = make_tables(n);
        let index = DiscoveryIndex::build(tables.clone());
        let cfg = PathConfig {
            containment_threshold: 0.2,
            ..Default::default()
        };
        let candidates = generate_candidates(&din, &index, &cfg, 100);
        let single = candidates
            .iter()
            .find(|c| c.path.len() == 1)
            .expect("single hop")
            .clone();
        let double = candidates.iter().find(|c| c.path.len() == 2).cloned();

        group.bench_with_input(BenchmarkId::new("single_hop", n), &n, |b, _| {
            let mat = Materializer::new(tables.clone());
            b.iter(|| {
                mat.clear_cache();
                std::hint::black_box(mat.materialize(&din, &single).expect("ok"))
            })
        });
        if let Some(double) = double {
            group.bench_with_input(BenchmarkId::new("two_hop", n), &n, |b, _| {
                let mat = Materializer::new(tables.clone());
                b.iter(|| {
                    mat.clear_cache();
                    std::hint::black_box(mat.materialize(&din, &double).expect("ok"))
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("cached", n), &n, |b, _| {
            let mat = Materializer::new(tables.clone());
            mat.materialize(&din, &single).expect("warm");
            b.iter(|| std::hint::black_box(mat.materialize(&din, &single).expect("ok")))
        });
    }
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let (_din, tables) = make_tables(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(DiscoveryIndex::build(tables.clone())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_materialize, bench_index_build);
criterion_main!(benches);
