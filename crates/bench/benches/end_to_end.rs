//! Criterion bench: one full goal-oriented discovery run (real forest
//! task, real joins, real profiles) on a small classification scenario.

use criterion::{criterion_group, criterion_main, Criterion};
use metam::Session;
use metam::{Metam, MetamConfig};
use metam_datagen::supervised::{build_supervised, SupervisedConfig};

fn small_scenario() -> metam::datagen::Scenario {
    build_supervised(&SupervisedConfig {
        n_rows: 300,
        n_informative: 2,
        n_duplicates: 1,
        n_irrelevant_tables: 6,
        n_erroneous_tables: 3,
        ..Default::default()
    })
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);

    group.bench_function("prepare", |b| {
        b.iter_with_large_drop(|| {
            Session::from_scenario(small_scenario())
                .seed(5)
                .prepare()
                .expect("prepare")
        })
    });

    let prepared = Session::from_scenario(small_scenario())
        .seed(5)
        .prepare()
        .expect("prepare");
    group.bench_function("metam_30_queries", |b| {
        b.iter(|| {
            Metam::new(MetamConfig {
                max_queries: 30,
                seed: 5,
                ..Default::default()
            })
            .run(&prepared.inputs())
        })
    });
    group.bench_function("single_utility_query", |b| {
        let inputs = prepared.inputs();
        b.iter(|| {
            let mut engine = metam::core::engine::QueryEngine::new(&inputs, 10);
            engine.base_utility().expect("in budget")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
