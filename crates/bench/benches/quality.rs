//! Criterion bench: quality-score bookkeeping — the per-query cost of
//! recording an observation (utility propagation + ridge weight refit)
//! and of the arg-max candidate selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metam::core::cluster::cluster_partition;
use metam::core::quality::QualityModel;
use metam_bench::synthetic::scaled_fixture;

fn bench_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality_model");
    group.sample_size(20);
    for &n in &[10_000usize, 100_000] {
        let fixture = scaled_fixture(n, 5, 24, 9);
        let clustering = cluster_partition(&fixture.profiles, 0.05, 9);

        group.bench_with_input(BenchmarkId::new("record", n), &n, |b, _| {
            let mut model = QualityModel::new(n, 5, true);
            let mut i = 0usize;
            b.iter(|| {
                model.record(i % n, 0.1, &fixture.profiles, &clustering);
                i += 1;
            })
        });

        group.bench_with_input(BenchmarkId::new("best_candidate", n), &n, |b, _| {
            let model = QualityModel::new(n, 5, true);
            b.iter(|| std::hint::black_box(model.best_candidate(0..n, &fixture.profiles)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quality);
criterion_main!(benches);
