//! Criterion bench: per-profile computation cost (the "roughly 4 of 10
//! minutes are spent generating data profiles" observation in §VI-B) and
//! the parallel profile sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use metam::profile::{Profile, ProfileContext};
use metam::Session;
use metam_datagen::supervised::{build_supervised, SupervisedConfig};

fn scenario() -> metam::datagen::Scenario {
    build_supervised(&SupervisedConfig {
        n_rows: 400,
        n_informative: 2,
        n_irrelevant_tables: 5,
        n_erroneous_tables: 2,
        ..Default::default()
    })
}

fn bench_single_profiles(c: &mut Criterion) {
    let prepared = Session::from_scenario(scenario())
        .seed(0)
        .prepare()
        .expect("prepare");
    let cand = &prepared.candidates[0];
    let aug = prepared
        .materializer
        .materialize(&prepared.din, cand)
        .expect("materializes");
    let sample: Vec<usize> = (0..100).collect();
    let ctx = ProfileContext {
        din: &prepared.din,
        target_column: prepared.target_column,
        sample_indices: &sample,
        candidate: cand,
        aug: Some(&aug),
    };

    let mut group = c.benchmark_group("profile_single");
    group.sample_size(30);
    let profiles: Vec<(&str, Box<dyn Profile>)> = vec![
        (
            "correlation",
            Box::new(metam::profile::correlation::CorrelationProfile),
        ),
        (
            "mutual_info",
            Box::new(metam::profile::mutual_info::MutualInfoProfile::default()),
        ),
        (
            "embedding",
            Box::new(metam::profile::embedding::EmbeddingProfile),
        ),
        (
            "metadata",
            Box::new(metam::profile::metadata::MetadataProfile),
        ),
        ("overlap", Box::new(metam::profile::overlap::OverlapProfile)),
    ];
    for (name, profile) in &profiles {
        group.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(profile.compute(&ctx)))
        });
    }
    group.finish();
}

fn bench_profile_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_sweep");
    group.sample_size(10);
    group.bench_function("evaluate_all", |b| {
        b.iter_with_large_drop(|| {
            Session::from_scenario(scenario())
                .seed(0)
                .prepare()
                .expect("prepare")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_single_profiles, bench_profile_sweep);
criterion_main!(benches);
