//! Criterion bench: Fig. 6-shaped scalability — time to spend a fixed
//! query budget as the candidate count and profile count grow. Verifies
//! the "scales linearly, Metam ≤ MW" claims at criterion precision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metam::{run_method, MetamConfig, Method};
use metam_bench::synthetic::scaled_fixture;

fn bench_candidates(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget100_vs_candidates");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        let fixture = scaled_fixture(n, 5, 24, 3);
        group.bench_with_input(BenchmarkId::new("metam", n), &n, |b, _| {
            b.iter(|| {
                run_method(
                    &Method::Metam(MetamConfig {
                        seed: 3,
                        ..Default::default()
                    }),
                    &fixture.inputs(),
                    None,
                    100,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("mw", n), &n, |b, _| {
            b.iter(|| run_method(&Method::Mw { seed: 3 }, &fixture.inputs(), None, 100))
        });
    }
    group.finish();
}

fn bench_profiles_dim(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget100_vs_profiles");
    group.sample_size(10);
    for &l in &[10usize, 40] {
        let fixture = scaled_fixture(20_000, l, 24, 3);
        group.bench_with_input(BenchmarkId::new("metam", l), &l, |b, _| {
            b.iter(|| {
                run_method(
                    &Method::Metam(MetamConfig {
                        seed: 3,
                        ..Default::default()
                    }),
                    &fixture.inputs(),
                    None,
                    100,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_candidates, bench_profiles_dim);
criterion_main!(benches);
