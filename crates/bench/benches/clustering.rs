//! Criterion bench: CLUSTER-PARTITION (Algorithm 2) cost, backing the
//! linear-in-n runtime claim of Fig. 6(a) and the ε discussion of
//! Fig. 11(a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metam::core::cluster::cluster_partition;
use metam_bench::synthetic::scaled_fixture;

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_partition");
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 50_000] {
        let fixture = scaled_fixture(n, 5, 24, 7);
        group.bench_with_input(BenchmarkId::new("eps_0.05", n), &n, |b, _| {
            b.iter(|| cluster_partition(std::hint::black_box(&fixture.profiles), 0.05, 7))
        });
    }
    // ε sensitivity at fixed n.
    let fixture = scaled_fixture(10_000, 5, 24, 7);
    for &eps in &[0.03f64, 0.05, 0.07] {
        group.bench_with_input(
            BenchmarkId::new("n_10000_eps", format!("{eps}")),
            &eps,
            |b, &eps| b.iter(|| cluster_partition(std::hint::black_box(&fixture.profiles), eps, 7)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
