#![forbid(unsafe_code)]
//! # metam-ml
//!
//! A self-contained machine-learning substrate for the Metam reproduction.
//! The paper's predictive tasks (§II-B, §VI-A) train random forests,
//! AutoML pipelines and regressors and report accuracy / F-score / MAE as
//! the utility; this crate provides everything those tasks need, from
//! scratch:
//!
//! * dense matrices with a Gaussian-elimination solver ([`matrix`]),
//! * tabular dataset encoding with imputation and label encoding
//!   ([`dataset`]),
//! * CART decision trees ([`tree`]) and bagged random forests ([`forest`])
//!   for both classification and regression,
//! * ridge and logistic regression ([`linear`]),
//! * deterministic train/validation splitting ([`split`]),
//! * evaluation metrics ([`metrics`]),
//! * impurity- and injection-based feature importance ([`importance`]) —
//!   the latter mirrors ARDA's random-injection feature selection and backs
//!   the `iARDA` baseline and Fig. 7's task-specific profiles,
//! * a small grid-search "AutoML" ([`automl`]) standing in for
//!   TPOT/auto-sklearn in Fig. 4(a).
//!
//! Every randomized component is seeded and fully deterministic.

#![warn(missing_docs)]

pub mod automl;
pub mod dataset;
pub mod forest;
pub mod importance;
pub mod linear;
pub mod matrix;
pub mod metrics;
pub mod split;
pub mod tree;

pub use automl::{AutoMl, AutoMlChoice};
pub use dataset::MlDataset;
pub use forest::{RandomForest, RandomForestConfig};
pub use linear::{LogisticRegression, RidgeRegression};
pub use matrix::Matrix;
pub use tree::{DecisionTree, TreeConfig, TreeTask};
