//! CART decision trees for classification and regression.
//!
//! Splits minimize Gini impurity (classification) or variance (regression).
//! Candidate thresholds are capped per node so that a single utility query
//! (one model fit) stays cheap even with thousands of queries per
//! experiment. Feature subsampling per split is injected by the forest.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::MlDataset;

/// Whether the tree predicts class indices or continuous values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeTask {
    /// Predict one of `n_classes` class indices.
    Classification {
        /// Number of classes (labels are `0..n_classes` as f64).
        n_classes: usize,
    },
    /// Predict a continuous value.
    Regression,
}

/// Tree growth hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each child.
    pub min_samples_leaf: usize,
    /// Maximum candidate thresholds evaluated per feature per node.
    pub max_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_thresholds: 16,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prediction: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    task: TreeTask,
    /// Total impurity decrease attributed to each feature.
    importances: Vec<f64>,
}

/// How many features each split considers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FeatureSampling {
    /// All features (plain CART).
    All,
    /// `ceil(sqrt(n_features))` random features per split (random forest).
    Sqrt,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts
        .iter()
        .map(|&c| {
            let p = c as f64 / t;
            p * p
        })
        .sum::<f64>()
}

fn variance(sum: f64, sum_sq: f64, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    (sum_sq / nf - (sum / nf).powi(2)).max(0.0)
}

/// `(feature, threshold, left rows, right rows, gain)` of a chosen split.
type SplitChoice = (usize, f64, Vec<usize>, Vec<usize>, f64);

struct Builder<'a> {
    data: &'a MlDataset,
    config: TreeConfig,
    task: TreeTask,
    sampling: FeatureSampling,
    importances: Vec<f64>,
    n_total: usize,
}

impl<'a> Builder<'a> {
    fn node_impurity(&self, idx: &[usize]) -> f64 {
        match self.task {
            TreeTask::Classification { n_classes } => {
                let mut counts = vec![0usize; n_classes];
                for &i in idx {
                    let c = self.data.targets[i] as usize;
                    if c < n_classes {
                        counts[c] += 1;
                    }
                }
                gini(&counts, idx.len())
            }
            TreeTask::Regression => {
                let (mut s, mut sq) = (0.0, 0.0);
                for &i in idx {
                    let y = self.data.targets[i];
                    s += y;
                    sq += y * y;
                }
                variance(s, sq, idx.len())
            }
        }
    }

    fn leaf_prediction(&self, idx: &[usize]) -> f64 {
        match self.task {
            TreeTask::Classification { n_classes } => {
                let mut counts = vec![0usize; n_classes.max(1)];
                for &i in idx {
                    let c = self.data.targets[i] as usize;
                    if c < counts.len() {
                        counts[c] += 1;
                    }
                }
                // First-max wins so ties (and empty nodes) predict the
                // smallest class index deterministically.
                let mut best_cls = 0usize;
                let mut best_cnt = 0usize;
                for (cls, &c) in counts.iter().enumerate() {
                    if c > best_cnt {
                        best_cnt = c;
                        best_cls = cls;
                    }
                }
                best_cls as f64
            }
            TreeTask::Regression => {
                if idx.is_empty() {
                    0.0
                } else {
                    idx.iter().map(|&i| self.data.targets[i]).sum::<f64>() / idx.len() as f64
                }
            }
        }
    }

    /// Best split by a single sorted sweep per feature: prefix class counts
    /// (classification) or prefix sums (regression) evaluate every
    /// candidate threshold in O(n) after the sort, with no per-threshold
    /// allocation — this is the hot path of every utility query.
    fn best_split(&self, idx: &[usize], features: &[usize]) -> Option<SplitChoice> {
        let n = idx.len();
        let parent_impurity = self.node_impurity(idx);
        let n_classes = match self.task {
            TreeTask::Classification { n_classes } => n_classes.max(1),
            TreeTask::Regression => 0,
        };
        // (feature, threshold, gain) — rows partitioned once at the end.
        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(n);

        for &f in features {
            sorted.clear();
            sorted.extend(
                idx.iter()
                    .map(|&i| (self.data.features[i][f], self.data.targets[i])),
            );
            sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            if sorted[0].0 == sorted[n - 1].0 {
                continue; // constant feature
            }
            // Candidate cut positions: boundaries between distinct values,
            // evenly downsampled to max_thresholds.
            let mut cuts: Vec<usize> = (1..n).filter(|&i| sorted[i - 1].0 < sorted[i].0).collect();
            if cuts.len() > self.config.max_thresholds {
                let step = cuts.len() as f64 / self.config.max_thresholds as f64;
                cuts = (0..self.config.max_thresholds)
                    .map(|k| cuts[(k as f64 * step) as usize])
                    .collect();
            }

            // Sweep with incremental statistics.
            let mut left_counts = vec![0usize; n_classes];
            let (mut left_sum, mut left_sq) = (0.0f64, 0.0f64);
            // Totals.
            let mut total_counts = vec![0usize; n_classes];
            let (mut total_sum, mut total_sq) = (0.0f64, 0.0f64);
            if n_classes > 0 {
                for &(_, y) in &sorted {
                    let c = y as usize;
                    if c < n_classes {
                        total_counts[c] += 1;
                    }
                }
            } else {
                for &(_, y) in &sorted {
                    total_sum += y;
                    total_sq += y * y;
                }
            }

            let mut pos = 0usize;
            for &cut in &cuts {
                // Advance the prefix to `cut`.
                while pos < cut {
                    let y = sorted[pos].1;
                    if n_classes > 0 {
                        let c = y as usize;
                        if c < n_classes {
                            left_counts[c] += 1;
                        }
                    } else {
                        left_sum += y;
                        left_sq += y * y;
                    }
                    pos += 1;
                }
                let left_n = cut;
                let right_n = n - cut;
                if left_n < self.config.min_samples_leaf || right_n < self.config.min_samples_leaf {
                    continue;
                }
                let weighted = if n_classes > 0 {
                    let right_counts: Vec<usize> = total_counts
                        .iter()
                        .zip(&left_counts)
                        .map(|(&t, &l)| t - l)
                        .collect();
                    (left_n as f64 * gini(&left_counts, left_n)
                        + right_n as f64 * gini(&right_counts, right_n))
                        / n as f64
                } else {
                    (left_n as f64 * variance(left_sum, left_sq, left_n)
                        + right_n as f64
                            * variance(total_sum - left_sum, total_sq - left_sq, right_n))
                        / n as f64
                };
                let gain = parent_impurity - weighted;
                if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                    let threshold = (sorted[cut - 1].0 + sorted[cut].0) / 2.0;
                    best = Some((f, threshold, gain));
                }
            }
        }

        let (f, threshold, gain) = best?;
        let mut left = Vec::new();
        let mut right = Vec::new();
        for &i in idx {
            if self.data.features[i][f] <= threshold {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        Some((f, threshold, left, right, gain))
    }

    fn build<R: Rng>(&mut self, idx: &[usize], depth: usize, rng: &mut R) -> Node {
        if depth >= self.config.max_depth
            || idx.len() < self.config.min_samples_split
            || self.node_impurity(idx) < 1e-12
        {
            return Node::Leaf {
                prediction: self.leaf_prediction(idx),
            };
        }
        let all: Vec<usize> = (0..self.data.n_features()).collect();
        let features: Vec<usize> = match self.sampling {
            FeatureSampling::All => all,
            FeatureSampling::Sqrt => {
                let k = ((all.len() as f64).sqrt().ceil() as usize).clamp(1, all.len());
                let mut pool = all;
                pool.shuffle(rng);
                pool.truncate(k);
                pool.sort_unstable(); // deterministic evaluation order
                pool
            }
        };
        match self.best_split(idx, &features) {
            Some((feature, threshold, left, right, gain)) => {
                self.importances[feature] += gain * idx.len() as f64 / self.n_total as f64;
                let left_node = self.build(&left, depth + 1, rng);
                let right_node = self.build(&right, depth + 1, rng);
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(left_node),
                    right: Box::new(right_node),
                }
            }
            None => Node::Leaf {
                prediction: self.leaf_prediction(idx),
            },
        }
    }
}

impl DecisionTree {
    /// Fit a tree on the given row subset (`indices`) of `data`.
    pub fn fit_on<R: Rng>(
        data: &MlDataset,
        indices: &[usize],
        task: TreeTask,
        config: TreeConfig,
        sampling: FeatureSampling,
        rng: &mut R,
    ) -> Self {
        let mut builder = Builder {
            data,
            config,
            task,
            sampling,
            importances: vec![0.0; data.n_features()],
            n_total: indices.len().max(1),
        };
        let root = builder.build(indices, 0, rng);
        DecisionTree {
            root,
            task,
            importances: builder.importances,
        }
    }

    /// Fit on all rows with no feature subsampling.
    pub fn fit(data: &MlDataset, task: TreeTask, config: TreeConfig, seed: u64) -> Self {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let indices: Vec<usize> = (0..data.len()).collect();
        Self::fit_on(data, &indices, task, config, FeatureSampling::All, &mut rng)
    }

    /// Predict one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prediction } => return *prediction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Predict many rows.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Raw (unnormalized) impurity-decrease importances per feature.
    pub fn importances(&self) -> &[f64] {
        &self.importances
    }

    /// The task this tree was fitted for.
    pub fn task(&self) -> TreeTask {
        self.task
    }

    /// Number of decision nodes (for tests/diagnostics).
    pub fn n_splits(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> MlDataset {
        // y = x0 AND x1 — needs two levels but each greedy split has
        // positive gain (pure XOR has a zero-gain first split, which greedy
        // CART — like scikit-learn's — cannot take).
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..40 {
            let a = (i / 2) % 2;
            let b = i % 2;
            features.push(vec![a as f64, b as f64]);
            targets.push((a & b) as f64);
        }
        MlDataset {
            features,
            feature_names: vec!["a".into(), "b".into()],
            targets,
            n_classes: Some(2),
        }
    }

    #[test]
    fn learns_two_level_conjunction() {
        let d = xor_dataset();
        let t = DecisionTree::fit(
            &d,
            TreeTask::Classification { n_classes: 2 },
            TreeConfig::default(),
            0,
        );
        let preds = t.predict_batch(&d.features);
        let correct = preds
            .iter()
            .zip(&d.targets)
            .filter(|(p, y)| (*p - *y).abs() < 0.5)
            .count();
        assert_eq!(correct, d.len(), "tree should fit AND exactly");
        assert!(t.n_splits() >= 2);
    }

    #[test]
    fn depth_zero_yields_majority_leaf() {
        let d = xor_dataset();
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let t = DecisionTree::fit(&d, TreeTask::Classification { n_classes: 2 }, cfg, 0);
        assert_eq!(t.n_splits(), 0);
        let p = t.predict(&[0.0, 0.0]);
        assert!(p == 0.0 || p == 1.0);
    }

    #[test]
    fn regression_fits_step_function() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let d = MlDataset {
            features,
            feature_names: vec!["x".into()],
            targets,
            n_classes: None,
        };
        let t = DecisionTree::fit(&d, TreeTask::Regression, TreeConfig::default(), 0);
        assert!((t.predict(&[10.0]) - 1.0).abs() < 0.5);
        assert!((t.predict(&[90.0]) - 5.0).abs() < 0.5);
    }

    #[test]
    fn importances_identify_informative_feature() {
        // Feature 1 is pure noise; feature 0 determines the label.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..60 {
            let x = i as f64 / 60.0;
            features.push(vec![x, ((i * 37) % 13) as f64]);
            targets.push(if x > 0.5 { 1.0 } else { 0.0 });
        }
        let d = MlDataset {
            features,
            feature_names: vec!["signal".into(), "noise".into()],
            targets,
            n_classes: Some(2),
        };
        let t = DecisionTree::fit(
            &d,
            TreeTask::Classification { n_classes: 2 },
            TreeConfig::default(),
            0,
        );
        assert!(t.importances()[0] > t.importances()[1]);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = xor_dataset();
        let t1 = DecisionTree::fit(
            &d,
            TreeTask::Classification { n_classes: 2 },
            TreeConfig::default(),
            7,
        );
        let t2 = DecisionTree::fit(
            &d,
            TreeTask::Classification { n_classes: 2 },
            TreeConfig::default(),
            7,
        );
        assert_eq!(t1.predict_batch(&d.features), t2.predict_batch(&d.features));
    }

    #[test]
    fn constant_target_is_single_leaf() {
        let d = MlDataset {
            features: (0..10).map(|i| vec![i as f64]).collect(),
            feature_names: vec!["x".into()],
            targets: vec![3.0; 10],
            n_classes: None,
        };
        let t = DecisionTree::fit(&d, TreeTask::Regression, TreeConfig::default(), 0);
        assert_eq!(t.n_splits(), 0);
        assert_eq!(t.predict(&[4.0]), 3.0);
    }
}
