//! Ridge and logistic regression.
//!
//! Ridge backs the quality-score weight learning (Lemma 4's closed form) and
//! the causal substrate's linear SEM effect estimates; logistic regression is
//! one of the AutoML candidates.

use crate::matrix::{ridge_solve, Matrix};

/// Per-feature standardization parameters.
#[derive(Debug, Clone)]
struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    fn fit(rows: &[Vec<f64>]) -> Scaler {
        let n = rows.len().max(1) as f64;
        let d = rows.first().map_or(0, Vec::len);
        let mut means = vec![0.0; d];
        for row in rows {
            for (j, &v) in row.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for row in rows {
            for (j, &v) in row.iter().enumerate() {
                stds[j] += (v - means[j]).powi(2);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Scaler { means, stds }
    }

    fn transform(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .enumerate()
            .map(|(j, &v)| {
                (v - self.means.get(j).copied().unwrap_or(0.0))
                    / self.stds.get(j).copied().unwrap_or(1.0)
            })
            .collect()
    }
}

/// L2-regularized linear regression, fitted by the normal equations.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    weights: Vec<f64>,
    intercept: f64,
    scaler: Scaler,
}

impl RidgeRegression {
    /// Fit with regularization strength `lambda`.
    pub fn fit(rows: &[Vec<f64>], targets: &[f64], lambda: f64) -> RidgeRegression {
        assert_eq!(rows.len(), targets.len());
        let scaler = Scaler::fit(rows);
        let scaled: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform(r)).collect();
        let y_mean = if targets.is_empty() {
            0.0
        } else {
            targets.iter().sum::<f64>() / targets.len() as f64
        };
        let centered: Vec<f64> = targets.iter().map(|&y| y - y_mean).collect();
        let d = scaled.first().map_or(0, Vec::len);
        let weights = if d == 0 || scaled.is_empty() {
            vec![0.0; d]
        } else {
            let x = Matrix::from_rows(&scaled);
            ridge_solve(&x, &centered, lambda.max(1e-9)).unwrap_or_else(|| vec![0.0; d])
        };
        RidgeRegression {
            weights,
            intercept: y_mean,
            scaler,
        }
    }

    /// Predict one row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let scaled = self.scaler.transform(row);
        self.intercept
            + scaled
                .iter()
                .zip(&self.weights)
                .map(|(x, w)| x * w)
                .sum::<f64>()
    }

    /// Standardized coefficients (effect per standard deviation).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }
}

/// Binary logistic regression trained by full-batch gradient descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    scaler: Scaler,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fit on 0/1 targets. `epochs` full-batch steps with fixed learning
    /// rate and small L2; deterministic (no random init).
    pub fn fit(rows: &[Vec<f64>], targets: &[f64], epochs: usize) -> LogisticRegression {
        assert_eq!(rows.len(), targets.len());
        let scaler = Scaler::fit(rows);
        let scaled: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform(r)).collect();
        let d = scaled.first().map_or(0, Vec::len);
        let n = scaled.len().max(1) as f64;
        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let lr = 0.5;
        let l2 = 1e-3;
        for _ in 0..epochs {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (row, &y) in scaled.iter().zip(targets) {
                let z = bias + row.iter().zip(&weights).map(|(x, w)| x * w).sum::<f64>();
                let err = sigmoid(z) - y;
                for (j, &x) in row.iter().enumerate() {
                    grad_w[j] += err * x;
                }
                grad_b += err;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= lr * (g / n + l2 * *w);
            }
            bias -= lr * grad_b / n;
        }
        LogisticRegression {
            weights,
            bias,
            scaler,
        }
    }

    /// Probability of class 1.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let scaled = self.scaler.transform(row);
        sigmoid(
            self.bias
                + scaled
                    .iter()
                    .zip(&self.weights)
                    .map(|(x, w)| x * w)
                    .sum::<f64>(),
        )
    }

    /// Hard 0/1 prediction at threshold 0.5.
    pub fn predict(&self, row: &[f64]) -> f64 {
        if self.predict_proba(row) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_fits_linear_function() {
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 3.0).collect();
        let m = RidgeRegression::fit(&rows, &targets, 1e-6);
        for (r, &y) in rows.iter().zip(&targets).take(5) {
            assert!((m.predict(r) - y).abs() < 1e-3);
        }
    }

    #[test]
    fn ridge_constant_feature_does_not_blow_up() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![5.0, i as f64]).collect();
        let targets: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let m = RidgeRegression::fit(&rows, &targets, 1e-3);
        assert!(m.predict(&[5.0, 3.0]).is_finite());
    }

    #[test]
    fn logistic_separates_line() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let m = LogisticRegression::fit(&rows, &targets, 300);
        let acc = rows
            .iter()
            .zip(&targets)
            .filter(|(r, &y)| (m.predict(r) - y).abs() < 0.5)
            .count() as f64
            / rows.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc}");
    }

    #[test]
    fn logistic_probability_monotone_in_signal() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let targets: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let m = LogisticRegression::fit(&rows, &targets, 300);
        assert!(m.predict_proba(&[0.9]) > m.predict_proba(&[0.1]));
    }

    #[test]
    fn empty_fit_predicts_mean() {
        let m = RidgeRegression::fit(&[], &[], 1.0);
        assert_eq!(m.predict(&[]), 0.0);
    }
}
