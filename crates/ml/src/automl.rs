//! A small deterministic grid-search "AutoML".
//!
//! Stands in for TPOT / auto-sklearn / PyCaret in the paper's Fig. 4(a):
//! the AutoML task wraps this search so a single utility query explores a
//! model grid and returns the best validation score, exactly the black-box
//! behaviour Metam assumes.

use crate::dataset::MlDataset;
use crate::forest::{RandomForest, RandomForestConfig};
use crate::linear::LogisticRegression;
use crate::metrics::accuracy;
use crate::split::train_test_split;
use crate::tree::{DecisionTree, TreeConfig, TreeTask};

/// Which model the search settled on.
#[derive(Debug, Clone, PartialEq)]
pub enum AutoMlChoice {
    /// Random forest with `(n_trees, max_depth)`.
    Forest(usize, usize),
    /// Single CART tree with `max_depth`.
    Tree(usize),
    /// Logistic regression (binary only).
    Logistic,
}

enum FittedModel {
    Forest(RandomForest),
    Tree(DecisionTree),
    Logistic(LogisticRegression),
}

/// Result of an AutoML search: the winning fitted model and its metadata.
pub struct AutoMl {
    model: FittedModel,
    /// Winning configuration.
    pub choice: AutoMlChoice,
    /// Validation accuracy of the winner during the search.
    pub validation_score: f64,
}

impl AutoMl {
    /// Grid-search classifiers and return the best by validation accuracy.
    ///
    /// Ties break toward the earlier grid entry, making the search fully
    /// deterministic for a given `(data, seed)`.
    pub fn fit_classification(data: &MlDataset, seed: u64) -> AutoMl {
        let n_classes = data.n_classes.unwrap_or(2).max(2);
        let task = TreeTask::Classification { n_classes };
        let (train, val) = train_test_split(data, 0.3, seed);

        let mut best: Option<(f64, AutoMlChoice, FittedModel)> = None;
        let mut consider = |score: f64, choice: AutoMlChoice, model: FittedModel| {
            if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
                best = Some((score, choice, model));
            }
        };

        for &n_trees in &[8usize, 16] {
            for &depth in &[4usize, 8] {
                let cfg = RandomForestConfig {
                    n_trees,
                    tree: TreeConfig {
                        max_depth: depth,
                        ..Default::default()
                    },
                    seed,
                };
                let forest = RandomForest::fit(&train, task, cfg);
                let score = accuracy(&forest.predict_batch(&val.features), &val.targets);
                consider(
                    score,
                    AutoMlChoice::Forest(n_trees, depth),
                    FittedModel::Forest(forest),
                );
            }
        }
        for &depth in &[6usize, 10] {
            let cfg = TreeConfig {
                max_depth: depth,
                ..Default::default()
            };
            let tree = DecisionTree::fit(&train, task, cfg, seed);
            let score = accuracy(&tree.predict_batch(&val.features), &val.targets);
            consider(score, AutoMlChoice::Tree(depth), FittedModel::Tree(tree));
        }
        if n_classes == 2 {
            let logit = LogisticRegression::fit(&train.features, &train.targets, 200);
            let preds: Vec<f64> = val.features.iter().map(|r| logit.predict(r)).collect();
            let score = accuracy(&preds, &val.targets);
            consider(score, AutoMlChoice::Logistic, FittedModel::Logistic(logit));
        }

        let (validation_score, choice, model) =
            // metam-analyze: allow(panic-in-lib): the grid unconditionally evaluates linear + forest models, so best is always Some
            best.expect("grid always evaluates at least one model");
        AutoMl {
            model,
            choice,
            validation_score,
        }
    }

    /// Predict one row with the winning model.
    pub fn predict(&self, row: &[f64]) -> f64 {
        match &self.model {
            FittedModel::Forest(f) => f.predict(row),
            FittedModel::Tree(t) => t.predict(row),
            FittedModel::Logistic(l) => l.predict(row),
        }
    }

    /// Predict many rows.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> MlDataset {
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..200 {
            let x = (i % 100) as f64 / 100.0;
            let z = ((i * 17) % 13) as f64;
            features.push(vec![x, z]);
            targets.push(if x > 0.45 { 1.0 } else { 0.0 });
        }
        MlDataset {
            features,
            feature_names: vec!["x".into(), "z".into()],
            targets,
            n_classes: Some(2),
        }
    }

    #[test]
    fn automl_finds_accurate_model() {
        let m = AutoMl::fit_classification(&dataset(), 0);
        assert!(m.validation_score > 0.85, "score={}", m.validation_score);
    }

    #[test]
    fn automl_is_deterministic() {
        let d = dataset();
        let a = AutoMl::fit_classification(&d, 5);
        let b = AutoMl::fit_classification(&d, 5);
        assert_eq!(a.choice, b.choice);
        assert_eq!(a.validation_score, b.validation_score);
        assert_eq!(a.predict_batch(&d.features), b.predict_batch(&d.features));
    }

    #[test]
    fn automl_handles_multiclass() {
        let mut d = dataset();
        d.targets = d
            .features
            .iter()
            .map(|r| {
                if r[0] < 0.33 {
                    0.0
                } else if r[0] < 0.66 {
                    1.0
                } else {
                    2.0
                }
            })
            .collect();
        d.n_classes = Some(3);
        let m = AutoMl::fit_classification(&d, 0);
        assert!(m.validation_score > 0.7);
        assert_ne!(m.choice, AutoMlChoice::Logistic, "logistic is binary-only");
    }
}
