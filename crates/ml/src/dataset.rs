//! Encoding noisy tables into dense ML datasets.
//!
//! Tasks receive an augmented [`Table`] and must train on it no matter how
//! noisy the augmentation is: string columns are label-encoded, missing
//! numerics are mean-imputed, and missing categories become their own
//! category. This mirrors the forgiving encoding pipelines (ARDA etc.) the
//! paper builds on — a bad augmentation should lower utility, not crash the
//! task.

use metam_table::{DataType, Table};

/// A dense supervised dataset: row-major features plus a target vector.
#[derive(Debug, Clone)]
pub struct MlDataset {
    /// Row-major feature matrix, `n_rows × n_features`.
    pub features: Vec<Vec<f64>>,
    /// Feature names aligned with columns of `features`.
    pub feature_names: Vec<String>,
    /// Target values (class index as f64 for classification).
    pub targets: Vec<f64>,
    /// Number of distinct classes when the target was label-encoded;
    /// `None` for regression targets.
    pub n_classes: Option<usize>,
}

impl MlDataset {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// `true` when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Restrict to a subset of rows (cloning).
    pub fn take_rows(&self, indices: &[usize]) -> MlDataset {
        MlDataset {
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            feature_names: self.feature_names.clone(),
            targets: indices.iter().map(|&i| self.targets[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Restrict to a subset of feature columns.
    pub fn select_features(&self, cols: &[usize]) -> MlDataset {
        MlDataset {
            features: self
                .features
                .iter()
                .map(|row| cols.iter().map(|&c| row[c]).collect())
                .collect(),
            feature_names: cols
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect(),
            targets: self.targets.clone(),
            n_classes: self.n_classes,
        }
    }
}

/// Deterministically label-encode string keys: distinct values sorted
/// lexicographically get codes `0..k`. Missing values get code `k` (their
/// own category).
fn encode_categorical(col: &metam_table::Column) -> Vec<f64> {
    let distinct = col.distinct_keys();
    let lookup: std::collections::HashMap<&str, usize> = distinct
        .iter()
        .enumerate()
        .map(|(i, k)| (k.as_str(), i))
        .collect();
    let missing_code = distinct.len() as f64;
    (0..col.len())
        .map(|r| {
            col.get(r)
                .join_key()
                .and_then(|k| lookup.get(k.as_str()).map(|&i| i as f64))
                .unwrap_or(missing_code)
        })
        .collect()
}

/// Mean-impute a numeric view (columns that are all-null impute to 0).
fn impute_numeric(raw: Vec<Option<f64>>) -> Vec<f64> {
    let present: Vec<f64> = raw.iter().flatten().copied().collect();
    let mean = if present.is_empty() {
        0.0
    } else {
        present.iter().sum::<f64>() / present.len() as f64
    };
    raw.into_iter().map(|v| v.unwrap_or(mean)).collect()
}

/// How to interpret the target column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// Label-encode distinct values as class indices.
    Classification,
    /// Numeric view, mean-imputed.
    Regression,
}

/// Encode `table` into a dataset using `target` (column name) as the label
/// and every other column as a feature.
///
/// Rows whose target is missing are dropped (training on unlabeled rows is
/// meaningless); feature nulls are imputed.
pub fn encode_table(
    table: &Table,
    target: &str,
    kind: TargetKind,
) -> metam_table::Result<MlDataset> {
    let target_idx = table.column_index(target)?;
    let target_col = table.column(target_idx)?;

    // Rows with a usable target.
    let keep: Vec<usize> = (0..table.nrows())
        .filter(|&r| match kind {
            TargetKind::Classification => target_col.get(r).join_key().is_some(),
            TargetKind::Regression => target_col.get(r).as_f64().is_some(),
        })
        .collect();

    let (targets, n_classes) = match kind {
        TargetKind::Classification => {
            let codes = encode_categorical(target_col);
            let kept: Vec<f64> = keep.iter().map(|&r| codes[r]).collect();
            let n = target_col.distinct_count();
            (kept, Some(n.max(1)))
        }
        TargetKind::Regression => {
            let raw = target_col.as_f64();
            let kept: Vec<f64> = keep.iter().map(|&r| raw[r].unwrap_or(0.0)).collect();
            (kept, None)
        }
    };

    let mut encoded_cols: Vec<Vec<f64>> = Vec::new();
    let mut feature_names = Vec::new();
    for (ci, col) in table.columns().iter().enumerate() {
        if ci == target_idx {
            continue;
        }
        let full = if col.dtype() == DataType::Str {
            encode_categorical(col)
        } else {
            impute_numeric(col.as_f64())
        };
        encoded_cols.push(keep.iter().map(|&r| full[r]).collect());
        feature_names.push(table.column_display_name(ci));
    }

    let n_rows = keep.len();
    let n_feats = encoded_cols.len();
    let mut features = vec![vec![0.0; n_feats]; n_rows];
    for (c, col) in encoded_cols.iter().enumerate() {
        for (r, &v) in col.iter().enumerate() {
            features[r][c] = v;
        }
    }
    Ok(MlDataset {
        features,
        feature_names,
        targets,
        n_classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;

    fn table() -> Table {
        Table::from_columns(
            "t",
            vec![
                Column::from_strings(
                    Some("city".into()),
                    vec![Some("b".into()), Some("a".into()), None, Some("a".into())],
                ),
                Column::from_floats(
                    Some("x".into()),
                    vec![Some(1.0), None, Some(3.0), Some(4.0)],
                ),
                Column::from_strings(
                    Some("label".into()),
                    vec![
                        Some("hi".into()),
                        Some("lo".into()),
                        Some("hi".into()),
                        None,
                    ],
                ),
            ],
        )
        .unwrap()
    }

    #[test]
    fn classification_drops_unlabeled_rows() {
        let d = encode_table(&table(), "label", TargetKind::Classification).unwrap();
        assert_eq!(d.len(), 3, "row with null label dropped");
        assert_eq!(d.n_classes, Some(2));
        assert_eq!(d.feature_names, vec!["city".to_string(), "x".to_string()]);
    }

    #[test]
    fn categorical_encoding_is_deterministic() {
        let d = encode_table(&table(), "label", TargetKind::Classification).unwrap();
        // distinct city keys sorted: ["a", "b"] → a=0, b=1, missing=2
        assert_eq!(d.features[0][0], 1.0);
        assert_eq!(d.features[1][0], 0.0);
        assert_eq!(d.features[2][0], 2.0);
    }

    #[test]
    fn numeric_nulls_are_mean_imputed() {
        let d = encode_table(&table(), "label", TargetKind::Classification).unwrap();
        // x over all 4 rows: mean of (1,3,4) = 8/3; row 1 was null.
        assert!((d.features[1][1] - 8.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn regression_targets_numeric() {
        let t = Table::from_columns(
            "t",
            vec![
                Column::from_floats(Some("f".into()), vec![Some(1.0), Some(2.0)]),
                Column::from_floats(Some("y".into()), vec![Some(10.0), None]),
            ],
        )
        .unwrap();
        let d = encode_table(&t, "y", TargetKind::Regression).unwrap();
        assert_eq!(d.len(), 1, "row with null target dropped");
        assert_eq!(d.targets, vec![10.0]);
        assert_eq!(d.n_classes, None);
    }

    #[test]
    fn select_features_subsets() {
        let d = encode_table(&table(), "label", TargetKind::Classification).unwrap();
        let s = d.select_features(&[1]);
        assert_eq!(s.n_features(), 1);
        assert_eq!(s.feature_names, vec!["x".to_string()]);
        assert_eq!(s.len(), d.len());
    }

    #[test]
    fn missing_target_column_errors() {
        assert!(encode_table(&table(), "nope", TargetKind::Regression).is_err());
    }
}
