//! Deterministic train/validation splitting.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::MlDataset;

/// Split into `(train, validation)` with `test_fraction` of rows held out.
/// The shuffle is seeded, so a given `(dataset, seed)` always produces the
/// same split — required for utility functions to be deterministic across
/// repeated queries.
pub fn train_test_split(data: &MlDataset, test_fraction: f64, seed: u64) -> (MlDataset, MlDataset) {
    let n = data.len();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let n_test = ((n as f64) * test_fraction).round() as usize;
    let n_test = n_test.min(n.saturating_sub(1)).max(usize::from(n > 1));
    let (test_idx, train_idx) = indices.split_at(n_test);
    (data.take_rows(train_idx), data.take_rows(test_idx))
}

/// `k`-fold cross-validation index sets: `(train, validation)` per fold.
pub fn k_folds(n: usize, k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    let k = k.max(2).min(n.max(2));
    let mut indices: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let val: Vec<usize> = indices
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k == f)
            .map(|(_, &idx)| idx)
            .collect();
        let train: Vec<usize> = indices
            .iter()
            .enumerate()
            .filter(|(i, _)| i % k != f)
            .map(|(_, &idx)| idx)
            .collect();
        folds.push((train, val));
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> MlDataset {
        MlDataset {
            features: (0..n).map(|i| vec![i as f64]).collect(),
            feature_names: vec!["x".into()],
            targets: (0..n).map(|i| i as f64).collect(),
            n_classes: None,
        }
    }

    #[test]
    fn split_is_deterministic_and_partitioning() {
        let d = dataset(100);
        let (tr1, te1) = train_test_split(&d, 0.25, 9);
        let (tr2, te2) = train_test_split(&d, 0.25, 9);
        assert_eq!(tr1.targets, tr2.targets);
        assert_eq!(te1.targets, te2.targets);
        assert_eq!(tr1.len() + te1.len(), 100);
        assert_eq!(te1.len(), 25);
        let mut all: Vec<f64> = tr1
            .targets
            .iter()
            .chain(te1.targets.iter())
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, d.targets);
    }

    #[test]
    fn split_never_empties_train() {
        let d = dataset(3);
        let (tr, te) = train_test_split(&d, 0.99, 1);
        assert!(!tr.is_empty());
        assert!(!te.is_empty());
    }

    #[test]
    fn folds_cover_everything() {
        let folds = k_folds(20, 4, 3);
        assert_eq!(folds.len(), 4);
        let mut seen: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..20).collect::<Vec<_>>());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 20);
            assert!(train.iter().all(|i| !val.contains(i)));
        }
    }
}
