//! Bagged random forests (the paper's default task model).

use rand::Rng;
use rand::SeedableRng;

use crate::dataset::MlDataset;
use crate::tree::{DecisionTree, FeatureSampling, TreeConfig, TreeTask};

/// Random-forest hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth config.
    pub tree: TreeConfig,
    /// RNG seed (bootstraps and per-split feature subsets derive from it).
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 12,
            tree: TreeConfig::default(),
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    task: TreeTask,
    n_features: usize,
}

impl RandomForest {
    /// Fit with bootstrap sampling and √-feature subsampling per split.
    pub fn fit(data: &MlDataset, task: TreeTask, config: RandomForestConfig) -> Self {
        let n = data.len();
        let mut trees = Vec::with_capacity(config.n_trees);
        for t in 0..config.n_trees {
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(config.seed.wrapping_add(t as u64 * 0x9E37));
            let indices: Vec<usize> = if n == 0 {
                Vec::new()
            } else {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            };
            trees.push(DecisionTree::fit_on(
                data,
                &indices,
                task,
                config.tree,
                FeatureSampling::Sqrt,
                &mut rng,
            ));
        }
        RandomForest {
            trees,
            task,
            n_features: data.n_features(),
        }
    }

    /// Predict one row: majority vote (classification) or mean (regression).
    pub fn predict(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        match self.task {
            TreeTask::Classification { n_classes } => {
                let mut votes = vec![0usize; n_classes.max(1)];
                for tree in &self.trees {
                    let c = tree.predict(row) as usize;
                    if c < votes.len() {
                        votes[c] += 1;
                    }
                }
                // First-max wins so vote ties break toward the smallest
                // class index deterministically.
                let mut best_cls = 0usize;
                let mut best_votes = 0usize;
                for (c, &v) in votes.iter().enumerate() {
                    if v > best_votes {
                        best_votes = v;
                        best_cls = c;
                    }
                }
                best_cls as f64
            }
            TreeTask::Regression => {
                self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
            }
        }
    }

    /// Predict many rows.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Mean impurity-decrease importance per feature, normalized to sum 1
    /// (all-zero when no split was ever made).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut total = vec![0.0; self.n_features];
        for tree in &self.trees {
            for (i, &imp) in tree.importances().iter().enumerate() {
                total[i] += imp;
            }
        }
        let sum: f64 = total.iter().sum();
        if sum > 0.0 {
            for v in &mut total {
                *v /= sum;
            }
        }
        total
    }

    /// The task the forest was fitted for.
    pub fn task(&self) -> TreeTask {
        self.task
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_dataset(n: usize) -> MlDataset {
        // y = 1 iff 2*x0 + noise-free margin; feature 1 is noise.
        let features: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, ((i * 31) % 17) as f64 / 17.0])
            .collect();
        let targets: Vec<f64> = features
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        MlDataset {
            features,
            feature_names: vec!["signal".into(), "noise".into()],
            targets,
            n_classes: Some(2),
        }
    }

    #[test]
    fn forest_beats_chance_on_separable_data() {
        let d = linear_dataset(200);
        let f = RandomForest::fit(
            &d,
            TreeTask::Classification { n_classes: 2 },
            RandomForestConfig::default(),
        );
        let preds = f.predict_batch(&d.features);
        let acc = preds
            .iter()
            .zip(&d.targets)
            .filter(|(p, y)| (*p - *y).abs() < 0.5)
            .count() as f64
            / d.len() as f64;
        assert!(acc > 0.95, "train accuracy {acc}");
    }

    #[test]
    fn forest_is_deterministic() {
        let d = linear_dataset(100);
        let cfg = RandomForestConfig {
            seed: 42,
            ..Default::default()
        };
        let f1 = RandomForest::fit(&d, TreeTask::Classification { n_classes: 2 }, cfg);
        let f2 = RandomForest::fit(&d, TreeTask::Classification { n_classes: 2 }, cfg);
        assert_eq!(f1.predict_batch(&d.features), f2.predict_batch(&d.features));
    }

    #[test]
    fn importances_normalized_and_informative() {
        let d = linear_dataset(200);
        let f = RandomForest::fit(
            &d,
            TreeTask::Classification { n_classes: 2 },
            RandomForestConfig::default(),
        );
        let imp = f.feature_importances();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1], "signal should dominate noise: {imp:?}");
    }

    #[test]
    fn regression_forest_tracks_mean() {
        let features: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let targets: Vec<f64> = (0..100).map(|i| i as f64 * 2.0).collect();
        let d = MlDataset {
            features,
            feature_names: vec!["x".into()],
            targets,
            n_classes: None,
        };
        let f = RandomForest::fit(&d, TreeTask::Regression, RandomForestConfig::default());
        let p = f.predict(&[50.0]);
        assert!((p - 100.0).abs() < 15.0, "p={p}");
    }

    #[test]
    fn empty_dataset_predicts_zero() {
        let d = MlDataset {
            features: vec![],
            feature_names: vec!["x".into()],
            targets: vec![],
            n_classes: Some(2),
        };
        let f = RandomForest::fit(
            &d,
            TreeTask::Classification { n_classes: 2 },
            RandomForestConfig::default(),
        );
        assert_eq!(f.predict(&[1.0]), 0.0);
    }
}
