//! Feature importance, including ARDA-style random injection.
//!
//! ARDA [37] ranks candidate features by fitting a model after *injecting*
//! random noise features: a real feature matters only if its importance
//! beats the best noise feature. The `iARDA` baseline and Fig. 7's
//! task-specific profiles are built on [`injection_scores`].

use rand::Rng;
use rand::SeedableRng;

use crate::dataset::MlDataset;
use crate::forest::{RandomForest, RandomForestConfig};
use crate::tree::TreeTask;

/// Per-feature injection result.
#[derive(Debug, Clone)]
pub struct InjectionScore {
    /// Feature name.
    pub name: String,
    /// Forest importance of the feature.
    pub importance: f64,
    /// Whether it beat the noise threshold.
    pub selected: bool,
}

/// Compute random-injection importance scores.
///
/// Appends `n_noise` uniform noise columns, fits a forest, and scores each
/// real feature by its importance relative to the *maximum* noise
/// importance (ARDA's τ threshold with the conservative max rule).
pub fn injection_scores(
    data: &MlDataset,
    task: TreeTask,
    n_noise: usize,
    seed: u64,
) -> Vec<InjectionScore> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n_noise = n_noise.max(1);
    let mut augmented = data.clone();
    for k in 0..n_noise {
        augmented.feature_names.push(format!("__noise_{k}"));
        for row in &mut augmented.features {
            row.push(rng.gen_range(0.0..1.0));
        }
    }
    let forest = RandomForest::fit(
        &augmented,
        task,
        RandomForestConfig {
            seed: seed ^ 0x5bd1e995,
            ..Default::default()
        },
    );
    let imp = forest.feature_importances();
    let real = data.n_features();
    let noise_max = imp[real..].iter().copied().fold(0.0f64, f64::max);
    data.feature_names
        .iter()
        .enumerate()
        .map(|(i, name)| InjectionScore {
            name: name.clone(),
            importance: imp[i],
            selected: imp[i] > noise_max,
        })
        .collect()
}

/// Rank feature indices by injection importance, best first.
pub fn rank_by_injection(
    data: &MlDataset,
    task: TreeTask,
    n_noise: usize,
    seed: u64,
) -> Vec<usize> {
    let scores = injection_scores(data, task, n_noise, seed);
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b]
            .importance
            .partial_cmp(&scores[a].importance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> MlDataset {
        // Feature 0 drives the label; feature 1 is a weak copy; feature 2 noise.
        let mut features = Vec::new();
        let mut targets = Vec::new();
        for i in 0..300 {
            let x = (i % 100) as f64 / 100.0;
            features.push(vec![
                x,
                x + ((i * 13) % 7) as f64 * 0.02,
                ((i * 29) % 11) as f64,
            ]);
            targets.push(if x > 0.5 { 1.0 } else { 0.0 });
        }
        MlDataset {
            features,
            feature_names: vec!["signal".into(), "weak".into(), "junk".into()],
            targets,
            n_classes: Some(2),
        }
    }

    #[test]
    fn injection_selects_signal() {
        let scores = injection_scores(&dataset(), TreeTask::Classification { n_classes: 2 }, 3, 0);
        assert!(scores[0].selected, "signal must beat noise: {scores:?}");
        assert!(scores[0].importance > scores[2].importance);
    }

    #[test]
    fn ranking_puts_signal_first() {
        let order = rank_by_injection(&dataset(), TreeTask::Classification { n_classes: 2 }, 3, 0);
        assert_eq!(order[0], 0, "order={order:?}");
    }

    #[test]
    fn injection_is_deterministic() {
        let d = dataset();
        let a = rank_by_injection(&d, TreeTask::Classification { n_classes: 2 }, 3, 9);
        let b = rank_by_injection(&d, TreeTask::Classification { n_classes: 2 }, 3, 9);
        assert_eq!(a, b);
    }
}
