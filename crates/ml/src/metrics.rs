//! Evaluation metrics used as utility scores.
//!
//! Every metric is bounded so that tasks can report `u ∈ [0, 1]` as
//! Definition 5 requires.

/// Fraction of exact matches (classes compared as rounded integers).
pub fn accuracy(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let hits = predictions
        .iter()
        .zip(targets)
        .filter(|(p, y)| (p.round() - y.round()).abs() < 0.5)
        .count();
    hits as f64 / predictions.len() as f64
}

/// Binary precision for positive class `1`.
pub fn precision(predictions: &[f64], targets: &[f64]) -> f64 {
    let tp = predictions
        .iter()
        .zip(targets)
        .filter(|(p, y)| p.round() == 1.0 && y.round() == 1.0)
        .count() as f64;
    let fp = predictions
        .iter()
        .zip(targets)
        .filter(|(p, y)| p.round() == 1.0 && y.round() == 0.0)
        .count() as f64;
    if tp + fp == 0.0 {
        0.0
    } else {
        tp / (tp + fp)
    }
}

/// Binary recall for positive class `1`.
pub fn recall(predictions: &[f64], targets: &[f64]) -> f64 {
    let tp = predictions
        .iter()
        .zip(targets)
        .filter(|(p, y)| p.round() == 1.0 && y.round() == 1.0)
        .count() as f64;
    let fun = predictions
        .iter()
        .zip(targets)
        .filter(|(p, y)| p.round() == 0.0 && y.round() == 1.0)
        .count() as f64;
    if tp + fun == 0.0 {
        0.0
    } else {
        tp / (tp + fun)
    }
}

/// Binary F1 for positive class `1`.
pub fn f1_binary(predictions: &[f64], targets: &[f64]) -> f64 {
    let p = precision(predictions, targets);
    let r = recall(predictions, targets);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Macro-averaged F1 over `n_classes` (one-vs-rest per class).
pub fn f1_macro(predictions: &[f64], targets: &[f64], n_classes: usize) -> f64 {
    if n_classes == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for c in 0..n_classes {
        let bp: Vec<f64> = predictions
            .iter()
            .map(|&p| if p.round() as usize == c { 1.0 } else { 0.0 })
            .collect();
        let bt: Vec<f64> = targets
            .iter()
            .map(|&y| if y.round() as usize == c { 1.0 } else { 0.0 })
            .collect();
        total += f1_binary(&bp, &bt);
    }
    total / n_classes as f64
}

/// Mean absolute error.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len());
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, y)| (p - y).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Root mean squared error.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len());
    if predictions.is_empty() {
        return 0.0;
    }
    (predictions
        .iter()
        .zip(targets)
        .map(|(p, y)| (p - y) * (p - y))
        .sum::<f64>()
        / predictions.len() as f64)
        .sqrt()
}

/// Coefficient of determination, clamped to `[0, 1]` so it can serve as a
/// utility directly.
pub fn r2_clamped(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len());
    if targets.is_empty() {
        return 0.0;
    }
    let mean = targets.iter().sum::<f64>() / targets.len() as f64;
    let ss_tot: f64 = targets.iter().map(|y| (y - mean) * (y - mean)).sum();
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, y)| (p - y) * (p - y))
        .sum();
    if ss_tot < 1e-12 {
        return if ss_res < 1e-12 { 1.0 } else { 0.0 };
    }
    (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
}

/// The paper's regression utility: `1 − MAE` on targets normalized to
/// `[0, 1]` (clamped for safety).
pub fn regression_utility(predictions: &[f64], targets: &[f64]) -> f64 {
    let lo = targets.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = targets.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !lo.is_finite() || !hi.is_finite() || hi - lo < 1e-12 {
        return 0.0;
    }
    let span = hi - lo;
    let norm_pred: Vec<f64> = predictions.iter().map(|p| (p - lo) / span).collect();
    let norm_targ: Vec<f64> = targets.iter().map(|y| (y - lo) / span).collect();
    (1.0 - mae(&norm_pred, &norm_targ)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1.0, 0.0, 1.0], &[1.0, 1.0, 1.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn perfect_f1() {
        let p = [1.0, 0.0, 1.0, 0.0];
        assert_eq!(f1_binary(&p, &p), 1.0);
    }

    #[test]
    fn f1_zero_when_no_positives_predicted() {
        assert_eq!(f1_binary(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn precision_recall_basics() {
        let pred = [1.0, 1.0, 0.0, 0.0];
        let targ = [1.0, 0.0, 1.0, 0.0];
        assert_eq!(precision(&pred, &targ), 0.5);
        assert_eq!(recall(&pred, &targ), 0.5);
    }

    #[test]
    fn macro_f1_averages_classes() {
        let pred = [0.0, 1.0, 2.0];
        let targ = [0.0, 1.0, 2.0];
        assert!((f1_macro(&pred, &targ, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mae_and_rmse() {
        let pred = [1.0, 2.0];
        let targ = [2.0, 4.0];
        assert_eq!(mae(&pred, &targ), 1.5);
        assert!((rmse(&pred, &targ) - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn r2_perfect_and_clamped() {
        let t = [1.0, 2.0, 3.0];
        assert_eq!(r2_clamped(&t, &t), 1.0);
        assert_eq!(
            r2_clamped(&[100.0, -100.0, 50.0], &t),
            0.0,
            "worse than mean clamps to 0"
        );
    }

    #[test]
    fn regression_utility_bounds() {
        let t = [0.0, 10.0];
        assert_eq!(regression_utility(&t, &t), 1.0);
        let u = regression_utility(&[10.0, 0.0], &t);
        assert!((0.0..=1.0).contains(&u));
        assert_eq!(u, 0.0);
    }
}
