//! Dense row-major matrices and a linear solver.
//!
//! Sized for the reproduction's needs: profile-weight learning solves
//! `l × l` systems with `l ≤ ~100` (Lemma 4), and ridge regression solves
//! feature-count-sized systems. Gaussian elimination with partial pivoting
//! is exactly right at this scale.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build from nested rows; panics on ragged input.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged matrix rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// In-place add at an element.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] += v;
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "dimension mismatch in matmul");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.add_at(r, c, a * other.get(k, c));
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "dimension mismatch in matvec");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum())
            .collect()
    }

    /// Gram matrix `Xᵀ X`, exploiting symmetry.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                g.set(i, j, s);
                g.set(j, i, s);
            }
        }
        g
    }

    /// Solve `A x = b` by Gaussian elimination with partial pivoting.
    /// Returns `None` for (near-)singular systems.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve needs a square matrix");
        assert_eq!(self.rows, b.len(), "rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot = col;
            let mut best = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > best {
                    best = v;
                    pivot = r;
                }
            }
            if best < 1e-12 {
                return None;
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                x.swap(col, pivot);
            }
            let diag = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / diag;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut v = x[col];
            for c in (col + 1)..n {
                v -= a[col * n + c] * x[c];
            }
            x[col] = v / a[col * n + col];
        }
        Some(x)
    }
}

/// Ridge solution `(XᵀX + λI)⁻¹ Xᵀ y` — the closed form Lemma 4 analyzes for
/// profile-importance estimation. Returns `None` on singular systems (which
/// λ > 0 prevents in practice).
pub fn ridge_solve(x: &Matrix, y: &[f64], lambda: f64) -> Option<Vec<f64>> {
    assert_eq!(x.rows(), y.len(), "target length mismatch");
    let mut gram = x.gram();
    for i in 0..gram.rows() {
        gram.add_at(i, i, lambda);
    }
    let xty = x.transpose().matvec(y);
    gram.solve(&xty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        // 2x + y = 5 ; x - y = 1  →  x = 2, y = 1
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, -1.0]]);
        let x = a.solve(&[5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn gram_is_xtx() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(x.gram(), x.transpose().matmul(&x));
    }

    #[test]
    fn ridge_recovers_exact_weights_at_zero_noise() {
        // y = 3*x1 - 2*x2, well-conditioned design.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![(i as f64) * 0.1 + 1.0, ((i * 7 % 13) as f64) * 0.2])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1]).collect();
        let x = Matrix::from_rows(&rows);
        let w = ridge_solve(&x, &y, 1e-9).unwrap();
        assert!((w[0] - 3.0).abs() < 1e-4, "w0={}", w[0]);
        assert!((w[1] + 2.0).abs() < 1e-4, "w1={}", w[1]);
    }

    #[test]
    fn ridge_shrinks_with_large_lambda() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = [2.0, 4.0, 6.0];
        let w_small = ridge_solve(&x, &y, 1e-9).unwrap()[0];
        let w_big = ridge_solve(&x, &y, 1e6).unwrap()[0];
        assert!(w_big.abs() < w_small.abs());
    }
}
