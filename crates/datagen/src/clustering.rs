//! Clustering scenario (§VI-A.4): raw materials clustered by satiety
//! score; augmenting the ONI (optimal nutrient intake) score tightens the
//! clusters.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use metam_table::Column;

use crate::scenario::{GroundTruth, Scenario, TaskSpec};

/// Configuration of [`build_clustering`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of ingredients.
    pub n_rows: usize,
    /// Ground-truth categories (also the task's k).
    pub n_categories: usize,
    /// Irrelevant augmentations (the paper's repository yields 8 candidates
    /// in total, one useful).
    pub n_irrelevant_tables: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            seed: 0,
            n_rows: 160,
            n_categories: 4,
            n_irrelevant_tables: 7,
        }
    }
}

const CATEGORIES: &[&str] = &["vegetable", "fruit", "spice", "grain", "dairy", "protein"];

/// Build the clustering scenario: `Din` carries a *noisy* satiety score
/// (categories overlap), while the repository's ONI table carries a tight
/// per-category signal.
pub fn build_clustering(cfg: &ClusteringConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_rows;
    let k = cfg.n_categories.clamp(2, CATEGORIES.len());

    let categories: Vec<usize> = (0..n).map(|i| i % k).collect();
    let names: Vec<String> = (0..n).map(|i| format!("ingredient_{i:03}")).collect();

    // Category centers evenly spaced in [0.1, 0.9].
    let center = |c: usize| 0.1 + 0.8 * (c as f64) / ((k - 1) as f64);

    // Noisy satiety: mostly noise with a weak category component, so
    // satiety alone clusters poorly.
    let satiety: Vec<f64> = categories
        .iter()
        .map(|&c| (0.3 * center(c) + 0.7 * rng.gen_range(0.0..1.0)).clamp(0.0, 1.0))
        .collect();
    // ONI: centers ± 0.02 (tight).
    let oni: Vec<f64> = categories
        .iter()
        .map(|&c| (center(c) + rng.gen_range(-0.02..0.02)).clamp(0.0, 1.0))
        .collect();

    let mut din = crate::aligned_table(
        "raw_materials",
        vec![
            Column::from_strings(
                Some("ingredient".to_string()),
                names.iter().cloned().map(Some).collect(),
            ),
            Column::from_floats(
                Some("satiety_score".to_string()),
                satiety.iter().map(|&v| Some(v)).collect(),
            ),
        ],
    );
    din.source = "health-blog".to_string();

    let mut tables = Vec::new();
    let mut gt = GroundTruth::default();

    // The useful ONI table.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut oni_table = crate::aligned_table(
        "nutrient_intake",
        vec![
            Column::from_strings(
                Some("ingredient".to_string()),
                order.iter().map(|&i| Some(names[i].clone())).collect(),
            ),
            Column::from_floats(
                Some("oni_score".to_string()),
                order.iter().map(|&i| Some(oni[i])).collect(),
            ),
        ],
    );
    oni_table.source = "health-blog".to_string();
    tables.push(oni_table);
    gt.mark("nutrient_intake", "oni_score", 1.0);

    // Irrelevant tables: wide-spread noise that would *hurt* the radius.
    for t in 0..cfg.n_irrelevant_tables {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut table = crate::aligned_table(
            format!("pantry_{t:02}"),
            vec![
                Column::from_strings(
                    Some("ingredient".to_string()),
                    order.iter().map(|&i| Some(names[i].clone())).collect(),
                ),
                Column::from_floats(
                    Some(format!("shelf_{t}")),
                    (0..n).map(|_| Some(rng.gen_range(0.0..1.0))).collect(),
                ),
            ],
        );
        table.source = "kaggle".to_string();
        tables.push(table);
    }

    Scenario {
        name: "ingredients_clustering".to_string(),
        din,
        tables: tables.into_iter().map(std::sync::Arc::new).collect(),
        spec: TaskSpec::Clustering {
            k,
            truth: categories,
        },
        ground_truth: gt,
        union_tables: Vec::new(),
        eval_table: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oni_is_tight_per_category() {
        let s = build_clustering(&ClusteringConfig::default());
        let oni_table = s
            .tables
            .iter()
            .find(|t| t.name == "nutrient_intake")
            .unwrap();
        let col = oni_table.column_by_name("oni_score").unwrap();
        let vals: Vec<f64> = col.as_f64().into_iter().flatten().collect();
        // Values concentrate near k=4 distinct centers.
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let gaps: Vec<f64> = sorted.windows(2).map(|w| w[1] - w[0]).collect();
        let big_gaps = gaps.iter().filter(|&&g| g > 0.1).count();
        assert_eq!(big_gaps, 3, "4 tight bands → 3 large gaps");
    }

    #[test]
    fn scenario_has_eight_candidate_tables() {
        let s = build_clustering(&ClusteringConfig::default());
        assert_eq!(s.tables.len(), 8, "paper: 8 augmentation candidates");
        match &s.spec {
            TaskSpec::Clustering { k, truth } => {
                assert_eq!(*k, 4);
                assert_eq!(truth.len(), s.din.nrows());
            }
            other => panic!("wrong spec {other:?}"),
        }
    }
}
