//! Scenario, task-spec and ground-truth types shared by all generators.

use std::collections::BTreeMap;
use std::sync::Arc;

use metam_table::Table;

/// What downstream task a scenario drives. Pure data — `metam-tasks`
/// instantiates the actual [`Task`](../../metam_core/task/trait.Task.html).
#[derive(Debug, Clone, PartialEq)]
pub enum TaskSpec {
    /// Random-forest classification on a (binary, string-labelled) target.
    Classification {
        /// Target column name in `din`.
        target: String,
    },
    /// Grid-search AutoML classification (Fig. 4a).
    AutoMlClassification {
        /// Target column name in `din`.
        target: String,
    },
    /// Random-forest regression; utility = 1 − normalized MAE.
    Regression {
        /// Target column name in `din`.
        target: String,
    },
    /// What-if analysis: which attributes react to an update of
    /// `intervened`? Utility = fraction of `affected` recovered.
    WhatIf {
        /// Column (in `din`) being hypothetically updated.
        intervened: String,
        /// Base names of the truly affected attributes (matched against
        /// augmented column names).
        affected: Vec<String>,
    },
    /// How-to analysis: which attributes drive `outcome`? Utility =
    /// fraction of `drivers` recovered.
    HowTo {
        /// Outcome column in `din`.
        outcome: String,
        /// Base names of the true causal drivers.
        drivers: Vec<String>,
    },
    /// Fairness-aware classification (sensitive-correlated features are
    /// dropped before training).
    FairClassification {
        /// Target column in `din`.
        target: String,
        /// Sensitive attribute column in `din`.
        sensitive: String,
    },
    /// Entity linking against a synthetic knowledge graph.
    EntityLinking {
        /// Column of `din` holding the ambiguous mentions.
        mention: String,
        /// Ground-truth entity id (`name|state`) per `din` row.
        truth: Vec<String>,
    },
    /// k-means clustering scored by purity against ground-truth categories.
    Clustering {
        /// Number of clusters.
        k: usize,
        /// Ground-truth category per `din` row (held by the task's
        /// evaluation harness, like the paper's).
        truth: Vec<usize>,
    },
    /// Union-based classification (Fig. 4b): augmentations are markers
    /// selecting record-addition tables held by the task.
    Unions {
        /// Target column in `din`.
        target: String,
    },
}

impl TaskSpec {
    /// The target column name, for supervised specs.
    pub fn target_name(&self) -> Option<&str> {
        match self {
            TaskSpec::Classification { target }
            | TaskSpec::AutoMlClassification { target }
            | TaskSpec::Regression { target }
            | TaskSpec::FairClassification { target, .. }
            | TaskSpec::Unions { target } => Some(target),
            TaskSpec::HowTo { outcome, .. } => Some(outcome),
            _ => None,
        }
    }

    /// Whether the supervised target is categorical.
    pub fn is_classification(&self) -> bool {
        matches!(
            self,
            TaskSpec::Classification { .. }
                | TaskSpec::AutoMlClassification { .. }
                | TaskSpec::FairClassification { .. }
                | TaskSpec::Unions { .. }
        )
    }
}

/// Planted relevance information.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Relevance in `[0, 1]` keyed by `(table name, column name)`; columns
    /// not present are irrelevant (0).
    pub relevant: BTreeMap<(String, String), f64>,
    /// Names of tables whose join keys were deliberately corrupted.
    pub erroneous_tables: Vec<String>,
}

impl GroundTruth {
    /// Mark a column relevant.
    pub fn mark(&mut self, table: impl Into<String>, column: impl Into<String>, strength: f64) {
        self.relevant
            .insert((table.into(), column.into()), strength.clamp(0.0, 1.0));
    }

    /// Relevance of a `(table, column)` pair.
    pub fn relevance(&self, table: &str, column: &str) -> f64 {
        if self.erroneous_tables.iter().any(|t| t == table) {
            return 0.0;
        }
        self.relevant
            .get(&(table.to_string(), column.to_string()))
            .copied()
            .unwrap_or(0.0)
    }

    /// Does the pair identify a planted ground-truth augmentation?
    pub fn is_relevant(&self, table: &str, column: &str) -> bool {
        self.relevance(table, column) > 0.0
    }
}

/// A complete experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// The input dataset.
    pub din: Table,
    /// The repository tables (shareable with index/materializer).
    pub tables: Vec<Arc<Table>>,
    /// The downstream task description.
    pub spec: TaskSpec,
    /// Planted relevance.
    pub ground_truth: GroundTruth,
    /// Auxiliary tables interpreted by the task itself (only used by the
    /// Unions spec: the record-addition tables, aligned with marker ids).
    pub union_tables: Vec<Table>,
    /// Fixed held-out evaluation table for tasks that score on a dedicated
    /// validation set (the Unions task).
    pub eval_table: Option<Table>,
}

impl Scenario {
    /// Index of the target column in `din`, when supervised.
    pub fn target_column_index(&self) -> Option<usize> {
        self.spec
            .target_name()
            .and_then(|t| self.din.column_index(t).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_lookup() {
        let mut gt = GroundTruth::default();
        gt.mark("crime", "rate", 0.8);
        gt.erroneous_tables.push("bad_join".to_string());
        gt.mark("bad_join", "x", 0.9);
        assert_eq!(gt.relevance("crime", "rate"), 0.8);
        assert_eq!(gt.relevance("crime", "other"), 0.0);
        assert_eq!(
            gt.relevance("bad_join", "x"),
            0.0,
            "erroneous tables are never relevant"
        );
        assert!(gt.is_relevant("crime", "rate"));
    }

    #[test]
    fn task_spec_helpers() {
        let c = TaskSpec::Classification { target: "y".into() };
        assert_eq!(c.target_name(), Some("y"));
        assert!(c.is_classification());
        let r = TaskSpec::Regression { target: "y".into() };
        assert!(!r.is_classification());
        let w = TaskSpec::WhatIf {
            intervened: "x".into(),
            affected: vec![],
        };
        assert_eq!(w.target_name(), None);
    }
}
