//! Fair-classification scenario (§VI-A.4, German-credit style).
//!
//! The trap the paper describes: features highly correlated with the
//! target are also highly correlated with the *sensitive* attribute (so a
//! fairness-aware pipeline discards them), while fair features with low
//! target correlation don't help — only a *combination* of profile signals
//! finds the genuinely useful-and-fair augmentations.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use metam_table::Column;

use crate::keyspace::ids;
use crate::scenario::{GroundTruth, Scenario, TaskSpec};

/// Configuration of [`build_fairness`].
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of individuals.
    pub n_rows: usize,
    /// Unfair candidate tables (high target + high sensitive correlation).
    pub n_unfair_tables: usize,
    /// Fair-but-useless candidate tables (low correlation with both).
    pub n_useless_tables: usize,
    /// Fair *and* useful tables (the planted answer).
    pub n_useful_tables: usize,
}

impl Default for FairnessConfig {
    fn default() -> Self {
        FairnessConfig {
            seed: 0,
            n_rows: 500,
            n_unfair_tables: 25,
            n_useless_tables: 25,
            n_useful_tables: 2,
        }
    }
}

fn unit<R: Rng>(rng: &mut R) -> f64 {
    rng.gen_range(0.0..1.0)
}

/// Build the fairness scenario.
pub fn build_fairness(cfg: &FairnessConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_rows;
    let keys = ids("person", n);

    // Sensitive attribute (age group) and an independent merit signal.
    let sensitive: Vec<f64> = (0..n).map(|_| unit(&mut rng)).collect();
    let merit: Vec<f64> = (0..n).map(|_| unit(&mut rng)).collect();
    // Income depends on both; the label is binarized income.
    let income: Vec<f64> = (0..n)
        .map(|i| 0.45 * sensitive[i] + 0.45 * merit[i] + 0.1 * unit(&mut rng))
        .collect();
    let mut sorted = income.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[n / 2];

    let mut din = crate::aligned_table(
        "credit",
        vec![
            Column::from_strings(
                Some("person_id".to_string()),
                keys.iter().cloned().map(Some).collect(),
            ),
            Column::from_floats(
                Some("age".to_string()),
                sensitive.iter().map(|&v| Some(18.0 + v * 50.0)).collect(),
            ),
            Column::from_floats(
                Some("account_balance".to_string()),
                (0..n).map(|_| Some(unit(&mut rng))).collect(),
            ),
            Column::from_strings(
                Some("income_label".to_string()),
                income
                    .iter()
                    .map(|&v| {
                        Some(if v > median {
                            "high".to_string()
                        } else {
                            "low".to_string()
                        })
                    })
                    .collect(),
            ),
        ],
    );
    din.source = "kaggle".to_string();

    let mut tables = Vec::new();
    let mut gt = GroundTruth::default();

    let mut push_table = |name: String, col: String, values: Vec<f64>, rng: &mut StdRng| {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        let mut t = crate::aligned_table(
            &name,
            vec![
                Column::from_strings(
                    Some("person_id".to_string()),
                    order.iter().map(|&i| Some(keys[i].clone())).collect(),
                ),
                Column::from_floats(Some(col), order.iter().map(|&i| Some(values[i])).collect()),
            ],
        );
        t.source = "kaggle".to_string();
        tables.push(t);
    };

    // Unfair: tracks sensitive (and hence income) closely.
    for t in 0..cfg.n_unfair_tables {
        let values: Vec<f64> = (0..n)
            .map(|i| 0.9 * sensitive[i] + 0.1 * unit(&mut rng))
            .collect();
        push_table(
            format!("profile_{t:02}"),
            format!("score_{t}"),
            values,
            &mut rng,
        );
    }
    // Fair but useless.
    for t in 0..cfg.n_useless_tables {
        let values: Vec<f64> = (0..n).map(|_| unit(&mut rng)).collect();
        push_table(
            format!("hobby_{t:02}"),
            format!("level_{t}"),
            values,
            &mut rng,
        );
    }
    // Fair and useful: tracks merit only.
    for t in 0..cfg.n_useful_tables {
        let values: Vec<f64> = (0..n)
            .map(|i| 0.85 * merit[i] + 0.15 * unit(&mut rng))
            .collect();
        let name = format!("employment_{t:02}");
        let col = format!("tenure_{t}");
        gt.mark(&name, &col, 1.0);
        push_table(name, col, values, &mut rng);
    }

    Scenario {
        name: "fair_credit".to_string(),
        din,
        tables: tables.into_iter().map(std::sync::Arc::new).collect(),
        spec: TaskSpec::FairClassification {
            target: "income_label".to_string(),
            sensitive: "age".to_string(),
        },
        ground_truth: gt,
        union_tables: Vec::new(),
        eval_table: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| (x - ma) * (y - mb))
            .sum::<f64>()
            / n;
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n;
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n;
        cov / (va.sqrt() * vb.sqrt())
    }

    fn joined(s: &Scenario, table: &str, col: &str) -> Vec<f64> {
        let t = s.tables.iter().find(|t| t.name == table).unwrap();
        let c = metam_table::join::left_join_column(&s.din, 0, t, 0, t.column_index(col).unwrap())
            .unwrap();
        c.as_f64().into_iter().map(|v| v.unwrap_or(0.0)).collect()
    }

    #[test]
    fn unfair_features_track_sensitive() {
        let s = build_fairness(&FairnessConfig::default());
        let age = s
            .din
            .column_by_name("age")
            .unwrap()
            .as_f64()
            .into_iter()
            .map(|v| v.unwrap())
            .collect::<Vec<_>>();
        let unfair = joined(&s, "profile_00", "score_0");
        assert!(
            corr(&age, &unfair).abs() > 0.7,
            "unfair must correlate with sensitive"
        );
        let useful = joined(&s, "employment_00", "tenure_0");
        assert!(corr(&age, &useful).abs() < 0.2, "useful must be fair");
    }

    #[test]
    fn useful_features_predict_income() {
        let s = build_fairness(&FairnessConfig::default());
        let label: Vec<f64> = {
            let col = s.din.column_by_name("income_label").unwrap();
            (0..col.len())
                .map(|i| match col.get(i) {
                    metam_table::Value::Str(v) if v == "high" => 1.0,
                    _ => 0.0,
                })
                .collect()
        };
        let useful = joined(&s, "employment_00", "tenure_0");
        assert!(corr(&label, &useful) > 0.3);
        let useless = joined(&s, "hobby_00", "level_0");
        assert!(corr(&label, &useless).abs() < 0.15);
    }

    #[test]
    fn ground_truth_marks_only_useful() {
        let s = build_fairness(&FairnessConfig::default());
        assert!(s.ground_truth.is_relevant("employment_00", "tenure_0"));
        assert!(!s.ground_truth.is_relevant("profile_00", "score_0"));
        assert!(!s.ground_truth.is_relevant("hobby_00", "level_0"));
    }
}
