//! Entity-linking scenario (§VI-A.4): ambiguous city mentions that need a
//! disambiguating state column from the repository.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use metam_table::Column;

use crate::keyspace::{ids, CITY_NAMES, STATES};
use crate::scenario::{GroundTruth, Scenario, TaskSpec};

/// Configuration of [`build_linking`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkingConfig {
    /// Master seed.
    pub seed: u64,
    /// Rows in the CDC-style city statistics table.
    pub n_rows: usize,
    /// How many states each ambiguous city name appears in.
    pub ambiguity: usize,
    /// Irrelevant joinable tables (the paper's repository yields ≈185
    /// candidates in total).
    pub n_irrelevant_tables: usize,
}

impl Default for LinkingConfig {
    fn default() -> Self {
        LinkingConfig {
            seed: 0,
            n_rows: 300,
            ambiguity: 3,
            n_irrelevant_tables: 60,
        }
    }
}

/// Build the linking scenario: `Din` has (city_id, city_name, some stats);
/// the repository holds a `city_states` table mapping city_id → state (the
/// useful augmentation) plus noise tables.
pub fn build_linking(cfg: &LinkingConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_rows;
    let keys = ids("city", n);

    // Assign each row a (name, state) entity; most names ambiguous.
    let mut names = Vec::with_capacity(n);
    let mut states = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for i in 0..n {
        let name = CITY_NAMES[i % CITY_NAMES.len()];
        let state = STATES[(i / CITY_NAMES.len()) % cfg.ambiguity.clamp(1, STATES.len())];
        names.push(name.to_string());
        states.push(state.to_string());
        truth.push(format!("{name}|{state}"));
    }

    let mut din = crate::aligned_table(
        "cdc_city_stats",
        vec![
            Column::from_strings(
                Some("city_id".to_string()),
                keys.iter().cloned().map(Some).collect(),
            ),
            Column::from_strings(
                Some("city_name".to_string()),
                names.iter().cloned().map(Some).collect(),
            ),
            Column::from_floats(
                Some("obesity_rate".to_string()),
                (0..n).map(|_| Some(rng.gen_range(0.1..0.5))).collect(),
            ),
        ],
    );
    din.source = "cdc".to_string();

    let mut gt = GroundTruth::default();
    let mut tables = Vec::new();

    // The useful table: city_id → state abbreviation. Built first, but
    // *inserted mid-repository* below so no method gets a free ride from
    // enumeration order.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut state_table = crate::aligned_table(
        "city_states",
        vec![
            Column::from_strings(
                Some("city_id".to_string()),
                order.iter().map(|&i| Some(keys[i].clone())).collect(),
            ),
            Column::from_strings(
                Some("state_abbrev".to_string()),
                order.iter().map(|&i| Some(states[i].clone())).collect(),
            ),
        ],
    );
    state_table.source = "census".to_string();
    gt.mark("city_states", "state_abbrev", 1.0);

    // Distractors: joinable but useless columns.
    for t in 0..cfg.n_irrelevant_tables {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut table = crate::aligned_table(
            format!("city_misc_{t:03}"),
            vec![
                Column::from_strings(
                    Some("city_id".to_string()),
                    order.iter().map(|&i| Some(keys[i].clone())).collect(),
                ),
                Column::from_floats(
                    Some(format!("stat_{t}")),
                    (0..n).map(|_| Some(rng.gen_range(0.0..1.0))).collect(),
                ),
                Column::from_strings(
                    Some(format!("tag_{t}")),
                    (0..n)
                        .map(|i| Some(format!("t{}", (i * (t + 3)) % 11)))
                        .collect(),
                ),
            ],
        );
        table.source = "kaggle".to_string();
        tables.push(table);
    }

    // Insert the useful table in the middle of the distractors.
    let position = tables.len() / 2;
    tables.insert(position, state_table);

    Scenario {
        name: "entity_linking".to_string(),
        din,
        tables: tables.into_iter().map(std::sync::Arc::new).collect(),
        spec: TaskSpec::EntityLinking {
            mention: "city_name".to_string(),
            truth,
        },
        ground_truth: gt,
        union_tables: Vec::new(),
        eval_table: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_aligns_with_rows() {
        let s = build_linking(&LinkingConfig::default());
        match &s.spec {
            TaskSpec::EntityLinking { truth, .. } => {
                assert_eq!(truth.len(), s.din.nrows());
                assert!(truth[0].contains('|'));
            }
            other => panic!("wrong spec {other:?}"),
        }
    }

    #[test]
    fn names_are_ambiguous() {
        let s = build_linking(&LinkingConfig::default());
        match &s.spec {
            TaskSpec::EntityLinking { truth, .. } => {
                // The same city name must map to several states.
                let birmingham: std::collections::BTreeSet<&str> = truth
                    .iter()
                    .filter(|t| t.starts_with("Birmingham|"))
                    .map(String::as_str)
                    .collect();
                assert!(birmingham.len() >= 2, "ambiguity required: {birmingham:?}");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn state_table_is_marked_relevant() {
        let s = build_linking(&LinkingConfig::default());
        assert!(s.ground_truth.is_relevant("city_states", "state_abbrev"));
        assert_eq!(s.tables.len(), 1 + 60);
    }
}
