//! The semi-synthetic protocol of Fig. 5 (§VI-A.3).
//!
//! The paper samples five random augmentations for a random repository
//! table and synthesizes a new target column in that table from them, then
//! averages results over 100 instantiations. We reproduce the protocol by
//! parameterizing the supervised builder: each instantiation plants a fresh
//! 5-signal target with a fresh seed, so "the augmentations that generated
//! the target" are exactly the planted ground truth.

use crate::scenario::Scenario;
use crate::supervised::{build_supervised, SupervisedConfig};

/// One semi-synthetic instantiation (classification flavour).
pub fn semisynthetic_classification(instance: u64) -> Scenario {
    build_supervised(&SupervisedConfig {
        seed: 0x5EED_0000 + instance,
        n_rows: 400,
        n_informative: 5,
        n_duplicates: 1,
        n_irrelevant_tables: 25,
        n_erroneous_tables: 20,
        n_redundant_tables: 15,
        classification: true,
        name: format!("semisynthetic_cls_{instance}"),
        ..Default::default()
    })
}

/// One semi-synthetic instantiation (how-to / causal flavour: regression
/// target driven by the planted attributes, which the paper treats as the
/// outcome variable for how-to analysis).
pub fn semisynthetic_regression(instance: u64) -> Scenario {
    build_supervised(&SupervisedConfig {
        seed: 0x5EED_1000 + instance,
        n_rows: 400,
        n_informative: 5,
        n_duplicates: 1,
        n_irrelevant_tables: 25,
        n_erroneous_tables: 20,
        n_redundant_tables: 15,
        classification: false,
        name: format!("semisynthetic_reg_{instance}"),
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiations_differ() {
        let a = semisynthetic_classification(0);
        let b = semisynthetic_classification(1);
        assert_ne!(a.din, b.din);
        assert_eq!(a.tables.len(), b.tables.len());
    }

    #[test]
    fn five_signals_planted() {
        let s = semisynthetic_classification(3);
        let n_relevant_tables: std::collections::BTreeSet<&str> = s
            .ground_truth
            .relevant
            .keys()
            .map(|(t, _)| t.as_str())
            .collect();
        // 5 informative + 5 duplicates.
        assert_eq!(n_relevant_tables.len(), 10);
    }
}
