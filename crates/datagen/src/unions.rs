//! Unions scenario (Fig. 4b): record-addition augmentations for a rent
//! prediction task.
//!
//! Union candidates cannot ride the join-path machinery directly, so each
//! candidate is represented by a joinable *marker* table; the Unions task
//! (in `metam-tasks`) reads which marker columns are present and unions the
//! corresponding record tables into `Din` before training. Good candidates
//! add in-distribution records (more training data → better F1); bad
//! candidates add shifted records that mislead the model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metam_table::{Column, Table};

use crate::keyspace::ids;
use crate::scenario::{GroundTruth, Scenario, TaskSpec};

/// Configuration of [`build_unions`].
#[derive(Debug, Clone, PartialEq)]
pub struct UnionsConfig {
    /// Master seed.
    pub seed: u64,
    /// Rows in the base (small) training table.
    pub n_base_rows: usize,
    /// Rows per union candidate.
    pub rows_per_candidate: usize,
    /// In-distribution (useful) union candidates.
    pub n_good: usize,
    /// Distribution-shifted (harmful) union candidates.
    pub n_bad: usize,
}

impl Default for UnionsConfig {
    fn default() -> Self {
        UnionsConfig {
            seed: 0,
            n_base_rows: 70,
            rows_per_candidate: 150,
            n_good: 4,
            n_bad: 12,
        }
    }
}

/// Rent rows: features (sqft, rooms, distance) → label high/low.
/// `flip_prob` corrupts labels to simulate out-of-distribution records —
/// a batch from a different market whose price structure disagrees.
fn rent_rows(
    n: usize,
    flip_prob: f64,
    rng: &mut StdRng,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<String>) {
    let mut sqft = Vec::with_capacity(n);
    let mut rooms = Vec::with_capacity(n);
    let mut dist = Vec::with_capacity(n);
    let mut label = Vec::with_capacity(n);
    for _ in 0..n {
        let s = rng.gen_range(0.2..1.0);
        let r = rng.gen_range(1.0..5.0);
        let d = rng.gen_range(0.0..1.0);
        let score = 0.35 * s + 0.1 * r / 5.0 - 0.2 * d + 0.12 * rng.gen_range(-1.0..1.0);
        let mut high = score > 0.22;
        if rng.gen_range(0.0..1.0) < flip_prob {
            high = !high;
        }
        sqft.push(s);
        rooms.push(r);
        dist.push(d);
        label.push(if high {
            "high".to_string()
        } else {
            "low".to_string()
        });
    }
    (sqft, rooms, dist, label)
}

fn rent_table(name: &str, n: usize, flip_prob: f64, rng: &mut StdRng) -> Table {
    let (sqft, rooms, dist, label) = rent_rows(n, flip_prob, rng);
    let mut t = crate::aligned_table(
        name,
        vec![
            Column::from_floats(
                Some("sqft".to_string()),
                sqft.into_iter().map(Some).collect(),
            ),
            Column::from_floats(
                Some("rooms".to_string()),
                rooms.into_iter().map(Some).collect(),
            ),
            Column::from_floats(
                Some("subway_distance".to_string()),
                dist.into_iter().map(Some).collect(),
            ),
            Column::from_strings(
                Some("rent_label".to_string()),
                label.into_iter().map(Some).collect(),
            ),
        ],
    );
    t.source = "nyc-open-data".to_string();
    t
}

/// Build the unions scenario. `tables` holds one *marker* table per union
/// candidate (so discovery/materialization work unchanged); the actual
/// record tables live in `Scenario::union_tables`, indexed by marker id.
pub fn build_unions(cfg: &UnionsConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Fixed in-distribution evaluation set, held by the task (the paper's
    // validation dataset): big enough that utility moves reflect real
    // generalization changes, not split luck.
    let eval_table = rent_table("nyc_rent_eval", 500, 0.0, &mut rng);
    let mut din = rent_table("nyc_rent", cfg.n_base_rows, 0.0, &mut rng);
    // A row-id key the marker tables join on.
    let keys = ids("row", cfg.n_base_rows);
    din.add_column(Column::from_strings(
        Some("row_id".to_string()),
        keys.iter().cloned().map(Some).collect(),
    ))
    .expect("row count matches"); // metam-analyze: allow(panic-in-lib): key column is built from din's own row count

    let n_candidates = cfg.n_good + cfg.n_bad;
    let mut marker_tables = Vec::with_capacity(n_candidates);
    let mut union_tables = Vec::with_capacity(n_candidates);
    let mut gt = GroundTruth::default();

    for c in 0..n_candidates {
        let good = c < cfg.n_good;
        let name = format!("listings_batch_{c:02}");
        // Marker table: row_id → constant flag column. The flag column name
        // encodes the batch so the task can map marker → union table.
        let marker_col = format!("union_marker_{c}");
        let mut marker = crate::aligned_table(
            &name,
            vec![
                Column::from_strings(
                    Some("row_id".to_string()),
                    keys.iter().cloned().map(Some).collect(),
                ),
                Column::from_floats(
                    Some(marker_col.clone()),
                    (0..cfg.n_base_rows)
                        .map(|i| Some((c * 1000 + i % 7) as f64))
                        .collect(),
                ),
            ],
        );
        marker.source = "nyc-open-data".to_string();
        marker_tables.push(marker);

        let flip_prob = if good { 0.0 } else { rng.gen_range(0.35..0.5) };
        union_tables.push(rent_table(
            &name,
            cfg.rows_per_candidate,
            flip_prob,
            &mut rng,
        ));
        if good {
            gt.mark(&name, &marker_col, 1.0);
        }
    }

    Scenario {
        name: "nyc_rent_unions".to_string(),
        din,
        tables: marker_tables.into_iter().map(std::sync::Arc::new).collect(),
        spec: TaskSpec::Unions {
            target: "rent_label".to_string(),
        },
        ground_truth: gt,
        union_tables,
        eval_table: Some(eval_table),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_marker_per_union_candidate() {
        let s = build_unions(&UnionsConfig::default());
        assert_eq!(s.tables.len(), 16);
        assert_eq!(s.union_tables.len(), 16);
        assert!(matches!(s.spec, TaskSpec::Unions { .. }));
    }

    #[test]
    fn union_tables_share_schema_with_din() {
        let s = build_unions(&UnionsConfig::default());
        for t in &s.union_tables {
            assert!(t.column_by_name("rent_label").is_ok());
            assert!(t.column_by_name("sqft").is_ok());
        }
    }

    #[test]
    fn good_batches_marked_relevant() {
        let s = build_unions(&UnionsConfig::default());
        assert!(s
            .ground_truth
            .is_relevant("listings_batch_00", "union_marker_0"));
        assert!(!s
            .ground_truth
            .is_relevant("listings_batch_15", "union_marker_15"));
    }
}
