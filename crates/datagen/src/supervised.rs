//! The workhorse generator: supervised (classification / regression)
//! scenarios with planted signal tables, near-duplicates, irrelevant noise
//! and erroneous joins.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use metam_table::{Column, Table};

use crate::keyspace::{permute_keys, zipcodes};
use crate::scenario::{GroundTruth, Scenario, TaskSpec};

/// Flavour names for informative tables, echoing the paper's anecdotes
/// (Walmart presence, taxi trips, crime stats, grocery stores…).
const INFORMATIVE_NAMES: &[&str] = &[
    "crime_stats",
    "taxi_trips",
    "walmart_presence",
    "grocery_stores",
    "income_levels",
    "school_ratings",
    "air_quality",
    "transit_access",
    "park_coverage",
    "restaurant_density",
];

/// Configuration of [`build_supervised`].
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisedConfig {
    /// Master seed.
    pub seed: u64,
    /// Rows in `Din` (= size of the join-key domain).
    pub n_rows: usize,
    /// Number of planted informative signals / tables.
    pub n_informative: usize,
    /// Near-duplicate tables per informative table (property P2 fodder).
    pub n_duplicates: usize,
    /// Irrelevant (pure-noise) tables.
    pub n_irrelevant_tables: usize,
    /// Erroneous tables (signal present but join keys permuted).
    pub n_erroneous_tables: usize,
    /// Redundant decoy tables: columns highly correlated with the target
    /// *through information `Din` already has* (a noisy copy of a base
    /// feature). They rank top under a single correlation profile yet add
    /// ~no utility — the trap that defeats single-profile ranking (§III-A).
    pub n_redundant_tables: usize,
    /// Extra noise columns inside every repository table.
    pub extra_cols_per_table: usize,
    /// Fraction of the key domain covered by each repository table.
    pub key_coverage: f64,
    /// Noise on the target relative to the signal.
    pub noise: f64,
    /// Probability of a missing cell in repository tables.
    pub missing_ratio: f64,
    /// Classification (string label) vs regression (numeric target).
    pub classification: bool,
    /// Scenario name.
    pub name: String,
}

impl Default for SupervisedConfig {
    fn default() -> Self {
        SupervisedConfig {
            seed: 0,
            n_rows: 600,
            n_informative: 3,
            n_duplicates: 1,
            n_irrelevant_tables: 10,
            n_erroneous_tables: 5,
            n_redundant_tables: 0,
            extra_cols_per_table: 2,
            key_coverage: 0.95,
            noise: 0.35,
            missing_ratio: 0.03,
            classification: true,
            name: "supervised".to_string(),
        }
    }
}

fn mix(seed: u64, a: u64, b: u64) -> f64 {
    let mut z = seed ^ a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    z as f64 / u64::MAX as f64
}

/// The latent signal `s_j(key_index) ∈ [0, 1]`.
fn signal(seed: u64, j: usize, key_index: usize) -> f64 {
    mix(seed, (j as u64) + 1, key_index as u64)
}

/// Signal weights: descending, normalized to sum 1.
fn weights(k: usize) -> Vec<f64> {
    let raw: Vec<f64> = (0..k).map(|j| 1.0 / (1.0 + j as f64 * 0.6)).collect();
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

fn maybe_missing<R: Rng>(v: f64, ratio: f64, rng: &mut R) -> Option<f64> {
    if rng.gen_range(0.0..1.0) < ratio {
        None
    } else {
        Some(v)
    }
}

/// A repository table over a subset of keys: one key column plus the given
/// value columns (already aligned with the chosen key subset).
#[allow(clippy::too_many_arguments)]
fn repo_table<R: Rng>(
    name: &str,
    source: &str,
    keys: &[String],
    columns: Vec<(String, Vec<f64>)>,
    coverage: f64,
    missing: f64,
    permute: bool,
    rng: &mut R,
) -> Table {
    let n = keys.len();
    let take = ((n as f64) * coverage).round().max(1.0) as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    order.truncate(take);

    let mut key_values: Vec<String> = order.iter().map(|&i| keys[i].clone()).collect();
    if permute {
        key_values = permute_keys(&key_values, rng);
    }
    let mut cols = vec![Column::from_strings(
        Some("zipcode".to_string()),
        key_values.into_iter().map(Some).collect(),
    )];
    for (cname, values) in columns {
        let data: Vec<Option<f64>> = order
            .iter()
            .map(|&i| maybe_missing(values[i], missing, rng))
            .collect();
        cols.push(Column::from_floats(Some(cname), data));
    }
    let mut t = crate::aligned_table(name, cols);
    t.source = source.to_string();
    t
}

/// Build a supervised scenario. See [`SupervisedConfig`] for the knobs.
pub fn build_supervised(cfg: &SupervisedConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = cfg.n_rows;
    let keys = zipcodes(n);
    let w = weights(cfg.n_informative.max(1));

    // Continuous target: weighted signal sum + noise.
    let y_cont: Vec<f64> = (0..n)
        .map(|i| {
            let s: f64 = (0..cfg.n_informative)
                .map(|j| w[j] * signal(cfg.seed, j, i))
                .sum();
            s + cfg.noise * (mix(cfg.seed ^ 0xABCD, 0, i as u64) - 0.5)
        })
        .collect();
    let mut sorted = y_cont.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = sorted[n / 2];

    // Din: key + two base features (one weakly informative, one junk) + target.
    let base1: Vec<Option<f64>> = (0..n)
        .map(|i| Some(0.4 * signal(cfg.seed, 0, i) + 0.6 * mix(cfg.seed ^ 0x11, 1, i as u64)))
        .collect();
    let base2: Vec<Option<f64>> = (0..n)
        .map(|i| Some(mix(cfg.seed ^ 0x22, 2, i as u64)))
        .collect();
    let target_col = if cfg.classification {
        Column::from_strings(
            Some("label".to_string()),
            y_cont
                .iter()
                .map(|&y| {
                    Some(if y > median {
                        "high".to_string()
                    } else {
                        "low".to_string()
                    })
                })
                .collect(),
        )
    } else {
        Column::from_floats(
            Some("label".to_string()),
            y_cont.iter().map(|&y| Some(y)).collect(),
        )
    };
    let din = {
        let mut t = crate::aligned_table(
            &cfg.name,
            vec![
                Column::from_strings(
                    Some("zipcode".to_string()),
                    keys.iter().cloned().map(Some).collect(),
                ),
                Column::from_floats(Some("base_metric".to_string()), base1),
                Column::from_floats(Some("aux_metric".to_string()), base2),
                target_col,
            ],
        );
        t.source = "open-data".to_string();
        t
    };

    let mut tables = Vec::new();
    let mut gt = GroundTruth::default();

    // Per-table join coverage: informative tables are *less* complete than
    // the junk on average, so the Overlap ranking is misled exactly the way
    // §II-C describes ("identifies datasets that contain fewer missing
    // values, but does not guarantee to optimize the task").
    let informative_coverage = |rng: &mut StdRng| cfg.key_coverage * rng.gen_range(0.75..0.92);
    let junk_coverage = |rng: &mut StdRng| (cfg.key_coverage * rng.gen_range(0.9..1.05)).min(0.99);

    // Informative tables (+ near-duplicates).
    for j in 0..cfg.n_informative {
        let base_name = INFORMATIVE_NAMES[j % INFORMATIVE_NAMES.len()];
        let signal_col = format!("{base_name}_value");
        let values: Vec<f64> = (0..n)
            .map(|i| {
                signal(cfg.seed, j, i) + 0.15 * (mix(cfg.seed ^ 0x33, j as u64, i as u64) - 0.5)
            })
            .collect();
        let mut columns = vec![(signal_col.clone(), values.clone())];
        for e in 0..cfg.extra_cols_per_table {
            let noise: Vec<f64> = (0..n)
                .map(|i| mix(cfg.seed ^ 0x44, (j * 31 + e) as u64, i as u64))
                .collect();
            columns.push((format!("{base_name}_extra{e}"), noise));
        }
        let cov = informative_coverage(&mut rng);
        tables.push(repo_table(
            base_name,
            "open-data",
            &keys,
            columns,
            cov,
            cfg.missing_ratio,
            false,
            &mut rng,
        ));
        gt.mark(base_name, &signal_col, w[j]);

        for d in 0..cfg.n_duplicates {
            let dup_name = format!("{base_name}_v{}", d + 2);
            let dup_col = format!("{base_name}_value");
            let dup_values: Vec<f64> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    v + 0.08 * (mix(cfg.seed ^ 0x55, (j * 7 + d) as u64, i as u64) - 0.5)
                })
                .collect();
            let dup_cov = informative_coverage(&mut rng);
            tables.push(repo_table(
                &dup_name,
                "open-data",
                &keys,
                vec![(dup_col.clone(), dup_values)],
                dup_cov,
                cfg.missing_ratio + 0.02,
                false,
                &mut rng,
            ));
            gt.mark(&dup_name, &dup_col, w[j] * 0.9);
        }
    }

    // Irrelevant tables: joinable, pure noise.
    for t in 0..cfg.n_irrelevant_tables {
        let name = format!("misc_{t:03}");
        let mut columns = Vec::new();
        for e in 0..(1 + cfg.extra_cols_per_table) {
            let noise: Vec<f64> = (0..n)
                .map(|i| mix(cfg.seed ^ 0x66, (t * 17 + e) as u64, i as u64))
                .collect();
            columns.push((format!("metric_{e}"), noise));
        }
        let cov = junk_coverage(&mut rng);
        tables.push(repo_table(
            &name,
            "kaggle",
            &keys,
            columns,
            cov,
            cfg.missing_ratio,
            false,
            &mut rng,
        ));
    }

    // Redundant decoys: high target correlation, no new information.
    for t in 0..cfg.n_redundant_tables {
        let name = format!("estimates_{t:03}");
        let col = format!("estimate_{t}");
        let values: Vec<f64> = (0..n)
            .map(|i| {
                let b1 = 0.4 * signal(cfg.seed, 0, i) + 0.6 * mix(cfg.seed ^ 0x11, 1, i as u64);
                0.9 * b1 + 0.1 * mix(cfg.seed ^ 0x77, t as u64, i as u64)
            })
            .collect();
        let cov = junk_coverage(&mut rng);
        tables.push(repo_table(
            &name,
            "kaggle",
            &keys,
            vec![(col, values)],
            cov,
            cfg.missing_ratio,
            false,
            &mut rng,
        ));
    }

    // Erroneous tables: would-be signal, but the key assignment is permuted.
    for t in 0..cfg.n_erroneous_tables {
        let j = t % cfg.n_informative.max(1);
        let name = format!(
            "{}_mirror{t}",
            INFORMATIVE_NAMES[j % INFORMATIVE_NAMES.len()]
        );
        let col = "shadow_value".to_string();
        let values: Vec<f64> = (0..n).map(|i| signal(cfg.seed, j, i)).collect();
        let cov = junk_coverage(&mut rng);
        tables.push(repo_table(
            &name,
            "open-data",
            &keys,
            vec![(col, values)],
            cov,
            cfg.missing_ratio,
            true,
            &mut rng,
        ));
        gt.erroneous_tables.push(name);
    }

    let spec = if cfg.classification {
        TaskSpec::Classification {
            target: "label".to_string(),
        }
    } else {
        TaskSpec::Regression {
            target: "label".to_string(),
        }
    };

    Scenario {
        name: cfg.name.clone(),
        din,
        tables: tables.into_iter().map(std::sync::Arc::new).collect(),
        spec,
        ground_truth: gt,
        union_tables: Vec::new(),
        eval_table: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_shape_matches_config() {
        let cfg = SupervisedConfig {
            n_informative: 2,
            n_duplicates: 1,
            n_irrelevant_tables: 3,
            n_erroneous_tables: 2,
            ..Default::default()
        };
        let s = build_supervised(&cfg);
        // 2 informative + 2 duplicates + 3 irrelevant + 2 erroneous.
        assert_eq!(s.tables.len(), 9);
        assert_eq!(s.din.nrows(), 600);
        assert_eq!(s.ground_truth.erroneous_tables.len(), 2);
        assert!(s.spec.is_classification());
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = SupervisedConfig::default();
        let a = build_supervised(&cfg);
        let b = build_supervised(&cfg);
        assert_eq!(a.din, b.din);
        assert_eq!(a.tables.len(), b.tables.len());
        for (ta, tb) in a.tables.iter().zip(&b.tables) {
            assert_eq!(ta.as_ref(), tb.as_ref());
        }
    }

    #[test]
    fn ground_truth_marks_informative_columns() {
        let s = build_supervised(&SupervisedConfig::default());
        assert!(s
            .ground_truth
            .is_relevant("crime_stats", "crime_stats_value"));
        assert!(!s.ground_truth.is_relevant("misc_000", "metric_0"));
        // Duplicates carry slightly weaker relevance.
        let main = s.ground_truth.relevance("crime_stats", "crime_stats_value");
        let dup = s
            .ground_truth
            .relevance("crime_stats_v2", "crime_stats_value");
        assert!(dup > 0.0 && dup < main);
    }

    #[test]
    fn signal_correlates_with_target() {
        let s = build_supervised(&SupervisedConfig {
            classification: false,
            ..Default::default()
        });
        // Join the first informative table manually and correlate.
        let crime = s.tables.iter().find(|t| t.name == "crime_stats").unwrap();
        let col = metam_table::join::left_join_column(
            &s.din,
            0,
            crime,
            0,
            crime.column_index("crime_stats_value").unwrap(),
        )
        .unwrap();
        let y = s.din.column_by_name("label").unwrap().as_f64();
        let x = col.as_f64();
        let pairs: Vec<(f64, f64)> = x.iter().zip(&y).filter_map(|(a, b)| a.zip(*b)).collect();
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = pairs.iter().map(|(a, b)| (a - mx) * (b - my)).sum::<f64>() / n;
        let vx: f64 = pairs.iter().map(|(a, _)| (a - mx) * (a - mx)).sum::<f64>() / n;
        let vy: f64 = pairs.iter().map(|(_, b)| (b - my) * (b - my)).sum::<f64>() / n;
        let r = cov / (vx.sqrt() * vy.sqrt());
        assert!(r > 0.4, "planted signal must correlate with target, r={r}");
    }

    #[test]
    fn erroneous_tables_destroy_the_signal() {
        let s = build_supervised(&SupervisedConfig {
            classification: false,
            ..Default::default()
        });
        let bad = s
            .tables
            .iter()
            .find(|t| s.ground_truth.erroneous_tables.contains(&t.name))
            .unwrap();
        let col = metam_table::join::left_join_column(
            &s.din,
            0,
            bad,
            0,
            bad.column_index("shadow_value").unwrap(),
        )
        .unwrap();
        let y = s.din.column_by_name("label").unwrap().as_f64();
        let x = col.as_f64();
        let pairs: Vec<(f64, f64)> = x.iter().zip(&y).filter_map(|(a, b)| a.zip(*b)).collect();
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = pairs.iter().map(|(a, b)| (a - mx) * (b - my)).sum::<f64>() / n;
        let vx: f64 = pairs.iter().map(|(a, _)| (a - mx) * (a - mx)).sum::<f64>() / n;
        let vy: f64 = pairs.iter().map(|(_, b)| (b - my) * (b - my)).sum::<f64>() / n;
        let r = (cov / (vx.sqrt() * vy.sqrt())).abs();
        assert!(r < 0.15, "permuted keys must kill the correlation, |r|={r}");
    }
}
