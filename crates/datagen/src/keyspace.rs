//! Join-key domains: zipcode-like, id-like and city-name keys.

use rand::seq::SliceRandom;
use rand::Rng;

/// `n` distinct zipcode-like keys ("60601", "60602", …).
pub fn zipcodes(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{:05}", 60000 + i)).collect()
}

/// `n` distinct entity-id keys with a prefix ("stu00042", …).
pub fn ids(prefix: &str, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("{prefix}{i:05}")).collect()
}

/// Base pool of city names used by the entity-linking scenario. Real
/// ambiguous US city names so the scenario reads like the paper's CDC
/// example.
pub const CITY_NAMES: &[&str] = &[
    "Birmingham",
    "Springfield",
    "Franklin",
    "Clinton",
    "Greenville",
    "Bristol",
    "Salem",
    "Fairview",
    "Madison",
    "Georgetown",
    "Arlington",
    "Ashland",
    "Dover",
    "Oxford",
    "Jackson",
    "Burlington",
    "Manchester",
    "Milton",
    "Newport",
    "Auburn",
    "Centerville",
    "Clayton",
    "Dayton",
    "Lexington",
    "Milford",
    "Riverside",
    "Troy",
    "Lebanon",
    "Kingston",
    "Hudson",
    "Florence",
    "Danville",
    "Cleveland",
    "Columbus",
    "Marion",
    "Monroe",
    "Princeton",
    "Richmond",
    "Winchester",
    "Lancaster",
];

/// US state abbreviations used by the linking scenario.
pub const STATES: &[&str] = &[
    "AL", "CA", "IL", "NY", "TX", "OH", "PA", "GA", "NC", "MI", "NJ", "VA", "WA", "MA", "TN",
];

/// Corrupt a key assignment: returns the keys with a seeded permutation
/// applied, so joins still *succeed* but map to the wrong rows — the
/// "incorrect join key" error mode of §VI.
pub fn permute_keys<R: Rng>(keys: &[String], rng: &mut R) -> Vec<String> {
    let mut permuted = keys.to_vec();
    permuted.shuffle(rng);
    permuted
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zipcodes_are_distinct_and_fixed_width() {
        let z = zipcodes(100);
        assert_eq!(z.len(), 100);
        assert!(z.iter().all(|k| k.len() == 5));
        let mut d = z.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn ids_carry_prefix() {
        let k = ids("stu", 3);
        assert_eq!(k[0], "stu00000");
        assert_eq!(k[2], "stu00002");
    }

    #[test]
    fn permutation_preserves_multiset() {
        let keys = zipcodes(50);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = permute_keys(&keys, &mut rng);
        assert_ne!(p, keys, "seeded shuffle should move things");
        let mut a = keys.clone();
        let mut b = p.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
