//! Repository-scale generators (Table I) and named scenario presets
//! (Figs. 3–5, Table II).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use metam_table::{Column, Table};

use crate::causal_scenario::{build_causal, CausalConfig, CausalKind};
use crate::scenario::Scenario;
use crate::supervised::{build_supervised, SupervisedConfig};

/// A random "open-data-portal-like" repository: many tables with varied
/// width/height, partial key overlap, missing headers and missing values —
/// input to the Table I statistics.
pub fn random_repository(seed: u64, n_tables: usize, source: &str) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tables = Vec::with_capacity(n_tables);
    for t in 0..n_tables {
        let n_rows = rng.gen_range(40..400);
        let n_cols = rng.gen_range(2..12);
        let key_domain = rng.gen_range(200..800);
        let mut cols = Vec::with_capacity(n_cols);
        // First column: a key drawn from a shared zip-like domain.
        let keys: Vec<Option<String>> = (0..n_rows)
            .map(|_| Some(format!("{:05}", 60000 + rng.gen_range(0..key_domain))))
            .collect();
        cols.push(Column::from_strings(Some("zipcode".to_string()), keys));
        for c in 1..n_cols {
            // 10 % of headers are missing (noisy schema).
            let name = if rng.gen_range(0.0..1.0) < 0.1 {
                None
            } else {
                Some(format!("col_{c}"))
            };
            let vals: Vec<Option<f64>> = (0..n_rows)
                .map(|_| {
                    if rng.gen_range(0.0..1.0) < 0.05 {
                        None
                    } else {
                        Some(rng.gen_range(0.0..100.0))
                    }
                })
                .collect();
            cols.push(Column::from_floats(name, vals));
        }
        let mut table = crate::aligned_table(format!("{source}_table_{t:05}"), cols);
        table.source = source.to_string();
        tables.push(table);
    }
    tables
}

/// Fig. 3(a) / Table II "Housing prices": house-price classification with
/// Walmart/taxi/crime-flavoured informative tables.
pub fn price_classification(seed: u64) -> Scenario {
    build_supervised(&SupervisedConfig {
        seed,
        n_rows: 1000,
        n_informative: 3,
        n_duplicates: 2,
        n_irrelevant_tables: 40,
        n_erroneous_tables: 45,
        n_redundant_tables: 30,
        classification: true,
        name: "housing_prices".to_string(),
        ..Default::default()
    })
}

/// Fig. 4(a) base / "Schools" classification: noisier, more erroneous
/// candidates (the paper found 60 % of sampled candidates erroneous here).
pub fn schools_classification(seed: u64) -> Scenario {
    build_supervised(&SupervisedConfig {
        seed: seed ^ 0x5C00,
        n_rows: 900,
        n_informative: 4,
        n_duplicates: 2,
        n_irrelevant_tables: 15,
        n_erroneous_tables: 40,
        n_redundant_tables: 20,
        noise: 0.45,
        classification: true,
        name: "schools".to_string(),
        ..Default::default()
    })
}

/// Fig. 3(b) "Regression": NYC-collisions-flavoured regression (350 rows in
/// the paper).
pub fn collisions_regression(seed: u64) -> Scenario {
    build_supervised(&SupervisedConfig {
        seed: seed ^ 0xC011,
        n_rows: 350,
        n_informative: 3,
        n_duplicates: 1,
        n_irrelevant_tables: 20,
        n_erroneous_tables: 10,
        n_redundant_tables: 15,
        classification: false,
        name: "nyc_collisions".to_string(),
        ..Default::default()
    })
}

/// Fig. 3(c): what-if analysis on SAT scores. The candidate pool is
/// dominated by irrelevant and erroneous joins, as in the paper's corpus.
pub fn sat_whatif(seed: u64) -> Scenario {
    build_causal(&CausalConfig {
        seed: seed ^ 0x5A7,
        kind: CausalKind::WhatIf,
        n_irrelevant_tables: 140,
        n_erroneous_tables: 60,
        n_confounder_tables: 45,
        name: "sat_whatif".to_string(),
        ..Default::default()
    })
}

/// Fig. 3(d): how-to analysis on SAT scores (240 candidates in the paper).
pub fn sat_howto(seed: u64) -> Scenario {
    build_causal(&CausalConfig {
        seed: seed ^ 0x407,
        kind: CausalKind::HowTo,
        n_irrelevant_tables: 110,
        n_erroneous_tables: 50,
        n_confounder_tables: 45,
        name: "sat_howto".to_string(),
        ..Default::default()
    })
}

/// Table II presets: name → scenario. `(C)` rows are causal tasks, the
/// rest are predictive analytics, mirroring the paper's table.
pub fn table2_scenarios(seed: u64) -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "Schools (C)",
            build_causal(&CausalConfig {
                seed: seed ^ 0x201,
                kind: CausalKind::WhatIf,
                n_irrelevant_tables: 120,
                n_erroneous_tables: 50,
                n_confounder_tables: 40,
                name: "schools_causal".to_string(),
                ..Default::default()
            }),
        ),
        (
            "Taxi (C)",
            build_causal(&CausalConfig {
                seed: seed ^ 0x202,
                kind: CausalKind::HowTo,
                n_irrelevant_tables: 100,
                n_erroneous_tables: 40,
                n_confounder_tables: 40,
                name: "taxi_causal".to_string(),
                ..Default::default()
            }),
        ),
        (
            "Crime (C)",
            build_causal(&CausalConfig {
                seed: seed ^ 0x203,
                kind: CausalKind::WhatIf,
                n_irrelevant_tables: 130,
                n_erroneous_tables: 45,
                n_confounder_tables: 35,
                name: "crime_causal".to_string(),
                ..Default::default()
            }),
        ),
        (
            "Housing prices (C)",
            build_causal(&CausalConfig {
                seed: seed ^ 0x204,
                kind: CausalKind::HowTo,
                n_irrelevant_tables: 110,
                n_erroneous_tables: 45,
                n_confounder_tables: 45,
                name: "housing_causal".to_string(),
                ..Default::default()
            }),
        ),
        (
            "Pharmacy",
            build_supervised(&SupervisedConfig {
                seed: seed ^ 0x205,
                n_rows: 700,
                n_informative: 3,
                n_irrelevant_tables: 35,
                n_erroneous_tables: 35,
                n_redundant_tables: 25,
                classification: true,
                name: "pharmacy".to_string(),
                ..Default::default()
            }),
        ),
        (
            "Grocery stores",
            build_supervised(&SupervisedConfig {
                seed: seed ^ 0x206,
                n_rows: 700,
                n_informative: 3,
                n_irrelevant_tables: 35,
                n_erroneous_tables: 35,
                n_redundant_tables: 25,
                classification: true,
                name: "grocery".to_string(),
                ..Default::default()
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_repository_has_requested_tables() {
        let repo = random_repository(1, 20, "open-data");
        assert_eq!(repo.len(), 20);
        assert!(repo.iter().all(|t| t.ncols() >= 2));
        // Some headers should be missing (noisy schemas).
        let missing: usize = repo
            .iter()
            .map(|t| t.columns().iter().filter(|c| c.name.is_none()).count())
            .sum();
        assert!(missing > 0, "expected some anonymous columns");
    }

    #[test]
    fn presets_build() {
        assert_eq!(price_classification(0).name, "housing_prices");
        assert!(!collisions_regression(0).spec.is_classification());
        assert!(matches!(
            sat_whatif(0).spec,
            crate::scenario::TaskSpec::WhatIf { .. }
        ));
        assert!(matches!(
            sat_howto(0).spec,
            crate::scenario::TaskSpec::HowTo { .. }
        ));
    }

    #[test]
    fn table2_has_six_rows() {
        let rows = table2_scenarios(0);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].0, "Schools (C)");
    }
}
