#![forbid(unsafe_code)]
//! # metam-datagen
//!
//! Seeded synthetic data repositories with *planted ground truth*, standing
//! in for the paper's Open Data / Kaggle / Redfin corpora (see DESIGN.md,
//! substitutions). Every generator is deterministic in its seed.
//!
//! A generated [`Scenario`] contains:
//!
//! * `din` — the input dataset,
//! * `tables` — a repository of joinable tables mixing **informative**
//!   columns (planted signal), **near-duplicates** (exercise property P2),
//!   **irrelevant** noise columns, and **erroneous** join paths (key
//!   assignment broken — the "incorrect joins" the paper measures 60 % of
//!   in the Schools corpus),
//! * a [`TaskSpec`] describing which downstream task the scenario drives,
//! * a [`GroundTruth`] mapping `(table, column)` to planted relevance, so
//!   experiments can count "queries to find the ground truth" (Fig. 8) and
//!   build informative synthetic profiles (Figs. 9–10).

#![warn(missing_docs)]

pub mod causal_scenario;
pub mod clustering;
pub mod fairness;
pub mod keyspace;
pub mod linking;
pub mod repo;
pub mod scenario;
pub mod semisynthetic;
pub mod supervised;
pub mod unions;

pub use scenario::{GroundTruth, Scenario, TaskSpec};
pub use supervised::{build_supervised, SupervisedConfig};

/// Build a table from generator-constructed columns.
///
/// Every generator in this crate fills each column with exactly the
/// scenario's row count, so misalignment is a bug in the generator, not
/// a runtime condition — this is the single place that invariant is
/// asserted.
pub(crate) fn aligned_table(
    name: impl Into<String>,
    cols: Vec<metam_table::Column>,
) -> metam_table::Table {
    // metam-analyze: allow(panic-in-lib): generator invariant — every column is built with the scenario row count; misalignment is a generator bug, not input-dependent
    metam_table::Table::from_columns(name, cols).expect("generator columns aligned")
}
