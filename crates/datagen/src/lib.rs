//! # metam-datagen
//!
//! Seeded synthetic data repositories with *planted ground truth*, standing
//! in for the paper's Open Data / Kaggle / Redfin corpora (see DESIGN.md,
//! substitutions). Every generator is deterministic in its seed.
//!
//! A generated [`Scenario`] contains:
//!
//! * `din` — the input dataset,
//! * `tables` — a repository of joinable tables mixing **informative**
//!   columns (planted signal), **near-duplicates** (exercise property P2),
//!   **irrelevant** noise columns, and **erroneous** join paths (key
//!   assignment broken — the "incorrect joins" the paper measures 60 % of
//!   in the Schools corpus),
//! * a [`TaskSpec`] describing which downstream task the scenario drives,
//! * a [`GroundTruth`] mapping `(table, column)` to planted relevance, so
//!   experiments can count "queries to find the ground truth" (Fig. 8) and
//!   build informative synthetic profiles (Figs. 9–10).

#![warn(missing_docs)]

pub mod causal_scenario;
pub mod clustering;
pub mod fairness;
pub mod keyspace;
pub mod linking;
pub mod repo;
pub mod scenario;
pub mod semisynthetic;
pub mod supervised;
pub mod unions;

pub use scenario::{GroundTruth, Scenario, TaskSpec};
pub use supervised::{build_supervised, SupervisedConfig};
