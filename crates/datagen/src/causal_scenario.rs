//! Causal scenarios (SAT-scores what-if / how-to, §VI-A).
//!
//! Attributes follow a planted linear-SEM DAG; a few live in `Din`, the
//! rest are scattered across repository tables keyed by student id. The
//! what-if ground truth is the descendant set of the intervened attribute,
//! the how-to ground truth is the (direct-driver) parent set of the
//! outcome.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use metam_causal::Dag;
use metam_table::Column;

use crate::keyspace::{ids, permute_keys};
use crate::scenario::{GroundTruth, Scenario, TaskSpec};

/// Attribute names of the SAT scenario, indexed by DAG node.
const ATTRS: &[&str] = &[
    "critical_reading",  // 0: the intervened / outcome-driving attribute
    "writing_score",     // 1
    "math_score",        // 2
    "college_admission", // 3
    "study_hours",       // 4
    "tutoring_hours",    // 5
    "family_income",     // 6
    "attendance_rate",   // 7
];

/// The planted DAG:
/// study_hours → critical_reading → writing_score → college_admission,
/// critical_reading → math_score, tutoring_hours → critical_reading,
/// family_income → tutoring_hours. attendance_rate is isolated.
fn sat_dag() -> Dag {
    let mut g = Dag::new(ATTRS.len());
    g.add_edge(4, 0);
    g.add_edge(5, 0);
    g.add_edge(6, 5);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 3);
    g
}

/// Which kind of causal task the scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CausalKind {
    /// What-if: intervene on `critical_reading`, recover its descendants.
    WhatIf,
    /// How-to: drive `critical_reading`, recover its parents.
    HowTo,
}

/// Configuration of [`build_causal`].
#[derive(Debug, Clone, PartialEq)]
pub struct CausalConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of students (the paper's table has 450).
    pub n_rows: usize,
    /// Task flavour.
    pub kind: CausalKind,
    /// Irrelevant (noise-attribute) tables in the repository.
    pub n_irrelevant_tables: usize,
    /// Erroneous tables (permuted student ids).
    pub n_erroneous_tables: usize,
    /// Confounder decoy tables: noisy copies of the pivot attribute —
    /// maximally correlated with it, yet *not* part of the causal ground
    /// truth, so joining them yields no utility. They poison any ranking
    /// built on a single correlation profile (§III-A).
    pub n_confounder_tables: usize,
    /// Scenario name.
    pub name: String,
}

impl Default for CausalConfig {
    fn default() -> Self {
        CausalConfig {
            seed: 0,
            n_rows: 450,
            kind: CausalKind::WhatIf,
            n_irrelevant_tables: 12,
            n_erroneous_tables: 4,
            n_confounder_tables: 0,
            name: "sat".to_string(),
        }
    }
}

/// Generate values of every attribute following the SEM in topological
/// order: `x_v = Σ 0.8·x_parent + 0.4·ε`.
fn simulate(dag: &Dag, n: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut values = vec![vec![0.0; n]; dag.len()];
    for v in dag.topological_order() {
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            let mut x = 0.0;
            for &p in dag.parents(v) {
                x += 0.8 * values[p][i];
            }
            x += 0.4 * rng.gen_range(-1.0..1.0);
            values[v][i] = x;
        }
    }
    values
}

/// Build a what-if / how-to scenario.
pub fn build_causal(cfg: &CausalConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let dag = sat_dag();
    let n = cfg.n_rows;
    let keys = ids("stu", n);
    let values = simulate(&dag, n, &mut rng);

    // Din holds the student id + the pivot attribute (+ one noise column).
    let noise_col: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen_range(0.0..1.0))).collect();
    let mut din = crate::aligned_table(
        &cfg.name,
        vec![
            Column::from_strings(
                Some("student_id".to_string()),
                keys.iter().cloned().map(Some).collect(),
            ),
            Column::from_floats(
                Some(ATTRS[0].to_string()),
                values[0].iter().map(|&v| Some(v)).collect(),
            ),
            Column::from_floats(Some("lunch_price".to_string()), noise_col),
        ],
    );
    din.source = "nyc-open-data".to_string();

    let mut gt = GroundTruth::default();
    let mut tables = Vec::new();

    // One repository table per non-pivot attribute. Attribute tables cover
    // only part of the cohort (real survey data is incomplete), so the
    // Overlap baseline gets no free signal from them.
    for (v, &attr) in ATTRS.iter().enumerate().skip(1) {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let take = ((n as f64) * rng.gen_range(0.78..0.92)).round() as usize;
        order.truncate(take.max(1));
        let tname = format!("{attr}_records");
        let t = crate::aligned_table(
            &tname,
            vec![
                Column::from_strings(
                    Some("student_id".to_string()),
                    order.iter().map(|&i| Some(keys[i].clone())).collect(),
                ),
                Column::from_floats(
                    Some(attr.to_string()),
                    order.iter().map(|&i| Some(values[v][i])).collect(),
                ),
            ],
        );
        let mut t = t;
        t.source = "nyc-open-data".to_string();
        tables.push(t);
    }

    // Ground truth per task flavour.
    let truth_nodes: Vec<usize> = match cfg.kind {
        CausalKind::WhatIf => dag.descendants(0),
        CausalKind::HowTo => dag.parents(0).to_vec(),
    };
    let truth_names: Vec<String> = truth_nodes.iter().map(|&v| ATTRS[v].to_string()).collect();
    for name in &truth_names {
        gt.mark(format!("{name}_records"), name, 1.0);
    }

    // Irrelevant tables.
    for t in 0..cfg.n_irrelevant_tables {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let col: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen_range(0.0..1.0))).collect();
        let tname = format!("survey_{t:03}");
        let mut table = crate::aligned_table(
            &tname,
            vec![
                Column::from_strings(
                    Some("student_id".to_string()),
                    order.iter().map(|&i| Some(keys[i].clone())).collect(),
                ),
                Column::from_floats(Some(format!("response_{t}")), col),
            ],
        );
        table.source = "kaggle".to_string();
        tables.push(table);
    }

    // Confounder decoys: echo the pivot attribute with a little noise.
    for t in 0..cfg.n_confounder_tables {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let col: Vec<Option<f64>> = order
            .iter()
            .map(|&i| Some(0.85 * values[0][i] + 0.15 * rng.gen_range(-1.0..1.0)))
            .collect();
        let tname = format!("poll_{t:03}");
        let mut table = crate::aligned_table(
            &tname,
            vec![
                Column::from_strings(
                    Some("student_id".to_string()),
                    order.iter().map(|&i| Some(keys[i].clone())).collect(),
                ),
                Column::from_floats(Some(format!("sentiment_{t}")), col),
            ],
        );
        table.source = "kaggle".to_string();
        tables.push(table);
    }

    // Erroneous tables: a true attribute with permuted student ids.
    for t in 0..cfg.n_erroneous_tables {
        let v = 1 + (t % (ATTRS.len() - 1));
        let tname = format!("{}_shadow{t}", ATTRS[v]);
        let permuted = permute_keys(&keys, &mut rng);
        let mut table = crate::aligned_table(
            &tname,
            vec![
                Column::from_strings(
                    Some("student_id".to_string()),
                    permuted.into_iter().map(Some).collect(),
                ),
                Column::from_floats(
                    Some(format!("{}_alt", ATTRS[v])),
                    values[v].iter().map(|&x| Some(x)).collect(),
                ),
            ],
        );
        table.source = "kaggle".to_string();
        tables.push(table);
        gt.erroneous_tables.push(tname);
    }

    let spec = match cfg.kind {
        CausalKind::WhatIf => TaskSpec::WhatIf {
            intervened: ATTRS[0].to_string(),
            affected: truth_names,
        },
        CausalKind::HowTo => TaskSpec::HowTo {
            outcome: ATTRS[0].to_string(),
            drivers: truth_names,
        },
    };

    Scenario {
        name: cfg.name.clone(),
        din,
        tables: tables.into_iter().map(std::sync::Arc::new).collect(),
        spec,
        ground_truth: gt,
        union_tables: Vec::new(),
        eval_table: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whatif_truth_is_descendants() {
        let s = build_causal(&CausalConfig::default());
        match &s.spec {
            TaskSpec::WhatIf {
                intervened,
                affected,
            } => {
                assert_eq!(intervened, "critical_reading");
                assert!(affected.contains(&"writing_score".to_string()));
                assert!(affected.contains(&"math_score".to_string()));
                assert!(affected.contains(&"college_admission".to_string()));
                assert!(
                    !affected.contains(&"study_hours".to_string()),
                    "parents not affected"
                );
            }
            other => panic!("wrong spec {other:?}"),
        }
    }

    #[test]
    fn howto_truth_is_parents() {
        let s = build_causal(&CausalConfig {
            kind: CausalKind::HowTo,
            ..Default::default()
        });
        match &s.spec {
            TaskSpec::HowTo { outcome, drivers } => {
                assert_eq!(outcome, "critical_reading");
                assert!(drivers.contains(&"study_hours".to_string()));
                assert!(drivers.contains(&"tutoring_hours".to_string()));
                assert!(!drivers.contains(&"writing_score".to_string()));
            }
            other => panic!("wrong spec {other:?}"),
        }
    }

    #[test]
    fn sem_produces_dependent_attributes() {
        let s = build_causal(&CausalConfig::default());
        // writing_score must correlate with Din's critical_reading (its parent).
        let writing = s
            .tables
            .iter()
            .find(|t| t.name == "writing_score_records")
            .unwrap();
        let col = metam_table::join::left_join_column(
            &s.din,
            0,
            writing,
            0,
            writing.column_index("writing_score").unwrap(),
        )
        .unwrap();
        let reading = s.din.column_by_name("critical_reading").unwrap().as_f64();
        let w = col.as_f64();
        let pairs: Vec<(f64, f64)> = w
            .iter()
            .zip(&reading)
            .filter_map(|(a, b)| a.zip(*b))
            .collect();
        let n = pairs.len() as f64;
        let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov: f64 = pairs.iter().map(|(a, b)| (a - mx) * (b - my)).sum::<f64>() / n;
        let vx: f64 = pairs.iter().map(|(a, _)| (a - mx) * (a - mx)).sum::<f64>() / n;
        let vy: f64 = pairs.iter().map(|(_, b)| (b - my) * (b - my)).sum::<f64>() / n;
        assert!(cov / (vx.sqrt() * vy.sqrt()) > 0.5);
    }

    #[test]
    fn table_count_matches_config() {
        let cfg = CausalConfig {
            n_irrelevant_tables: 5,
            n_erroneous_tables: 3,
            ..Default::default()
        };
        let s = build_causal(&cfg);
        // 7 attribute tables + 5 irrelevant + 3 erroneous.
        assert_eq!(s.tables.len(), 15);
        assert_eq!(s.ground_truth.erroneous_tables.len(), 3);
    }
}
