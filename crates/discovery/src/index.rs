//! The discovery index: per-column sketches over a repository.
//!
//! The index is **metadata-only**: it holds per-table descriptors (name,
//! provenance, column names, sketches) and never retains table payloads.
//! That split is what lets a catalog-backed prepare build the index from
//! persisted sketches ([`DiscoveryIndex::from_catalog`]) without touching
//! raw data — candidate generation becomes set algebra over sketches, and
//! payloads load lazily only when a candidate materializes.

use std::sync::Arc;

use metam_table::Table;

use crate::minhash::MinHash;

/// Reference to one column of one repository table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table index within the repository.
    pub table: usize,
    /// Column index within the table.
    pub column: usize,
}

/// Per-column metadata kept by the index.
#[derive(Debug, Clone)]
pub struct ColumnEntry {
    /// Which column this entry describes.
    pub column: ColumnRef,
    /// MinHash sketch of the column's normalized distinct values.
    pub sketch: MinHash,
    /// Whether the column looks like a join key (mostly distinct values).
    pub keyish: bool,
}

/// Everything the index needs to know about one column, payload-free.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDescriptor {
    /// Column name (`None` for anonymous columns).
    pub name: Option<String>,
    /// MinHash sketch of the column's normalized distinct values (carries
    /// the exact distinct count as its cardinality).
    pub sketch: MinHash,
    /// Whether the column looks like a join key: ≥ 50 % of its non-null
    /// values are distinct. Computed from counts, so a descriptor built
    /// from a persisted sketch agrees exactly with one built in memory.
    pub keyish: bool,
}

/// Everything the index needs to know about one table, payload-free.
#[derive(Debug, Clone, PartialEq)]
pub struct TableDescriptor {
    /// Table name.
    pub name: String,
    /// Provenance tag.
    pub source: String,
    /// Approximate in-memory size in bytes (Table I-style statistics).
    pub approx_bytes: usize,
    /// Per-column descriptors, in column order.
    pub columns: Vec<ColumnDescriptor>,
}

impl TableDescriptor {
    /// Describe a materialized table: sketch every column and flag join
    /// keys. This is the in-memory profiling path; the lake layer persists
    /// the same information at scan time and rebuilds descriptors from the
    /// catalog without reloading payloads.
    pub fn from_table(table: &Table) -> TableDescriptor {
        let columns = table
            .columns()
            .iter()
            .map(|col| {
                let keys = col.distinct_keys();
                let non_null = col.len() - col.null_count();
                ColumnDescriptor {
                    name: col.name.clone(),
                    keyish: non_null > 0 && keys.len() * 2 >= non_null,
                    sketch: MinHash::from_keys(&keys),
                }
            })
            .collect();
        TableDescriptor {
            name: table.name.clone(),
            source: table.source.clone(),
            approx_bytes: table.approx_bytes(),
            columns,
        }
    }

    /// Display name of column `i` (anonymous columns render as `_colN`,
    /// matching [`Table::column_display_name`]).
    pub fn column_display_name(&self, i: usize) -> String {
        self.columns
            .get(i)
            .and_then(|c| c.name.clone())
            .unwrap_or_else(|| format!("_col{i}"))
    }
}

/// An index over every column of a repository, the Aurum stand-in.
///
/// Construction is payload-free: [`from_catalog`](Self::from_catalog)
/// consumes descriptors (typically rebuilt from persisted sketches), and
/// [`build`](Self::build) is the in-memory convenience that describes the
/// tables first. Either way the resulting index is identical — candidate
/// generation only ever sees descriptors.
#[derive(Debug, Clone)]
pub struct DiscoveryIndex {
    descriptors: Vec<TableDescriptor>,
    entries: Vec<ColumnEntry>,
    /// `entry_offsets[t] + c` is the entry index of column `c` of table
    /// `t` (entries are pushed one per column, in table-then-column order).
    entry_offsets: Vec<usize>,
}

impl DiscoveryIndex {
    /// Build an index over materialized repository tables. Every column is
    /// sketched; a column is flagged `keyish` when ≥ 50 % of its non-null
    /// values are distinct (a join on a low-cardinality column explodes
    /// and is skipped during path enumeration). The table payloads are
    /// **not** retained — this is [`from_catalog`](Self::from_catalog)
    /// over freshly computed descriptors.
    pub fn build(tables: Vec<Arc<Table>>) -> DiscoveryIndex {
        DiscoveryIndex::from_catalog(
            tables
                .iter()
                .map(|t| TableDescriptor::from_table(t))
                .collect(),
        )
    }

    /// Sketch-only construction from per-table descriptors, e.g. read back
    /// from a lake catalog's persisted sketch records. No table payload is
    /// touched; the index produced is byte-identical to
    /// [`build`](Self::build) over the same tables.
    pub fn from_catalog(descriptors: Vec<TableDescriptor>) -> DiscoveryIndex {
        let mut entries = Vec::new();
        let mut entry_offsets = Vec::with_capacity(descriptors.len());
        for (ti, table) in descriptors.iter().enumerate() {
            entry_offsets.push(entries.len());
            for (ci, col) in table.columns.iter().enumerate() {
                entries.push(ColumnEntry {
                    column: ColumnRef {
                        table: ti,
                        column: ci,
                    },
                    sketch: col.sketch.clone(),
                    keyish: col.keyish,
                });
            }
        }
        DiscoveryIndex {
            descriptors,
            entries,
            entry_offsets,
        }
    }

    /// Number of indexed tables.
    pub fn n_tables(&self) -> usize {
        self.descriptors.len()
    }

    /// The per-table descriptors, in repository order.
    pub fn descriptors(&self) -> &[TableDescriptor] {
        &self.descriptors
    }

    /// Descriptor of table `idx`.
    pub fn descriptor(&self, idx: usize) -> &TableDescriptor {
        &self.descriptors[idx]
    }

    /// All column entries.
    pub fn entries(&self) -> &[ColumnEntry] {
        &self.entries
    }

    /// The entry for column `column` of table `table`.
    pub fn entry(&self, table: usize, column: usize) -> &ColumnEntry {
        &self.entries[self.entry_offsets[table] + column]
    }

    /// Columns (from any table except `exclude_table`) that a probe column
    /// joins into: containment of the probe's values in the candidate column
    /// is at least `threshold`. Results are sorted by containment descending
    /// (ties by column ref) and restricted to `keyish` columns.
    pub fn joinable_columns(
        &self,
        probe: &MinHash,
        threshold: f64,
        exclude_table: Option<usize>,
    ) -> Vec<(ColumnRef, f64)> {
        let mut out: Vec<(ColumnRef, f64)> = self
            .entries
            .iter()
            .filter(|e| e.keyish && Some(e.column.table) != exclude_table)
            .filter_map(|e| {
                let c = probe.containment_in(&e.sketch);
                (c >= threshold).then_some((e.column, c))
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Repository statistics for Table I-style reporting.
    pub fn stats(&self) -> IndexStats {
        let n_tables = self.descriptors.len();
        let n_columns = self.entries.len();
        let n_keyish = self.entries.iter().filter(|e| e.keyish).count();
        let bytes = self.descriptors.iter().map(|t| t.approx_bytes).sum();
        IndexStats {
            n_tables,
            n_columns,
            n_keyish,
            bytes,
        }
    }
}

/// Summary statistics of an index (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of tables.
    pub n_tables: usize,
    /// Number of columns.
    pub n_columns: usize,
    /// Number of join-key-like columns.
    pub n_keyish: usize,
    /// Approximate total size in bytes.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;

    fn repo() -> Vec<Arc<Table>> {
        let zips: Vec<Option<String>> = (0..100).map(|i| Some(format!("z{i}"))).collect();
        let t1 = Table::from_columns(
            "crime",
            vec![
                Column::from_strings(Some("zip".into()), zips.clone()),
                Column::from_floats(
                    Some("rate".into()),
                    (0..100).map(|i| Some(i as f64)).collect(),
                ),
            ],
        )
        .unwrap();
        // Low-cardinality column: not keyish.
        let t2 = Table::from_columns(
            "category",
            vec![Column::from_strings(
                Some("kind".into()),
                (0..100)
                    .map(|i| Some(if i % 2 == 0 { "a" } else { "b" }.to_string()))
                    .collect(),
            )],
        )
        .unwrap();
        vec![Arc::new(t1), Arc::new(t2)]
    }

    #[test]
    fn index_flags_keyish_columns() {
        let idx = DiscoveryIndex::build(repo());
        let entries = idx.entries();
        assert!(entries[0].keyish, "distinct zip column is a key");
        assert!(!entries[2].keyish, "binary category is not a key");
    }

    #[test]
    fn joinable_columns_finds_overlap() {
        let idx = DiscoveryIndex::build(repo());
        let probe_keys: Vec<String> = (0..50).map(|i| format!("z{i}")).collect();
        let probe = MinHash::from_keys(&probe_keys);
        let hits = idx.joinable_columns(&probe, 0.5, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].0,
            ColumnRef {
                table: 0,
                column: 0
            }
        );
        assert!(hits[0].1 > 0.8);
    }

    #[test]
    fn exclude_table_is_respected() {
        let idx = DiscoveryIndex::build(repo());
        let probe_keys: Vec<String> = (0..50).map(|i| format!("z{i}")).collect();
        let probe = MinHash::from_keys(&probe_keys);
        assert!(idx.joinable_columns(&probe, 0.5, Some(0)).is_empty());
    }

    #[test]
    fn stats_count_everything() {
        let idx = DiscoveryIndex::build(repo());
        let s = idx.stats();
        assert_eq!(s.n_tables, 2);
        assert_eq!(s.n_columns, 3);
        // Both `zip` (distinct strings) and `rate` (distinct numbers) look
        // key-like; the binary `kind` column does not.
        assert_eq!(s.n_keyish, 2);
        assert!(s.bytes > 0);
    }

    #[test]
    fn from_catalog_equals_build() {
        let tables = repo();
        let built = DiscoveryIndex::build(tables.clone());
        let descriptors: Vec<TableDescriptor> = tables
            .iter()
            .map(|t| TableDescriptor::from_table(t))
            .collect();
        let from_cat = DiscoveryIndex::from_catalog(descriptors);
        assert_eq!(from_cat.descriptors(), built.descriptors());
        assert_eq!(from_cat.entries().len(), built.entries().len());
        for (a, b) in from_cat.entries().iter().zip(built.entries()) {
            assert_eq!(a.column, b.column);
            assert_eq!(a.sketch, b.sketch);
            assert_eq!(a.keyish, b.keyish);
        }
        assert_eq!(from_cat.stats(), built.stats());
    }

    #[test]
    fn entry_lookup_matches_flat_order() {
        let idx = DiscoveryIndex::build(repo());
        assert_eq!(
            idx.entry(1, 0).column,
            ColumnRef {
                table: 1,
                column: 0
            }
        );
        assert_eq!(idx.descriptor(0).name, "crime");
        assert_eq!(idx.descriptor(0).column_display_name(1), "rate");
        assert_eq!(idx.n_tables(), 2);
    }
}
