//! The discovery index: per-column sketches over a repository.

use std::sync::Arc;

use metam_table::Table;

use crate::minhash::MinHash;

/// Reference to one column of one repository table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table index within the repository.
    pub table: usize,
    /// Column index within the table.
    pub column: usize,
}

/// Per-column metadata kept by the index.
#[derive(Debug, Clone)]
pub struct ColumnEntry {
    /// Which column this entry describes.
    pub column: ColumnRef,
    /// MinHash sketch of the column's normalized distinct values.
    pub sketch: MinHash,
    /// Whether the column looks like a join key (mostly distinct values).
    pub keyish: bool,
}

/// An index over every column of a repository, the Aurum stand-in.
///
/// Tables are held by `Arc` so the index, the materializer and the caller
/// can share them without copying.
#[derive(Debug, Clone)]
pub struct DiscoveryIndex {
    tables: Vec<Arc<Table>>,
    entries: Vec<ColumnEntry>,
}

impl DiscoveryIndex {
    /// Build an index over the repository. Every column is sketched; a
    /// column is flagged `keyish` when ≥ 50 % of its non-null values are
    /// distinct (a join on a low-cardinality column explodes and is skipped
    /// during path enumeration).
    pub fn build(tables: Vec<Arc<Table>>) -> DiscoveryIndex {
        let mut entries = Vec::new();
        for (ti, table) in tables.iter().enumerate() {
            for (ci, col) in table.columns().iter().enumerate() {
                let keys = col.distinct_keys();
                let non_null = col.len() - col.null_count();
                let keyish = non_null > 0 && keys.len() * 2 >= non_null;
                entries.push(ColumnEntry {
                    column: ColumnRef {
                        table: ti,
                        column: ci,
                    },
                    sketch: MinHash::from_keys(&keys),
                    keyish,
                });
            }
        }
        DiscoveryIndex { tables, entries }
    }

    /// The indexed tables.
    pub fn tables(&self) -> &[Arc<Table>] {
        &self.tables
    }

    /// Table by index.
    pub fn table(&self, idx: usize) -> &Arc<Table> {
        &self.tables[idx]
    }

    /// All column entries.
    pub fn entries(&self) -> &[ColumnEntry] {
        &self.entries
    }

    /// Columns (from any table except `exclude_table`) that a probe column
    /// joins into: containment of the probe's values in the candidate column
    /// is at least `threshold`. Results are sorted by containment descending
    /// (ties by column ref) and restricted to `keyish` columns.
    pub fn joinable_columns(
        &self,
        probe: &MinHash,
        threshold: f64,
        exclude_table: Option<usize>,
    ) -> Vec<(ColumnRef, f64)> {
        let mut out: Vec<(ColumnRef, f64)> = self
            .entries
            .iter()
            .filter(|e| e.keyish && Some(e.column.table) != exclude_table)
            .filter_map(|e| {
                let c = probe.containment_in(&e.sketch);
                (c >= threshold).then_some((e.column, c))
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out
    }

    /// Repository statistics for Table I-style reporting.
    pub fn stats(&self) -> IndexStats {
        let n_tables = self.tables.len();
        let n_columns = self.entries.len();
        let n_keyish = self.entries.iter().filter(|e| e.keyish).count();
        let bytes = self.tables.iter().map(|t| t.approx_bytes()).sum();
        IndexStats {
            n_tables,
            n_columns,
            n_keyish,
            bytes,
        }
    }
}

/// Summary statistics of an index (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexStats {
    /// Number of tables.
    pub n_tables: usize,
    /// Number of columns.
    pub n_columns: usize,
    /// Number of join-key-like columns.
    pub n_keyish: usize,
    /// Approximate total size in bytes.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;

    fn repo() -> Vec<Arc<Table>> {
        let zips: Vec<Option<String>> = (0..100).map(|i| Some(format!("z{i}"))).collect();
        let t1 = Table::from_columns(
            "crime",
            vec![
                Column::from_strings(Some("zip".into()), zips.clone()),
                Column::from_floats(
                    Some("rate".into()),
                    (0..100).map(|i| Some(i as f64)).collect(),
                ),
            ],
        )
        .unwrap();
        // Low-cardinality column: not keyish.
        let t2 = Table::from_columns(
            "category",
            vec![Column::from_strings(
                Some("kind".into()),
                (0..100)
                    .map(|i| Some(if i % 2 == 0 { "a" } else { "b" }.to_string()))
                    .collect(),
            )],
        )
        .unwrap();
        vec![Arc::new(t1), Arc::new(t2)]
    }

    #[test]
    fn index_flags_keyish_columns() {
        let idx = DiscoveryIndex::build(repo());
        let entries = idx.entries();
        assert!(entries[0].keyish, "distinct zip column is a key");
        assert!(!entries[2].keyish, "binary category is not a key");
    }

    #[test]
    fn joinable_columns_finds_overlap() {
        let idx = DiscoveryIndex::build(repo());
        let probe_keys: Vec<String> = (0..50).map(|i| format!("z{i}")).collect();
        let probe = MinHash::from_keys(&probe_keys);
        let hits = idx.joinable_columns(&probe, 0.5, None);
        assert_eq!(hits.len(), 1);
        assert_eq!(
            hits[0].0,
            ColumnRef {
                table: 0,
                column: 0
            }
        );
        assert!(hits[0].1 > 0.8);
    }

    #[test]
    fn exclude_table_is_respected() {
        let idx = DiscoveryIndex::build(repo());
        let probe_keys: Vec<String> = (0..50).map(|i| format!("z{i}")).collect();
        let probe = MinHash::from_keys(&probe_keys);
        assert!(idx.joinable_columns(&probe, 0.5, Some(0)).is_empty());
    }

    #[test]
    fn stats_count_everything() {
        let idx = DiscoveryIndex::build(repo());
        let s = idx.stats();
        assert_eq!(s.n_tables, 2);
        assert_eq!(s.n_columns, 3);
        // Both `zip` (distinct strings) and `rate` (distinct numbers) look
        // key-like; the binary `kind` column does not.
        assert_eq!(s.n_keyish, 2);
        assert!(s.bytes > 0);
    }
}
