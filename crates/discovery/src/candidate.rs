//! Candidate augmentations: `Γ(Din, P[j])` (paper Definition 4).

use metam_table::Table;

use crate::index::DiscoveryIndex;
use crate::path::{describe_path, enumerate_paths, JoinPath, PathConfig};

/// Stable identifier of a candidate within one generation run.
pub type CandidateId = usize;

/// One candidate augmentation: a join path plus the projected column.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Identifier (position in the generated candidate list).
    pub id: CandidateId,
    /// The join path to materialize.
    pub path: JoinPath,
    /// Column of the path's final table projected as the new attribute.
    pub value_column: usize,
    /// Human-readable description (`din_key→table.key ⊳ column`).
    pub name: String,
    /// Name of the repository table providing the value.
    pub source_table: String,
    /// Name of the projected column (display form).
    pub column_name: String,
    /// Provenance tag of the source table.
    pub source: String,
    /// First-hop containment estimated at discovery time.
    pub discovered_containment: f64,
}

/// Generate candidate augmentations for `din` over an indexed repository.
///
/// Every non-key column of every enumerated join path becomes one
/// candidate. The list is deterministic: paths in enumeration order,
/// columns in table order, ids sequential from zero.
pub fn generate_candidates(
    din: &Table,
    index: &DiscoveryIndex,
    config: &PathConfig,
    max_candidates: usize,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (path, containment) in enumerate_paths(din, index, config) {
        let table_idx = path.last_table();
        let table = index.descriptor(table_idx);
        let used_key = path.last_hop().key_column;
        for ci in 0..table.columns.len() {
            if ci == used_key {
                continue;
            }
            if out.len() >= max_candidates {
                return out;
            }
            let column_name = table.column_display_name(ci);
            let name = format!("{} ⊳ {}", describe_path(din, &path, index), column_name);
            out.push(Candidate {
                id: out.len(),
                path: path.clone(),
                value_column: ci,
                name,
                source_table: table.name.clone(),
                column_name,
                source: table.source.clone(),
                discovered_containment: containment,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;
    use std::sync::Arc;

    fn setup() -> (Table, DiscoveryIndex) {
        let din = Table::from_columns(
            "din",
            vec![Column::from_strings(
                Some("zip".into()),
                (0..50).map(|i| Some(format!("z{i}"))).collect(),
            )],
        )
        .unwrap();
        let t0 = Table::from_columns(
            "stats",
            vec![
                Column::from_strings(
                    Some("zipcode".into()),
                    (0..50).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_floats(Some("a".into()), (0..50).map(|i| Some(i as f64)).collect()),
                Column::from_floats(
                    Some("b".into()),
                    (0..50).map(|i| Some(-(i as f64))).collect(),
                ),
            ],
        )
        .unwrap();
        (din, DiscoveryIndex::build(vec![Arc::new(t0)]))
    }

    #[test]
    fn one_candidate_per_non_key_column() {
        let (din, idx) = setup();
        let cands = generate_candidates(&din, &idx, &PathConfig::default(), 100);
        assert_eq!(cands.len(), 2, "columns a and b, not the key");
        assert_eq!(cands[0].column_name, "a");
        assert_eq!(cands[1].column_name, "b");
    }

    #[test]
    fn ids_are_sequential() {
        let (din, idx) = setup();
        let cands = generate_candidates(&din, &idx, &PathConfig::default(), 100);
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(c.id, i);
        }
    }

    #[test]
    fn cap_respected() {
        let (din, idx) = setup();
        let cands = generate_candidates(&din, &idx, &PathConfig::default(), 1);
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn names_are_descriptive() {
        let (din, idx) = setup();
        let cands = generate_candidates(&din, &idx, &PathConfig::default(), 100);
        assert!(cands[0].name.contains("stats"), "{}", cands[0].name);
        assert!(cands[0].name.contains("⊳ a"), "{}", cands[0].name);
    }
}
