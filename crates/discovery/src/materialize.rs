//! Candidate materialization with caching.
//!
//! Materializing `Γ(Din, P[j])` = chaining left joins along the path and
//! projecting one column, keeping the result row-aligned with `Din`.
//! Candidates are materialized many times across the search (profiles,
//! repeated utility queries), so results are cached behind an `Arc`.

use std::collections::HashMap;
use std::sync::Arc;

use metam_table::join::first_match_index;
use metam_table::{Column, Table, TableError, Value};
use parking_lot::RwLock;

use crate::candidate::{Candidate, CandidateId};

/// Materializes candidates against a fixed repository, caching per
/// candidate id. Cheap to clone is not needed; share by reference.
#[derive(Debug)]
pub struct Materializer {
    tables: Vec<Arc<Table>>,
    cache: RwLock<HashMap<CandidateId, Arc<Column>>>,
}

impl Materializer {
    /// New materializer over the repository tables (same order as the
    /// [`crate::DiscoveryIndex`] that produced the candidates).
    pub fn new(tables: Vec<Arc<Table>>) -> Materializer {
        Materializer {
            tables,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The repository tables.
    pub fn tables(&self) -> &[Arc<Table>] {
        &self.tables
    }

    /// Number of cached columns (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }

    /// Materialize the candidate into a `din`-aligned column.
    ///
    /// The result is cached by candidate id; subsequent calls are `Arc`
    /// clones. The cache assumes one `din` per materializer (true for every
    /// search run); `clear_cache` resets it otherwise.
    pub fn materialize(
        &self,
        din: &Table,
        candidate: &Candidate,
    ) -> metam_table::Result<Arc<Column>> {
        if let Some(cached) = self.cache.read().get(&candidate.id) {
            return Ok(Arc::clone(cached));
        }
        let column = self.materialize_uncached(din, candidate)?;
        let arc = Arc::new(column);
        self.cache.write().insert(candidate.id, Arc::clone(&arc));
        Ok(arc)
    }

    /// Drop all cached columns.
    pub fn clear_cache(&self) {
        self.cache.write().clear();
    }

    fn materialize_uncached(
        &self,
        din: &Table,
        candidate: &Candidate,
    ) -> metam_table::Result<Column> {
        // Row mapping from Din rows into the current table of the chain.
        let first = &candidate.path.hops[0];
        let first_table =
            self.tables
                .get(first.table)
                .ok_or(TableError::ColumnIndexOutOfBounds {
                    index: first.table,
                    len: self.tables.len(),
                })?;
        let probe_keys = din.column(first.left_column)?.join_keys();
        let index = first_match_index(first_table.column(first.key_column)?);
        if index.is_empty() {
            return Err(TableError::EmptyJoinKey);
        }
        let mut mapping: Vec<Option<usize>> = probe_keys
            .into_iter()
            .map(|k| k.and_then(|k| index.get(&k).copied()))
            .collect();
        let mut current_table = Arc::clone(first_table);

        for hop in &candidate.path.hops[1..] {
            let bridge = current_table.column(hop.left_column)?;
            let next_table =
                self.tables
                    .get(hop.table)
                    .ok_or(TableError::ColumnIndexOutOfBounds {
                        index: hop.table,
                        len: self.tables.len(),
                    })?;
            let next_index = first_match_index(next_table.column(hop.key_column)?);
            if next_index.is_empty() {
                return Err(TableError::EmptyJoinKey);
            }
            mapping = mapping
                .into_iter()
                .map(|m| {
                    m.and_then(|row| bridge.get(row).join_key())
                        .and_then(|k| next_index.get(&k).copied())
                })
                .collect();
            current_table = Arc::clone(next_table);
        }

        let value_col = current_table.column(candidate.value_column)?;
        let values: Vec<Value> = mapping
            .into_iter()
            .map(|m| m.map_or(Value::Null, |row| value_col.get(row)))
            .collect();
        let mut col = Column::from_values(Some(candidate.column_name.clone()), values);
        // Augmented columns are named uniquely so repeated augmentations
        // from different tables never collide inside the augmented Din.
        col.name = Some(format!("aug{}_{}", candidate.id, candidate.column_name));
        Ok(col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DiscoveryIndex;
    use crate::path::PathConfig;

    fn setup() -> (Table, DiscoveryIndex, Materializer, Vec<Candidate>) {
        let din = Table::from_columns(
            "din",
            vec![Column::from_strings(
                Some("zip".into()),
                vec![Some("z0".into()), Some("z1".into()), Some("zX".into())],
            )],
        )
        .unwrap();
        let t0 = Table::from_columns(
            "crime",
            vec![
                Column::from_strings(
                    Some("zipcode".into()),
                    (0..40).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_strings(
                    Some("district".into()),
                    (0..40).map(|i| Some(format!("d{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("rate".into()),
                    (0..40).map(|i| Some(i as f64)).collect(),
                ),
            ],
        )
        .unwrap();
        let t1 = Table::from_columns(
            "districts",
            vec![
                Column::from_strings(
                    Some("id".into()),
                    (0..40).map(|i| Some(format!("d{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("income".into()),
                    (0..40).map(|i| Some(100.0 + i as f64)).collect(),
                ),
            ],
        )
        .unwrap();
        let tables = vec![Arc::new(t0), Arc::new(t1)];
        let index = DiscoveryIndex::build(tables.clone());
        let cfg = PathConfig {
            containment_threshold: 0.05,
            ..Default::default()
        };
        let candidates = crate::candidate::generate_candidates(&din, &index, &cfg, 100);
        let mat = Materializer::new(tables);
        (din, index, mat, candidates)
    }

    #[test]
    fn single_hop_materializes_values_and_nulls() {
        let (din, _idx, mat, cands) = setup();
        let c = cands
            .iter()
            .find(|c| c.path.len() == 1 && c.column_name == "rate")
            .expect("rate candidate");
        let col = mat.materialize(&din, c).unwrap();
        assert_eq!(col.len(), 3);
        assert_eq!(col.get(0), Value::Float(0.0));
        assert_eq!(col.get(1), Value::Float(1.0));
        assert_eq!(col.get(2), Value::Null, "zX has no match");
    }

    #[test]
    fn two_hop_materializes_through_bridge() {
        let (din, _idx, mat, cands) = setup();
        let c = cands
            .iter()
            .find(|c| c.path.len() == 2 && c.column_name == "income")
            .expect("two-hop income candidate");
        let col = mat.materialize(&din, c).unwrap();
        assert_eq!(col.get(0), Value::Float(100.0));
        assert_eq!(col.get(1), Value::Float(101.0));
        assert_eq!(col.get(2), Value::Null);
    }

    #[test]
    fn cache_returns_same_arc() {
        let (din, _idx, mat, cands) = setup();
        let c = &cands[0];
        let a = mat.materialize(&din, c).unwrap();
        let b = mat.materialize(&din, c).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(mat.cache_len(), 1);
        mat.clear_cache();
        assert_eq!(mat.cache_len(), 0);
    }

    #[test]
    fn materialized_names_are_unique_per_candidate() {
        let (din, _idx, mat, cands) = setup();
        let names: Vec<String> = cands
            .iter()
            .map(|c| mat.materialize(&din, c).unwrap().name.clone().unwrap())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names must be unique: {names:?}");
    }
}
