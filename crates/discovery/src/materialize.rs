//! Candidate materialization with caching.
//!
//! Materializing `Γ(Din, P[j])` = chaining left joins along the path and
//! projecting one column, keeping the result row-aligned with `Din`.
//! Candidates are materialized many times across the search (profiles,
//! repeated utility queries), so results are cached behind an `Arc`.
//!
//! The repository behind a materializer is a [`TableProvider`]: either the
//! tables themselves (the in-memory path) or a deferred handle that loads
//! a table from backing storage the first time a candidate needs it (the
//! catalog-backed path — a discover run then touches only the tables that
//! actually win candidacy).

use std::collections::HashMap;
use std::sync::Arc;

use metam_table::join::first_match_index;
use metam_table::{Column, Table, TableError, Value};
use parking_lot::RwLock;

use crate::candidate::{Candidate, CandidateId};

/// A source of repository table payloads, indexed like the
/// [`crate::DiscoveryIndex`] that produced the candidates.
///
/// `Send + Sync` because profile evaluation materializes candidates from
/// worker threads. Fetches may be called more than once per index —
/// [`Materializer`] memoizes, so implementations need no cache of their
/// own — but must return the same table every time.
pub trait TableProvider: Send + Sync {
    /// Number of repository tables.
    fn len(&self) -> usize;

    /// `true` when the repository holds no tables.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch table `idx`. Errors are surfaced as
    /// [`TableError::Provider`] by the materializer.
    fn fetch(&self, idx: usize) -> Result<Arc<Table>, String>;
}

/// The eager provider: tables already in memory.
struct EagerTables(Vec<Arc<Table>>);

impl TableProvider for EagerTables {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn fetch(&self, idx: usize) -> Result<Arc<Table>, String> {
        self.0.get(idx).cloned().ok_or_else(|| {
            format!(
                "table index {idx} out of bounds for {} tables",
                self.0.len()
            )
        })
    }
}

/// Materializes candidates against a fixed repository, caching per
/// candidate id. Cheap to clone is not needed; share by reference.
pub struct Materializer {
    provider: Box<dyn TableProvider>,
    /// Tables fetched so far (memoized so a lazy provider loads each
    /// backing table at most once).
    fetched: RwLock<HashMap<usize, Arc<Table>>>,
    cache: RwLock<HashMap<CandidateId, Arc<Column>>>,
}

impl std::fmt::Debug for Materializer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Materializer")
            .field("tables", &self.provider.len())
            .field("fetched", &self.fetched.read().len())
            .field("cached_columns", &self.cache.read().len())
            .finish()
    }
}

impl Materializer {
    /// New materializer over in-memory repository tables (same order as
    /// the [`crate::DiscoveryIndex`] that produced the candidates).
    pub fn new(tables: Vec<Arc<Table>>) -> Materializer {
        Materializer::lazy(Box::new(EagerTables(tables)))
    }

    /// New materializer over a deferred [`TableProvider`] (same indexing
    /// as the index that produced the candidates). Tables are fetched on
    /// first use and memoized, so only candidate-bearing tables ever load.
    pub fn lazy(provider: Box<dyn TableProvider>) -> Materializer {
        Materializer {
            provider,
            fetched: RwLock::new(HashMap::new()),
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Number of repository tables behind the provider.
    pub fn n_tables(&self) -> usize {
        self.provider.len()
    }

    /// Repository table by index, fetching through the provider on first
    /// use (memoized; an eager materializer never really "loads").
    pub fn table(&self, idx: usize) -> metam_table::Result<Arc<Table>> {
        if let Some(t) = self.fetched.read().get(&idx) {
            return Ok(Arc::clone(t));
        }
        let table = self.provider.fetch(idx).map_err(TableError::Provider)?;
        self.fetched.write().insert(idx, Arc::clone(&table));
        Ok(table)
    }

    /// Number of cached columns (diagnostics).
    pub fn cache_len(&self) -> usize {
        self.cache.read().len()
    }

    /// Materialize the candidate into a `din`-aligned column.
    ///
    /// The result is cached by candidate id; subsequent calls are `Arc`
    /// clones. The cache assumes one `din` per materializer (true for every
    /// search run); `clear_cache` resets it otherwise.
    pub fn materialize(
        &self,
        din: &Table,
        candidate: &Candidate,
    ) -> metam_table::Result<Arc<Column>> {
        if let Some(cached) = self.cache.read().get(&candidate.id) {
            return Ok(Arc::clone(cached));
        }
        let column = self.materialize_uncached(din, candidate)?;
        let arc = Arc::new(column);
        self.cache.write().insert(candidate.id, Arc::clone(&arc));
        Ok(arc)
    }

    /// Drop all cached columns.
    pub fn clear_cache(&self) {
        self.cache.write().clear();
    }

    fn materialize_uncached(
        &self,
        din: &Table,
        candidate: &Candidate,
    ) -> metam_table::Result<Column> {
        // Row mapping from Din rows into the current table of the chain.
        let first = &candidate.path.hops[0];
        let first_table = self.table(first.table)?;
        let probe_keys = din.column(first.left_column)?.join_keys();
        let index = first_match_index(first_table.column(first.key_column)?);
        if index.is_empty() {
            return Err(TableError::EmptyJoinKey);
        }
        let mut mapping: Vec<Option<usize>> = probe_keys
            .into_iter()
            .map(|k| k.and_then(|k| index.get(&k).copied()))
            .collect();
        let mut current_table = first_table;

        for hop in &candidate.path.hops[1..] {
            let bridge = current_table.column(hop.left_column)?;
            let next_table = self.table(hop.table)?;
            let next_index = first_match_index(next_table.column(hop.key_column)?);
            if next_index.is_empty() {
                return Err(TableError::EmptyJoinKey);
            }
            mapping = mapping
                .into_iter()
                .map(|m| {
                    m.and_then(|row| bridge.get(row).join_key())
                        .and_then(|k| next_index.get(&k).copied())
                })
                .collect();
            current_table = next_table;
        }

        let value_col = current_table.column(candidate.value_column)?;
        let values: Vec<Value> = mapping
            .into_iter()
            .map(|m| m.map_or(Value::Null, |row| value_col.get(row)))
            .collect();
        let mut col = Column::from_values(Some(candidate.column_name.clone()), values);
        // Augmented columns are named uniquely so repeated augmentations
        // from different tables never collide inside the augmented Din.
        col.name = Some(format!("aug{}_{}", candidate.id, candidate.column_name));
        Ok(col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DiscoveryIndex;
    use crate::path::PathConfig;

    fn setup() -> (Table, DiscoveryIndex, Materializer, Vec<Candidate>) {
        let din = Table::from_columns(
            "din",
            vec![Column::from_strings(
                Some("zip".into()),
                vec![Some("z0".into()), Some("z1".into()), Some("zX".into())],
            )],
        )
        .unwrap();
        let t0 = Table::from_columns(
            "crime",
            vec![
                Column::from_strings(
                    Some("zipcode".into()),
                    (0..40).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_strings(
                    Some("district".into()),
                    (0..40).map(|i| Some(format!("d{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("rate".into()),
                    (0..40).map(|i| Some(i as f64)).collect(),
                ),
            ],
        )
        .unwrap();
        let t1 = Table::from_columns(
            "districts",
            vec![
                Column::from_strings(
                    Some("id".into()),
                    (0..40).map(|i| Some(format!("d{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("income".into()),
                    (0..40).map(|i| Some(100.0 + i as f64)).collect(),
                ),
            ],
        )
        .unwrap();
        let tables = vec![Arc::new(t0), Arc::new(t1)];
        let index = DiscoveryIndex::build(tables.clone());
        let cfg = PathConfig {
            containment_threshold: 0.05,
            ..Default::default()
        };
        let candidates = crate::candidate::generate_candidates(&din, &index, &cfg, 100);
        let mat = Materializer::new(tables);
        (din, index, mat, candidates)
    }

    #[test]
    fn single_hop_materializes_values_and_nulls() {
        let (din, _idx, mat, cands) = setup();
        let c = cands
            .iter()
            .find(|c| c.path.len() == 1 && c.column_name == "rate")
            .expect("rate candidate");
        let col = mat.materialize(&din, c).unwrap();
        assert_eq!(col.len(), 3);
        assert_eq!(col.get(0), Value::Float(0.0));
        assert_eq!(col.get(1), Value::Float(1.0));
        assert_eq!(col.get(2), Value::Null, "zX has no match");
    }

    #[test]
    fn two_hop_materializes_through_bridge() {
        let (din, _idx, mat, cands) = setup();
        let c = cands
            .iter()
            .find(|c| c.path.len() == 2 && c.column_name == "income")
            .expect("two-hop income candidate");
        let col = mat.materialize(&din, c).unwrap();
        assert_eq!(col.get(0), Value::Float(100.0));
        assert_eq!(col.get(1), Value::Float(101.0));
        assert_eq!(col.get(2), Value::Null);
    }

    #[test]
    fn cache_returns_same_arc() {
        let (din, _idx, mat, cands) = setup();
        let c = &cands[0];
        let a = mat.materialize(&din, c).unwrap();
        let b = mat.materialize(&din, c).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(mat.cache_len(), 1);
        mat.clear_cache();
        assert_eq!(mat.cache_len(), 0);
    }

    #[test]
    fn materialized_names_are_unique_per_candidate() {
        let (din, _idx, mat, cands) = setup();
        let names: Vec<String> = cands
            .iter()
            .map(|c| mat.materialize(&din, c).unwrap().name.clone().unwrap())
            .collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names must be unique: {names:?}");
    }
}
