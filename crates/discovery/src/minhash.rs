//! MinHash sketches for Jaccard / containment estimation.
//!
//! One permutation per slot, implemented as seeded 64-bit mixes of the
//! value hash. Sketch comparisons are the approximate matching layer that
//! makes discovery scale — and, deliberately, a source of the candidate
//! noise the paper's algorithm is designed to tolerate.

use std::hash::{Hash, Hasher};

/// Number of hash slots per sketch. 128 gives a Jaccard standard error of
/// ~1/√128 ≈ 0.09, in line with LSH-ensemble-style deployments.
pub const SKETCH_SLOTS: usize = 128;

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    s.hash(&mut hasher);
    hasher.finish()
}

/// A MinHash sketch plus the exact distinct count of the underlying set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHash {
    mins: [u64; SKETCH_SLOTS],
    /// Exact distinct-value count of the sketched set.
    pub cardinality: usize,
}

impl MinHash {
    /// Sketch a set of normalized values.
    ///
    /// **Contract:** `keys` must already be deduplicated (order is
    /// irrelevant). `cardinality` is taken as `keys.len()` without
    /// re-counting, so duplicated input silently inflates every
    /// containment estimate derived from it. The one production call
    /// chain feeds this from [`metam_table::Column::distinct_keys`],
    /// which returns sorted, deduplicated keys; the debug assertion
    /// below catches any new caller that breaks the contract.
    pub fn from_keys<S: AsRef<str>>(keys: &[S]) -> MinHash {
        debug_assert!(
            {
                let mut sorted: Vec<&str> = keys.iter().map(AsRef::as_ref).collect();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "MinHash::from_keys requires deduplicated input (cardinality = keys.len())"
        );
        let mut mins = [u64::MAX; SKETCH_SLOTS];
        for key in keys {
            let base = hash_str(key.as_ref());
            for (slot, m) in mins.iter_mut().enumerate() {
                let h = mix64(base ^ mix64(slot as u64 ^ 0x9E3779B97F4A7C15));
                if h < *m {
                    *m = h;
                }
            }
        }
        MinHash {
            mins,
            cardinality: keys.len(),
        }
    }

    /// Reassemble a sketch from its parts (the persisted-sketch
    /// deserialization path). `slots` must come from a prior
    /// [`slots`](Self::slots) call — the pairing with `cardinality` is what
    /// makes containment estimates exact round-trips.
    pub fn from_parts(slots: [u64; SKETCH_SLOTS], cardinality: usize) -> MinHash {
        MinHash {
            mins: slots,
            cardinality,
        }
    }

    /// The raw per-slot minima (for serialization; `u64::MAX` = empty slot).
    pub fn slots(&self) -> &[u64; SKETCH_SLOTS] {
        &self.mins
    }

    /// Estimated Jaccard similarity with another sketch.
    pub fn jaccard(&self, other: &MinHash) -> f64 {
        if self.cardinality == 0 && other.cardinality == 0 {
            return 1.0;
        }
        if self.cardinality == 0 || other.cardinality == 0 {
            return 0.0;
        }
        let matches = self
            .mins
            .iter()
            .zip(other.mins.iter())
            .filter(|(a, b)| a == b && **a != u64::MAX)
            .count();
        matches as f64 / SKETCH_SLOTS as f64
    }

    /// Estimated containment of `self`'s set in `other`'s set
    /// (`|A ∩ B| / |A|`), derived from the Jaccard estimate and exact
    /// cardinalities — the Lazo-style coupled estimation [17].
    pub fn containment_in(&self, other: &MinHash) -> f64 {
        if self.cardinality == 0 {
            return 0.0;
        }
        let j = self.jaccard(other);
        if j <= 0.0 {
            return 0.0;
        }
        let union_est = (self.cardinality + other.cardinality) as f64 / (1.0 + j);
        let intersection = j * union_est;
        (intersection / self.cardinality as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(range: std::ops::Range<usize>) -> Vec<String> {
        range.map(|i| format!("key_{i}")).collect()
    }

    #[test]
    fn identical_sets_have_jaccard_one() {
        let a = MinHash::from_keys(&keys(0..200));
        let b = MinHash::from_keys(&keys(0..200));
        assert!((a.jaccard(&b) - 1.0).abs() < 1e-12);
        assert!((a.containment_in(&b) - 1.0).abs() < 0.05);
    }

    #[test]
    fn disjoint_sets_have_jaccard_near_zero() {
        let a = MinHash::from_keys(&keys(0..200));
        let b = MinHash::from_keys(&keys(1000..1200));
        assert!(a.jaccard(&b) < 0.05);
        assert!(a.containment_in(&b) < 0.1);
    }

    #[test]
    fn half_overlap_estimated() {
        let a = MinHash::from_keys(&keys(0..400));
        let b = MinHash::from_keys(&keys(200..600));
        // True Jaccard = 200/600 = 1/3.
        let j = a.jaccard(&b);
        assert!((j - 1.0 / 3.0).abs() < 0.12, "j={j}");
    }

    #[test]
    fn containment_asymmetric_for_subset() {
        let small = MinHash::from_keys(&keys(0..100));
        let big = MinHash::from_keys(&keys(0..1000));
        let c_small_in_big = small.containment_in(&big);
        let c_big_in_small = big.containment_in(&small);
        assert!(c_small_in_big > 0.8, "subset containment {c_small_in_big}");
        assert!(
            c_big_in_small < 0.3,
            "superset containment {c_big_in_small}"
        );
    }

    #[test]
    fn empty_set_edge_cases() {
        let empty = MinHash::from_keys::<&str>(&[]);
        let full = MinHash::from_keys(&keys(0..10));
        assert_eq!(empty.jaccard(&full), 0.0);
        assert_eq!(empty.containment_in(&full), 0.0);
        assert_eq!(empty.jaccard(&empty), 1.0);
    }

    #[test]
    fn from_parts_roundtrips_bit_identically() {
        let a = MinHash::from_keys(&keys(0..75));
        let b = MinHash::from_parts(*a.slots(), a.cardinality);
        assert_eq!(a, b);
        assert_eq!(a.jaccard(&b), 1.0);
    }

    #[test]
    #[should_panic(expected = "deduplicated")]
    #[cfg(debug_assertions)]
    fn duplicated_input_trips_the_debug_guard() {
        let _ = MinHash::from_keys(&["a", "b", "a"]);
    }

    #[test]
    fn sketch_is_order_insensitive() {
        let mut shuffled = keys(0..50);
        shuffled.reverse();
        assert_eq!(
            MinHash::from_keys(&keys(0..50)),
            MinHash::from_keys(&shuffled)
        );
    }
}
