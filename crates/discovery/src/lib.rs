#![forbid(unsafe_code)]
//! # metam-discovery
//!
//! The data-discovery substrate: a join-path index standing in for Aurum
//! [12], which the paper uses to generate candidate augmentations
//! (§II-C "Preliminaries").
//!
//! Pipeline:
//!
//! 1. [`minhash`] — MinHash sketches over normalized column values, giving
//!    cheap Jaccard/containment estimates (the approximate, *noisy* matching
//!    the paper assumes: false-positive join paths are expected and Metam
//!    must survive them).
//! 2. [`index`] — a [`DiscoveryIndex`] of every column in a repository.
//! 3. [`path`] — joinable-column detection and multi-hop join-path
//!    enumeration (Definition 3: chains `Din ⋈ D1 ⋈ … ⋈ Dt`).
//! 4. [`candidate`] — candidate augmentations: one per projected non-key
//!    column of a join path (Definition 4: `Γ(Din, P[j])`).
//! 5. [`materialize`] — a caching [`Materializer`] that left-joins a
//!    candidate into a `Din`-aligned column.

#![warn(missing_docs)]

pub mod candidate;
pub mod index;
pub mod materialize;
pub mod minhash;
pub mod path;

pub use candidate::{generate_candidates, Candidate, CandidateId};
pub use index::{ColumnDescriptor, ColumnRef, DiscoveryIndex, TableDescriptor};
pub use materialize::{Materializer, TableProvider};
pub use minhash::{MinHash, SKETCH_SLOTS};
pub use path::{enumerate_paths, Hop, JoinPath};
