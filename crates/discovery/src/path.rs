//! Join paths (paper Definition 3) and their enumeration.

use metam_table::Table;

use crate::index::{ColumnRef, DiscoveryIndex};
use crate::minhash::MinHash;

/// One equi-join hop in a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Hop {
    /// Column of the *previous* relation in the chain (the input dataset
    /// for the first hop) providing the join values.
    pub left_column: usize,
    /// Repository table joined into.
    pub table: usize,
    /// Key column within that table.
    pub key_column: usize,
}

/// An ordered chain of joins `Din ⋈ D1 ⋈ … ⋈ Dt`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinPath {
    /// The hops, in join order. Never empty.
    pub hops: Vec<Hop>,
}

impl JoinPath {
    /// Single-hop path.
    pub fn single(left_column: usize, table: usize, key_column: usize) -> JoinPath {
        JoinPath {
            hops: vec![Hop {
                left_column,
                table,
                key_column,
            }],
        }
    }

    /// The final hop of the chain. Both constructors (`single` and
    /// `extended`) push a hop before a `JoinPath` exists, so the chain
    /// is non-empty by construction.
    pub fn last_hop(&self) -> &Hop {
        // metam-analyze: allow(panic-in-lib): hops is non-empty by construction (see doc above); the one place the invariant is asserted
        self.hops.last().expect("join path has at least one hop")
    }

    /// Index of the final table in the chain.
    pub fn last_table(&self) -> usize {
        self.last_hop().table
    }

    /// Chain length `t` (number of joined datasets).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Join paths are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Enumeration limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathConfig {
    /// Minimum containment of probe keys in the candidate key column.
    pub containment_threshold: f64,
    /// Maximum hops (1 = direct joins only, 2 adds transitive joins).
    pub max_hops: usize,
    /// Hard cap on enumerated paths (keeps adversarial repositories sane).
    pub max_paths: usize,
}

impl Default for PathConfig {
    fn default() -> Self {
        PathConfig {
            containment_threshold: 0.6,
            max_hops: 2,
            max_paths: 50_000,
        }
    }
}

/// Enumerate join paths from `din` into the indexed repository.
///
/// Every `keyish` column of `din` is probed; each discovered joinable
/// column yields a 1-hop path, and (up to `max_hops`) each keyish column of
/// a joined table is probed again for transitive paths. Paths are returned
/// with the containment score of their *first* hop (the fraction of `din`
/// rows expected to survive the chain start).
pub fn enumerate_paths(
    din: &Table,
    index: &DiscoveryIndex,
    config: &PathConfig,
) -> Vec<(JoinPath, f64)> {
    let mut out: Vec<(JoinPath, f64)> = Vec::new();

    // Probe columns of Din that look like keys.
    for (ci, col) in din.columns().iter().enumerate() {
        let keys = col.distinct_keys();
        let non_null = col.len() - col.null_count();
        if non_null == 0 || keys.len() * 2 < non_null {
            continue;
        }
        let probe = MinHash::from_keys(&keys);
        for (target, containment) in
            index.joinable_columns(&probe, config.containment_threshold, None)
        {
            if out.len() >= config.max_paths {
                return out;
            }
            let path = JoinPath::single(ci, target.table, target.column);
            out.push((path.clone(), containment));

            if config.max_hops >= 2 {
                extend_path(&path, containment, index, config, &mut out);
            }
        }
    }
    out
}

/// Add 2nd-hop extensions of `path`.
///
/// The bridge column of the joined table is probed with the sketch the
/// index already holds for it — identical to re-sketching the column's
/// distinct values (both derive from the same `distinct_keys`), but
/// payload-free, so transitive enumeration works over a catalog-backed
/// index without loading the bridge table.
fn extend_path(
    path: &JoinPath,
    first_containment: f64,
    index: &DiscoveryIndex,
    config: &PathConfig,
    out: &mut Vec<(JoinPath, f64)>,
) {
    let last = path.last_table();
    let ncols = index.descriptor(last).columns.len();
    let used_key = path.last_hop().key_column;
    for ci in 0..ncols {
        if ci == used_key {
            continue;
        }
        let entry = index.entry(last, ci);
        if !entry.keyish {
            continue;
        }
        for (target, _containment) in
            index.joinable_columns(&entry.sketch, config.containment_threshold, Some(last))
        {
            if out.len() >= config.max_paths {
                return;
            }
            let mut hops = path.hops.clone();
            hops.push(Hop {
                left_column: ci,
                table: target.table,
                key_column: target.column,
            });
            out.push((JoinPath { hops }, first_containment));
        }
    }
}

/// Pretty description like `zip→crime.zipcode→district.id`.
pub fn describe_path(din: &Table, path: &JoinPath, index: &DiscoveryIndex) -> String {
    let mut parts = vec![din.column_display_name(path.hops[0].left_column)];
    for hop in &path.hops {
        let t = index.descriptor(hop.table);
        parts.push(format!(
            "{}.{}",
            t.name,
            t.column_display_name(hop.key_column)
        ));
    }
    parts.join("→")
}

/// Re-export used by candidate generation.
pub use crate::index::ColumnRef as PathColumnRef;

#[allow(unused)]
fn _assert_types(c: ColumnRef) -> ColumnRef {
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;
    use std::sync::Arc;

    fn din() -> Table {
        Table::from_columns(
            "din",
            vec![
                Column::from_strings(
                    Some("zip".into()),
                    (0..60).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_floats(Some("y".into()), (0..60).map(|i| Some(i as f64)).collect()),
            ],
        )
        .unwrap()
    }

    fn repo() -> DiscoveryIndex {
        // t0 joins din.zip and bridges via "district" to t1.
        let t0 = Table::from_columns(
            "crime",
            vec![
                Column::from_strings(
                    Some("zipcode".into()),
                    (0..60).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_strings(
                    Some("district".into()),
                    (0..60).map(|i| Some(format!("d{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("rate".into()),
                    (0..60).map(|i| Some(i as f64)).collect(),
                ),
            ],
        )
        .unwrap();
        let t1 = Table::from_columns(
            "districts",
            vec![
                Column::from_strings(
                    Some("id".into()),
                    (0..60).map(|i| Some(format!("d{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("income".into()),
                    (0..60).map(|i| Some(i as f64 * 2.0)).collect(),
                ),
            ],
        )
        .unwrap();
        DiscoveryIndex::build(vec![Arc::new(t0), Arc::new(t1)])
    }

    #[test]
    fn finds_direct_and_transitive_paths() {
        let idx = repo();
        let paths = enumerate_paths(&din(), &idx, &PathConfig::default());
        let single: Vec<_> = paths.iter().filter(|(p, _)| p.len() == 1).collect();
        let double: Vec<_> = paths.iter().filter(|(p, _)| p.len() == 2).collect();
        assert!(
            single.iter().any(|(p, _)| p.last_table() == 0),
            "direct join into crime expected"
        );
        assert!(
            double.iter().any(|(p, _)| p.last_table() == 1),
            "transitive join into districts expected: {paths:?}"
        );
    }

    #[test]
    fn max_hops_one_disables_transitive() {
        let idx = repo();
        let cfg = PathConfig {
            max_hops: 1,
            ..Default::default()
        };
        let paths = enumerate_paths(&din(), &idx, &cfg);
        assert!(paths.iter().all(|(p, _)| p.len() == 1));
    }

    #[test]
    fn max_paths_caps_enumeration() {
        let idx = repo();
        let cfg = PathConfig {
            max_paths: 1,
            ..Default::default()
        };
        let paths = enumerate_paths(&din(), &idx, &cfg);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn containment_scores_in_range() {
        let idx = repo();
        let paths = enumerate_paths(&din(), &idx, &PathConfig::default());
        assert!(paths.iter().all(|(_, c)| (0.0..=1.0).contains(c)));
    }

    #[test]
    fn describe_is_readable() {
        let idx = repo();
        let paths = enumerate_paths(&din(), &idx, &PathConfig::default());
        let (p, _) = paths.iter().find(|(p, _)| p.len() == 1).unwrap();
        let desc = describe_path(&din(), p, &idx);
        assert!(desc.contains("zip"), "desc={desc}");
        assert!(desc.contains("crime."), "desc={desc}");
    }
}
