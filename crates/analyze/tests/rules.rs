//! Fixture-driven tests: every rule gets a positive case (fires), a
//! negative case (clean), and a pragma-suppressed case; plus the pragma
//! contract itself (missing reason / unknown rule are rejected).

use metam_analyze::analyze_source;

fn rules_fired(report: &metam_analyze::Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

// --- panic-in-lib -------------------------------------------------------

#[test]
fn panic_in_lib_fires_on_each_token() {
    for snippet in [
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }",
        "pub fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }",
        "pub fn f() { panic!(\"boom\"); }",
        "pub fn f() { unreachable!(); }",
        "pub fn f() { todo!(); }",
    ] {
        let report = analyze_source("crates/core/src/engine.rs", snippet);
        assert_eq!(rules_fired(&report), vec!["panic-in-lib"], "{snippet}");
    }
}

#[test]
fn panic_in_lib_ignores_tests_strings_comments_and_nonlib() {
    // Inside a #[cfg(test)] module.
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}";
    assert!(analyze_source("crates/core/src/a.rs", src).clean());
    // Inside a string literal or comment.
    let src = "pub fn f() -> &'static str { \"call .unwrap()\" } // or .expect(it)";
    assert!(analyze_source("crates/core/src/a.rs", src).clean());
    // In a bench target, an integration test, or a binary.
    let src = "fn main() { run().unwrap(); }";
    assert!(analyze_source("crates/bench/benches/join.rs", src).clean());
    assert!(analyze_source("tests/session_api.rs", src).clean());
    assert!(analyze_source("src/bin/metam.rs", src).clean());
    // unwrap_or / unwrap_or_else are not panics.
    let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
    assert!(analyze_source("crates/core/src/a.rs", src).clean());
}

#[test]
fn panic_in_lib_pragma_suppresses_and_is_recorded() {
    let src = "pub fn f(x: Option<u32>) -> u32 {\n    \
               x.unwrap() // metam-analyze: allow(panic-in-lib): invariant holds by construction\n}";
    let report = analyze_source("crates/core/src/a.rs", src);
    assert!(report.clean());
    assert_eq!(report.suppressions.len(), 1);
    assert_eq!(report.suppressions[0].rule, "panic-in-lib");
    assert_eq!(
        report.suppressions[0].reason,
        "invariant holds by construction"
    );
    // Pragma on the line above works too.
    let src = "// metam-analyze: allow(panic-in-lib): fixture invariant\nlet y = x.unwrap();";
    assert!(analyze_source("crates/core/src/a.rs", src).clean());
}

#[test]
fn pragma_does_not_leak_to_other_lines_or_rules() {
    // Two lines below the pragma: still a finding.
    let src = "// metam-analyze: allow(panic-in-lib): close only\nlet a = 1;\nlet y = x.unwrap();";
    let report = analyze_source("crates/core/src/a.rs", src);
    assert_eq!(rules_fired(&report), vec!["panic-in-lib"]);
    // A pragma for a different rule does not suppress.
    let src = "let y = x.unwrap(); // metam-analyze: allow(raw-thread-spawn): wrong rule";
    let report = analyze_source("crates/core/src/a.rs", src);
    assert_eq!(rules_fired(&report), vec!["panic-in-lib"]);
}

// --- pragma contract ----------------------------------------------------

#[test]
fn pragma_without_reason_is_rejected() {
    let src = "let y = x.unwrap(); // metam-analyze: allow(panic-in-lib)";
    let report = analyze_source("crates/core/src/a.rs", src);
    let fired = rules_fired(&report);
    assert!(
        fired.contains(&"invalid-pragma"),
        "reasonless pragma must be a finding, got {fired:?}"
    );
    assert!(
        fired.contains(&"panic-in-lib"),
        "a reasonless pragma must not suppress, got {fired:?}"
    );
    // Trailing punctuation with no text is still reasonless.
    let src = "let y = x.unwrap(); // metam-analyze: allow(panic-in-lib):";
    assert!(rules_fired(&analyze_source("crates/core/src/a.rs", src)).contains(&"invalid-pragma"));
}

#[test]
fn pragma_with_unknown_rule_is_rejected() {
    let src = "let a = 1; // metam-analyze: allow(no-such-rule): because";
    let report = analyze_source("crates/core/src/a.rs", src);
    assert_eq!(rules_fired(&report), vec!["invalid-pragma"]);
}

// --- nondeterministic-iteration ----------------------------------------

#[test]
fn hash_iteration_fires_in_output_affecting_crates() {
    let src = "use std::collections::HashMap;\n\
               pub fn f(m: &HashMap<String, u32>) -> Vec<u32> {\n    \
               m.values().copied().collect()\n}";
    let report = analyze_source("crates/lake/src/catalog.rs", src);
    assert_eq!(rules_fired(&report), vec!["nondeterministic-iteration"]);
    // `for` loop form.
    let src = "let mut m = HashMap::new();\nfor (k, v) in &m {\n    emit(k, v);\n}";
    let report = analyze_source("crates/core/src/engine.rs", src);
    assert_eq!(rules_fired(&report), vec!["nondeterministic-iteration"]);
    // The serve crate renders wire replies, so it is output-affecting too.
    let src = "pub fn f(m: &HashMap<String, u32>) -> Vec<u32> {\n    \
               m.values().copied().collect()\n}";
    let report = analyze_source("crates/serve/src/server.rs", src);
    assert_eq!(rules_fired(&report), vec!["nondeterministic-iteration"]);
}

#[test]
fn hash_iteration_with_sort_or_btree_or_elsewhere_is_clean() {
    // Collected then sorted on the next line — the canonical fix.
    let src = "pub fn f(m: &HashMap<String, u32>) -> Vec<u32> {\n    \
               let mut v: Vec<u32> = m.values().copied().collect();\n    v.sort();\n    v\n}";
    assert!(analyze_source("crates/lake/src/a.rs", src).clean());
    // Collected into an ordered container.
    let src = "pub fn f(m: &HashMap<String, u32>) -> BTreeMap<String, u32> {\n    \
               m.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<_, _>>()\n}";
    assert!(analyze_source("crates/lake/src/a.rs", src).clean());
    let src = "pub fn f(m: &HashMap<String, u32>) -> usize { m.values().count() }";
    assert!(analyze_source("crates/lake/src/a.rs", src).clean());
    // Non-output-affecting crate: out of scope.
    let src = "pub fn f(m: &HashMap<String, u32>) -> Vec<u32> { m.values().copied().collect() }";
    assert!(analyze_source("crates/ml/src/a.rs", src).clean());
    // Lookup is not iteration.
    let src = "pub fn f(m: &HashMap<String, u32>) -> Option<u32> { m.get(\"k\").copied() }";
    assert!(analyze_source("crates/core/src/a.rs", src).clean());
    // A HashSet *return type* does not taint a slice parameter.
    let src = "pub fn f(entries: &[u32]) -> HashSet<u32> {\n    \
               entries.iter().copied().collect()\n}";
    assert!(analyze_source("crates/lake/src/a.rs", src).clean());
}

#[test]
fn hash_iteration_pragma_suppresses() {
    let src = "let m = HashMap::new();\n\
               // metam-analyze: allow(nondeterministic-iteration): feeds a commutative reduction\n\
               for v in &m {\n    total += v;\n}";
    let report = analyze_source("crates/profile/src/a.rs", src);
    assert!(report.clean());
    assert_eq!(report.suppressions.len(), 1);
}

// --- timing-outside-guard ----------------------------------------------

#[test]
fn timing_rule_pins_core_to_the_observer_gate() {
    // Unguarded clock read in metam-core: finding.
    let src = "pub fn f() {\n    let t = Instant::now();\n}";
    let report = analyze_source("crates/core/src/engine.rs", src);
    assert_eq!(rules_fired(&report), vec!["timing-outside-guard"]);
    // The sanctioned passivity pattern: clean.
    let src = "let started = observing.then(Instant::now);";
    assert!(analyze_source("crates/core/src/engine.rs", src).clean());
    // Other crates may time freely (spans already gate on enabled()).
    let src = "let t = Instant::now();";
    assert!(analyze_source("crates/obs/src/span.rs", src).clean());
    assert!(analyze_source("src/session/mod.rs", src).clean());
    // Suppressible with a reason.
    let src = "let t = Instant::now(); // metam-analyze: allow(timing-outside-guard): feeds a debug assertion stripped in release";
    assert!(analyze_source("crates/core/src/engine.rs", src).clean());
}

// --- raw-thread-spawn ---------------------------------------------------

#[test]
fn raw_thread_spawn_only_in_sanctioned_module() {
    let src = "let h = std::thread::spawn(move || work());";
    let report = analyze_source("crates/profile/src/profile.rs", src);
    assert_eq!(rules_fired(&report), vec!["raw-thread-spawn"]);
    // The sanctioned worker-pool module is exempt (its path is a crate
    // root, so the fixture needs the forbid attribute too).
    let pool_src = format!("#![forbid(unsafe_code)]\n{src}");
    assert!(analyze_source("crates/pool/src/lib.rs", &pool_src).clean());
    // The daemon's service threads (acceptor, readers, workers) are the
    // other sanctioned site — but only its server module, not the rest of
    // the serve crate.
    assert!(analyze_source("crates/serve/src/server.rs", src).clean());
    let report = analyze_source("crates/serve/src/protocol.rs", src);
    assert_eq!(rules_fired(&report), vec!["raw-thread-spawn"]);
    // The scan catalog lost its exemption when the pool moved out of it.
    let report = analyze_source("crates/lake/src/catalog.rs", src);
    assert_eq!(rules_fired(&report), vec!["raw-thread-spawn"]);
    // Scoped crossbeam spawns are not raw spawns.
    let src = "scope.spawn(move |_| work());";
    assert!(analyze_source("crates/profile/src/profile.rs", src).clean());
    // Tests may thread.
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { std::thread::spawn(|| ()); }\n}";
    assert!(analyze_source("crates/profile/src/profile.rs", src).clean());
    // Suppressible.
    let src = "let h = std::thread::spawn(run); // metam-analyze: allow(raw-thread-spawn): detached watchdog, joined on drop";
    assert!(analyze_source("crates/profile/src/profile.rs", src).clean());
}

// --- unjustified-atomic-ordering ---------------------------------------

#[test]
fn strong_ordering_requires_written_justification() {
    let src = "FLAG.store(true, Ordering::SeqCst);";
    let report = analyze_source("crates/obs/src/sink.rs", src);
    assert_eq!(rules_fired(&report), vec!["unjustified-atomic-ordering"]);
    // Relaxed needs no note.
    let src = "FLAG.store(true, Ordering::Relaxed);";
    assert!(analyze_source("crates/obs/src/sink.rs", src).clean());
    // An adjacent `// ordering:` comment justifies (same line or above).
    let src = "FLAG.store(true, Ordering::Release); // ordering: publishes the buffer write before the flag";
    assert!(analyze_source("crates/obs/src/sink.rs", src).clean());
    let src = "// ordering: pairs with the Acquire load in reader()\nFLAG.store(true, Ordering::Release);";
    assert!(analyze_source("crates/obs/src/sink.rs", src).clean());
    // The pragma works as a last resort.
    let src = "FLAG.store(true, Ordering::SeqCst); // metam-analyze: allow(unjustified-atomic-ordering): matches the shim API it stands in for";
    assert!(analyze_source("crates/obs/src/sink.rs", src).clean());
}

// --- env-read-outside-config -------------------------------------------

#[test]
fn env_reads_are_confined_to_entry_modules() {
    let src = "let v = std::env::var(\"METAM_X\").ok();";
    let report = analyze_source("crates/core/src/engine.rs", src);
    assert_eq!(rules_fired(&report), vec!["env-read-outside-config"]);
    // Entry modules are allowed.
    assert!(analyze_source("crates/lake/src/catalog.rs", src).clean());
    assert!(analyze_source("crates/obs/src/sink.rs", src).clean());
    assert!(analyze_source("src/cli.rs", src).clean());
    assert!(analyze_source("crates/bench/src/ingest.rs", src).clean());
    assert!(analyze_source("src/bin/metam.rs", src).clean());
    // The daemon reads METAM_SERVE_* tuning in its server module only.
    assert!(analyze_source("crates/serve/src/server.rs", src).clean());
    let report = analyze_source("crates/serve/src/registry.rs", src);
    assert_eq!(rules_fired(&report), vec!["env-read-outside-config"]);
    // Tests may read env (temp dirs).
    let src = "#[cfg(test)]\nmod tests {\n    fn t() { let d = std::env::temp_dir(); }\n}";
    assert!(analyze_source("crates/core/src/engine.rs", src).clean());
    // Suppressible.
    let src = "let v = std::env::var(\"HOME\"); // metam-analyze: allow(env-read-outside-config): platform cache dir resolution";
    assert!(analyze_source("crates/core/src/engine.rs", src).clean());
}

// --- missing-forbid-unsafe ---------------------------------------------

#[test]
fn crate_roots_must_forbid_unsafe() {
    let report = analyze_source("crates/core/src/lib.rs", "//! docs\npub mod engine;\n");
    assert_eq!(rules_fired(&report), vec!["missing-forbid-unsafe"]);
    let src = "#![forbid(unsafe_code)]\n//! docs\npub mod engine;\n";
    assert!(analyze_source("crates/core/src/lib.rs", src).clean());
    // Non-root files are not checked.
    assert!(analyze_source("crates/core/src/engine.rs", "pub fn f() {}").clean());
    // The root crate's lib.rs is a crate root too.
    let report = analyze_source("src/lib.rs", "pub mod session;\n");
    assert_eq!(rules_fired(&report), vec!["missing-forbid-unsafe"]);
}

// --- reporting ----------------------------------------------------------

#[test]
fn findings_carry_file_line_and_excerpt() {
    let src = "pub fn f() {\n    let t = x.unwrap();\n}";
    let report = analyze_source("crates/core/src/engine.rs", src);
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!(f.file, "crates/core/src/engine.rs");
    assert_eq!(f.line, 2);
    assert_eq!(f.excerpt, "let t = x.unwrap();");
    assert!(f.message.contains("typed error"));
}
