//! `--json` wire-format check: the report must parse with the same JSON
//! reader that validates `discover --json` output (metam-obs), and carry
//! the fields CI's smoke step greps for.

use metam_obs::json::Value;
use std::path::Path;

fn workspace_report_json() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    metam_analyze::analyze_workspace(&root)
        .expect("workspace scan")
        .render_json()
}

#[test]
fn json_report_parses_with_the_obs_validator() {
    let text = workspace_report_json();
    let value = metam_obs::json::parse(&text).expect("report is well-formed JSON");
    let get = |key: &str| {
        value
            .get(key)
            .unwrap_or_else(|| panic!("missing key `{key}`"))
    };

    assert_eq!(get("tool"), &Value::Str("metam-analyze".into()));
    assert!(matches!(get("files_scanned"), Value::Num(n) if *n > 0.0));
    assert!(matches!(get("lines_scanned"), Value::Num(n) if *n > 0.0));
    assert_eq!(get("clean"), &Value::Bool(true));
    assert!(matches!(get("counts"), Value::Obj(_)));
    assert!(matches!(get("findings"), Value::Arr(a) if a.is_empty()));

    // Suppressions are structured records with file/line/rule/reason.
    let sups = match get("suppressions") {
        Value::Arr(a) => a,
        other => panic!("suppressions must be an array, got {other:?}"),
    };
    assert!(!sups.is_empty());
    for sup in sups {
        for key in ["rule", "file", "reason"] {
            assert!(
                matches!(sup.get(key), Some(Value::Str(s)) if !s.is_empty()),
                "suppression missing string field `{key}`"
            );
        }
        assert!(matches!(sup.get("line"), Some(Value::Num(n)) if *n >= 1.0));
    }
}

#[test]
fn json_escaping_round_trips_finding_excerpts() {
    // A finding whose excerpt contains quotes, backslashes and tabs must
    // still produce parseable JSON.
    let src = "pub fn f() {\n\tlet v = std::env::var(\"X\\\\PATH\").ok();\n}";
    let report = metam_analyze::analyze_source("crates/core/src/weird.rs", src);
    assert!(!report.clean());
    let value = metam_obs::json::parse(&report.render_json()).expect("escaped JSON parses");
    let rendered = format!("{value:?}");
    assert!(rendered.contains("env-read-outside-config"));
}
