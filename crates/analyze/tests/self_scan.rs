//! The linter's own acceptance gate: the workspace must pass its own
//! analysis, and every suppression in the tree must carry a reason.

use std::path::Path;

#[test]
fn workspace_is_clean_under_its_own_linter() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze sits two levels below the workspace root")
        .to_path_buf();
    let report = metam_analyze::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.clean(),
        "metam-analyze found violations in the workspace:\n{}",
        report.render_text()
    );
    // The scan actually covered the tree (guards against a walker
    // regression silently scanning nothing).
    assert!(
        report.files_scanned > 100,
        "only {} files scanned",
        report.files_scanned
    );
    // Suppressions exist (the workspace documents its exemptions) and
    // every one of them carries a non-empty written reason.
    assert!(!report.suppressions.is_empty());
    for s in &report.suppressions {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression without reason at {}:{}",
            s.file,
            s.line
        );
        assert!(
            metam_analyze::RULES.contains(&s.rule.as_str()),
            "suppression names unknown rule {}",
            s.rule
        );
    }
}

#[test]
fn every_crate_root_forbids_unsafe() {
    // Redundant with the workspace scan, but pins the satellite
    // explicitly: root + the 11 library crates.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let mut roots = vec!["src/lib.rs".to_string()];
    for krate in [
        "table",
        "discovery",
        "ml",
        "causal",
        "profile",
        "core",
        "obs",
        "datagen",
        "tasks",
        "bench",
        "lake",
        "analyze",
    ] {
        roots.push(format!("crates/{krate}/src/lib.rs"));
    }
    for rel in roots {
        let text = std::fs::read_to_string(root.join(&rel)).expect("crate root readable");
        assert!(
            text.contains("#![forbid(unsafe_code)]"),
            "{rel} lacks #![forbid(unsafe_code)]"
        );
    }
}
