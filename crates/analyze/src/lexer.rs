//! A minimal Rust source lexer for lint rules.
//!
//! Rules must never fire on tokens that appear inside comments, string
//! literals, or char literals (`"unwrap()"` in a fixture string is not a
//! panic site), and most rules exempt test code. This module reduces a
//! source file to per-line views that make both properties cheap to
//! enforce:
//!
//! * `code` — the source line with comment text and literal *contents*
//!   blanked out (delimiters are kept so token adjacency survives),
//! * `comments` — the comment bodies found on the line (pragmas and
//!   `// ordering:` justifications live here),
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` module or
//!   `#[test]` function body.
//!
//! The lexer understands line comments, nested block comments, string /
//! raw-string / byte-string literals spanning lines, and distinguishes
//! char literals from lifetimes with a short lookahead. It is a
//! heuristic, not a full parser — good enough for this workspace's own
//! source, and fixture-tested against the constructs the rules care
//! about.

/// One lexed source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Original text, used for excerpts in findings.
    pub raw: String,
    /// Code view: comment text and literal contents blanked.
    pub code: String,
    /// Comment bodies (without `//`/`/*` delimiters) on this line.
    pub comments: Vec<String>,
    /// True when the line is inside `#[cfg(test)]` / `#[test]` scope.
    pub in_test: bool,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    /// Inside a `"…"` string literal (may span lines).
    Str,
    /// Inside a raw string; payload is the number of `#` marks.
    RawStr(usize),
    /// Inside `/* … */`; payload is the nesting depth.
    Block(usize),
}

/// Lex full source text into per-line views.
pub fn lex(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for raw_line in text.split('\n') {
        let raw: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut comments = Vec::new();
        let mut comment_buf = String::new();
        let mut in_comment_here = matches!(state, State::Block(_));
        let mut i = 0usize;
        while i < raw.len() {
            let c = raw[i];
            match state {
                State::Code => {
                    if c == '/' && raw.get(i + 1) == Some(&'/') {
                        // Line comment: capture the body and stop.
                        comments.push(raw[i + 2..].iter().collect());
                        break;
                    } else if c == '/' && raw.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        in_comment_here = true;
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    } else if let Some(hashes) = raw_string_open(&raw, i) {
                        // r"…", r#"…"#, br"…" — keep the opener visible.
                        for &ch in &raw[i..i + hashes.skip] {
                            code.push(ch);
                        }
                        state = State::RawStr(hashes.marks);
                        i += hashes.skip;
                    } else if c == '\'' || (c == 'b' && raw.get(i + 1) == Some(&'\'')) {
                        let start = if c == 'b' { i + 1 } else { i };
                        match char_literal_len(&raw, start) {
                            Some(len) => {
                                // Blank the char literal contents.
                                code.push('\'');
                                code.push('\'');
                                i = start + len;
                            }
                            None => {
                                // A lifetime (or stray quote): keep it.
                                code.push(c);
                                i += 1;
                            }
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(marks) => {
                    if c == '"' && raw[i + 1..].iter().take_while(|&&h| h == '#').count() >= marks {
                        code.push('"');
                        state = State::Code;
                        i += 1 + marks;
                    } else {
                        i += 1;
                    }
                }
                State::Block(depth) => {
                    if c == '*' && raw.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            comments.push(std::mem::take(&mut comment_buf));
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && raw.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        comment_buf.push(c);
                        i += 1;
                    }
                }
            }
        }
        if in_comment_here && matches!(state, State::Block(_)) && !comment_buf.is_empty() {
            // Block comment continues past this line: flush what we saw.
            comments.push(std::mem::take(&mut comment_buf));
        }
        out.push(Line {
            raw: raw_line.to_string(),
            code,
            comments,
            in_test: false,
        });
    }
    mark_test_regions(&mut out);
    out
}

struct RawOpen {
    /// Characters to consume for the opener (`r##"` → 4).
    skip: usize,
    /// Number of `#` marks the closer must match.
    marks: usize,
}

/// Detect a raw (byte) string opener at `i`; `r` must not continue an
/// identifier (`for"` is not a raw string).
fn raw_string_open(raw: &[char], i: usize) -> Option<RawOpen> {
    let mut j = i;
    if raw.get(j) == Some(&'b') {
        j += 1;
    }
    if raw.get(j) != Some(&'r') {
        return None;
    }
    if i > 0 && (raw[i - 1].is_alphanumeric() || raw[i - 1] == '_') {
        return None;
    }
    let mut k = j + 1;
    let mut marks = 0usize;
    while raw.get(k) == Some(&'#') {
        marks += 1;
        k += 1;
    }
    if raw.get(k) == Some(&'"') {
        Some(RawOpen {
            skip: k + 1 - i,
            marks,
        })
    } else {
        None
    }
}

/// Length of a char literal starting at the `'` in position `i`, or
/// `None` when the quote starts a lifetime. Escaped forms (`'\n'`,
/// `'\u{1F600}'`) run to the next unescaped quote.
fn char_literal_len(raw: &[char], i: usize) -> Option<usize> {
    if raw.get(i) != Some(&'\'') {
        return None;
    }
    match raw.get(i + 1) {
        Some('\\') => {
            let mut j = i + 2;
            while j < raw.len() {
                if raw[j] == '\'' {
                    return Some(j + 1 - i);
                }
                j += 1;
            }
            None
        }
        Some(_) if raw.get(i + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

/// Second pass: mark lines inside `#[cfg(test)]` / `#[test]` item bodies
/// by tracking brace depth over the blanked code view.
fn mark_test_regions(lines: &mut [Line]) {
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_test = false;
    for line in lines.iter_mut() {
        let started_in_test = stack.iter().any(|&t| t);
        let mut touched_test = started_in_test;
        if line.code.contains("#[cfg(test)]")
            || line.code.contains("#[cfg(all(test")
            || line.code.contains("#[test]")
        {
            pending_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    stack.push(pending_test || stack.iter().any(|&t| t));
                    pending_test = false;
                    touched_test |= *stack.last().unwrap_or(&false);
                }
                '}' => {
                    stack.pop();
                }
                ';' if pending_test && !line.code.contains('{') => {
                    // `#[cfg(test)] use …;` — attribute consumed by a
                    // braceless item, so it must not leak forward.
                    pending_test = false;
                }
                _ => {}
            }
        }
        line.in_test = touched_test;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_stripped_from_code() {
        let lines = lex("let x = 1; // unwrap() here\n/* panic!() */ let y = 2;");
        assert!(!lines[0].code.contains("unwrap"));
        assert_eq!(lines[0].comments.len(), 1);
        assert!(lines[0].comments[0].contains("unwrap()"));
        assert!(!lines[1].code.contains("panic"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = lex(r#"let s = "call .unwrap() now"; s.len();"#);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("s.len()"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let lines = lex("let s = r#\"panic!() \"quoted\" body\"#; done();");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("done()"));
    }

    #[test]
    fn multiline_string_blanks_until_close() {
        let lines = lex("let s = \"first\nsecond unwrap()\nthird\"; after();");
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[2].code.contains("after()"));
    }

    #[test]
    fn nested_block_comment() {
        let lines = lex("/* outer /* inner */ still comment */ code();");
        assert!(lines[0].code.contains("code()"));
        assert!(!lines[0].code.contains("outer"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lines = lex("fn f<'a>(x: &'a str) { m('{', '\\n'); }");
        // Braces inside char literals are blanked; lifetimes survive.
        assert_eq!(lines[0].code.matches('{').count(), 1);
        assert!(lines[0].code.contains("<'a>"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lines = lex(src);
        assert!(!lines[0].in_test);
        assert!(lines[3].in_test);
        assert!(!lines[5].in_test, "region must close at the brace");
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { body(); }";
        let lines = lex(src);
        assert!(!lines[2].in_test);
    }

    #[test]
    fn test_fn_outside_mod_is_marked() {
        let src = "#[test]\nfn t() {\n    x.unwrap();\n}";
        let lines = lex(src);
        assert!(lines[2].in_test);
    }
}
