//! The rule engine: workspace invariants as machine-checkable rules.
//!
//! Every rule is scoped (which crates, which file kinds) and fires on
//! the blanked code view from [`crate::lexer`], so comments and string
//! literals can never trigger it, and `#[cfg(test)]` regions are exempt
//! where the invariant is about shipped library behavior. Suppression is
//! per line via `// metam-analyze: allow(<rule>): <reason>` (see
//! [`crate::pragma`]).

use crate::lexer::Line;
use crate::pragma::{self, PragmaError};
use crate::report::{Finding, Report, Suppression};

/// Rule ids, in catalog order.
pub const RULES: &[&str] = &[
    "nondeterministic-iteration",
    "panic-in-lib",
    "timing-outside-guard",
    "raw-thread-spawn",
    "unjustified-atomic-ordering",
    "env-read-outside-config",
    "missing-forbid-unsafe",
    "invalid-pragma",
];

/// Crates whose outputs must be byte-identical run to run: iterating a
/// hash container here risks order-dependent results.
const OUTPUT_AFFECTING_CRATES: &[&str] = &[
    "core",
    "lake",
    "discovery",
    "profile",
    "pool",
    "serve",
    "metam",
];

/// The modules allowed to own raw threads: the shared worker pool (scan
/// and search submit to it) and the serve daemon's acceptor/worker/
/// connection threads (long-lived service threads, not fork-join work —
/// the pool's scoped lifetimes cannot express them).
const SANCTIONED_SPAWN_MODULES: &[&str] = &["crates/pool/src/lib.rs", "crates/serve/src/server.rs"];

/// Modules allowed to read process environment (configuration entry
/// points; everything else must take config as arguments).
const ENV_ALLOWED: &[&str] = &[
    "crates/lake/src/catalog.rs",
    "crates/obs/src/sink.rs",
    "crates/serve/src/server.rs",
    "src/cli.rs",
];
const ENV_ALLOWED_PREFIXES: &[&str] = &["crates/bench/", "src/bin/"];

/// How the file participates in the build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FileKind {
    /// Library source (`src/**`, excluding `src/bin/`).
    Lib,
    /// Binary entry point (`src/bin/**`, `src/main.rs`).
    Bin,
    /// Integration test (`tests/**`).
    Test,
    /// Bench target (`benches/**`).
    Bench,
    /// Example (`examples/**`).
    Example,
}

/// Where a file sits in the workspace.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate directory name (`core`, `lake`, …; the root crate is `metam`).
    pub crate_name: String,
    /// Build role of the file.
    pub kind: FileKind,
}

impl FileContext {
    /// Classify a workspace-relative path.
    pub fn classify(path: &str) -> FileContext {
        let crate_name = match path.strip_prefix("crates/") {
            Some(rest) => rest.split('/').next().unwrap_or("").to_string(),
            None => "metam".to_string(),
        };
        let tail = path
            .strip_prefix("crates/")
            .and_then(|r| r.split_once('/'))
            .map_or(path, |(_, t)| t);
        let kind = if tail.starts_with("src/bin/") || tail == "src/main.rs" {
            FileKind::Bin
        } else if tail.starts_with("tests/") {
            FileKind::Test
        } else if tail.starts_with("benches/") {
            FileKind::Bench
        } else if tail.starts_with("examples/") {
            FileKind::Example
        } else {
            FileKind::Lib
        };
        FileContext {
            path: path.to_string(),
            crate_name,
            kind,
        }
    }

    /// True for the root `src/lib.rs` / `crates/<x>/src/lib.rs`.
    fn is_crate_root(&self) -> bool {
        self.path == "src/lib.rs" || {
            self.path.starts_with("crates/") && self.path.ends_with("/src/lib.rs")
        }
    }
}

/// Analyze one lexed file, appending findings/suppressions to `report`.
pub fn check_file(ctx: &FileContext, lines: &[Line], report: &mut Report) {
    report.files_scanned += 1;
    report.lines_scanned += lines.len();

    // Pass 1: collect pragmas (line number → allowed rules) and report
    // invalid ones. A pragma suppresses findings on its own line and on
    // the line directly below, so it can ride trailing or above.
    let mut allows: Vec<(usize, String, String)> = Vec::new(); // (line_no, rule, reason)
    for (idx, line) in lines.iter().enumerate() {
        let line_no = idx + 1;
        for comment in &line.comments {
            match pragma::parse(comment, RULES) {
                None => {}
                Some(Ok(p)) => allows.push((line_no, p.rule, p.reason)),
                Some(Err(err)) => report.findings.push(Finding {
                    rule: "invalid-pragma",
                    file: ctx.path.clone(),
                    line: line_no,
                    excerpt: line.raw.trim().to_string(),
                    message: match err {
                        PragmaError::Malformed => {
                            "pragma must be `metam-analyze: allow(<rule>): <reason>`".into()
                        }
                        PragmaError::MissingReason(rule) => format!(
                            "allow({rule}) pragma has no reason — every suppression \
                             must carry a written justification"
                        ),
                        PragmaError::UnknownRule(rule) => {
                            format!("allow({rule}) names an unknown rule")
                        }
                    },
                }),
            }
        }
    }
    let allowed = |rule: &str, line_no: usize| -> Option<&str> {
        allows
            .iter()
            .find(|(l, r, _)| r == rule && (*l == line_no || *l + 1 == line_no))
            .map(|(_, _, reason)| reason.as_str())
    };

    // Pass 2: run the line rules, honoring suppressions.
    let mut raw_findings: Vec<Finding> = Vec::new();
    rule_panic_in_lib(ctx, lines, &mut raw_findings);
    rule_nondeterministic_iteration(ctx, lines, &mut raw_findings);
    rule_timing_outside_guard(ctx, lines, &mut raw_findings);
    rule_raw_thread_spawn(ctx, lines, &mut raw_findings);
    rule_atomic_ordering(ctx, lines, &mut raw_findings);
    rule_env_read(ctx, lines, &mut raw_findings);
    rule_forbid_unsafe(ctx, lines, &mut raw_findings);
    for f in raw_findings {
        match allowed(f.rule, f.line) {
            Some(reason) => report.suppressions.push(Suppression {
                rule: f.rule.to_string(),
                file: f.file,
                line: f.line,
                reason: reason.to_string(),
            }),
            None => report.findings.push(f),
        }
    }
}

fn finding(
    rule: &'static str,
    ctx: &FileContext,
    line_no: usize,
    line: &Line,
    message: String,
) -> Finding {
    Finding {
        rule,
        file: ctx.path.clone(),
        line: line_no,
        excerpt: line.raw.trim().to_string(),
        message,
    }
}

/// True when `code[at..]` starts with `tok` and the character before
/// `at` does not extend an identifier (so `x.unwrap()` matches but
/// `my_unwrap()` never can via a leading-dot token anyway).
fn token_at(code: &str, at: usize, tok: &str) -> bool {
    if !code[at..].starts_with(tok) {
        return false;
    }
    let first = tok.chars().next().unwrap_or(' ');
    if !(first.is_alphanumeric() || first == '_') {
        return true;
    }
    !code[..at]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// All match positions of `tok` in `code` respecting identifier
/// boundaries on the left.
fn token_positions(code: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(tok) {
        let at = from + rel;
        if token_at(code, at, tok) {
            out.push(at);
        }
        from = at + tok.len();
    }
    out
}

fn has_token(code: &str, tok: &str) -> bool {
    !token_positions(code, tok).is_empty()
}

// --- panic-in-lib -------------------------------------------------------

const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Library code must surface failures through typed errors, never abort
/// the process. Tests, benches, examples and binary `main`s are exempt.
fn rule_panic_in_lib(ctx: &FileContext, lines: &[Line], out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for tok in PANIC_TOKENS {
            if has_token(&line.code, tok) {
                out.push(finding(
                    "panic-in-lib",
                    ctx,
                    idx + 1,
                    line,
                    format!(
                        "`{}` in library code — return a typed error instead \
                         (SessionError / TableError / LakeError)",
                        tok.trim_start_matches('.').trim_end_matches('('),
                    ),
                ));
                break;
            }
        }
    }
}

// --- nondeterministic-iteration ----------------------------------------

const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".into_iter()",
    ".drain(",
];

/// Iterator sinks whose result cannot depend on visit order.
const ORDER_INSENSITIVE: &[&str] = &[
    ".sort",
    "sorted",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
    ".count()",
    ".len()",
    ".sum",
    ".product",
    ".min(",
    ".min_by",
    ".max(",
    ".max_by",
    ".all(",
    ".any(",
    ".find(",
    ".position(",
    ".is_empty()",
    ".contains",
];

/// Identifier characters.
fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// The identifier (with optional `self.` prefix stripped) ending at
/// byte offset `end` of `code`.
fn ident_before(code: &str, end: usize) -> Option<&str> {
    let head = &code[..end];
    let start = head
        .char_indices()
        .rev()
        .take_while(|(_, c)| is_ident(*c))
        .last()
        .map(|(i, _)| i)?;
    let ident = &head[start..];
    if ident.chars().next().is_some_and(|c| c.is_numeric()) {
        None
    } else {
        Some(ident)
    }
}

/// Harvest identifiers declared with a `HashMap`/`HashSet` type on the
/// same line: `let (mut) NAME … Hash*`, or `NAME: … Hash*` (struct
/// fields and fn params).
fn hash_idents(lines: &[Line]) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for line in lines {
        let code = &line.code;
        if !(code.contains("HashMap") || code.contains("HashSet")) {
            continue;
        }
        for pos in token_positions(code, "let ") {
            let rest = code[pos + 4..].trim_start().trim_start_matches("mut ");
            let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
            if !name.is_empty() && !out.contains(&name) {
                out.push(name);
            }
        }
        // `NAME: …HashMap<…>` — walk back from each occurrence to the
        // nearest `ident:` on the same line.
        for tok in ["HashMap", "HashSet"] {
            for pos in token_positions(code, tok) {
                let head = &code[..pos];
                let Some(colon) = head.rfind(':') else {
                    continue;
                };
                // Skip path separators (`std::collections::HashMap`).
                if colon > 0 && head[..colon].ends_with(':') {
                    continue;
                }
                // A `->` or `)` between the colon and the type means the
                // hash type is a *return* type, not this ident's type
                // (`fn f(entries: &[T]) -> HashSet<…>`).
                if head[colon..].contains("->") || head[colon..].contains(')') {
                    continue;
                }
                if let Some(name) = ident_before(head, colon) {
                    let name = name.to_string();
                    if !name.is_empty() && !out.contains(&name) {
                        out.push(name);
                    }
                }
            }
        }
    }
    out
}

/// Code context from line `idx` forward over a short horizon: the rest
/// of the statement plus the line or two after it, enough to see a
/// *subsequent* sort (`let v: Vec<_> = m.values().collect(); v.sort();`)
/// or an ordered collect.
fn context_from(lines: &[Line], idx: usize) -> String {
    let mut ctx = String::new();
    for line in lines.iter().skip(idx).take(4) {
        ctx.push_str(&line.code);
        ctx.push(' ');
    }
    ctx
}

/// In output-affecting crates, iterating a `HashMap`/`HashSet` without
/// an order-insensitive sink risks nondeterministic output.
fn rule_nondeterministic_iteration(ctx: &FileContext, lines: &[Line], out: &mut Vec<Finding>) {
    if ctx.kind != FileKind::Lib || !OUTPUT_AFFECTING_CRATES.contains(&ctx.crate_name.as_str()) {
        return;
    }
    let idents = hash_idents(lines);
    if idents.is_empty() {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut hit = false;
        // Chained iteration: `map.iter()`, `self.cache.keys()`, …
        for m in ITER_METHODS {
            for pos in code.match_indices(m.trim_end_matches('(')).map(|(p, _)| p) {
                if !code[pos..].starts_with(m) {
                    continue;
                }
                if let Some(recv) = ident_before(code, pos) {
                    if idents.iter().any(|i| i == recv) {
                        hit = true;
                    }
                }
            }
        }
        // Direct loop: `for x in &map {`.
        if let Some(pos) = code.find("for ") {
            if token_at(code, pos, "for ") {
                if let Some(in_pos) = code[pos..].find(" in ") {
                    let expr = code[pos + in_pos + 4..]
                        .split('{')
                        .next()
                        .unwrap_or("")
                        .trim()
                        .trim_start_matches(['&', '*'])
                        .trim_start_matches("mut ");
                    let expr = expr.strip_prefix("self.").unwrap_or(expr);
                    if !expr.is_empty()
                        && expr.chars().all(is_ident)
                        && idents.iter().any(|i| i == expr)
                    {
                        hit = true;
                    }
                }
            }
        }
        if hit {
            let ctx_window = context_from(lines, idx);
            let ordered = ORDER_INSENSITIVE.iter().any(|t| ctx_window.contains(t));
            if !ordered {
                out.push(finding(
                    "nondeterministic-iteration",
                    ctx,
                    idx + 1,
                    line,
                    "hash-container iteration order is nondeterministic in an \
                     output-affecting crate — sort, collect into a BTree \
                     container, or justify with a pragma"
                        .into(),
                ));
            }
        }
    }
}

// --- timing-outside-guard ----------------------------------------------

/// The passivity invariant: `metam-core` may only read the clock behind
/// the observer gate (`observing.then(Instant::now)`), so instrumented
/// runs stay bit-identical to bare ones.
fn rule_timing_outside_guard(ctx: &FileContext, lines: &[Line], out: &mut Vec<Finding>) {
    if ctx.crate_name != "core" || ctx.kind != FileKind::Lib {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_token(&line.code, "Instant::now") && !line.code.contains(".then(Instant::now)") {
            out.push(finding(
                "timing-outside-guard",
                ctx,
                idx + 1,
                line,
                "clock read in metam-core outside the observer gate — use \
                 `observing.then(Instant::now)` so unobserved runs never time"
                    .into(),
            ));
        }
    }
}

// --- raw-thread-spawn ---------------------------------------------------

/// All parallelism goes through the sanctioned worker pool (scoped,
/// deterministic merge); raw `thread::spawn` handles escape join
/// discipline and ruin determinism.
fn rule_raw_thread_spawn(ctx: &FileContext, lines: &[Line], out: &mut Vec<Finding>) {
    if ctx.kind == FileKind::Test || SANCTIONED_SPAWN_MODULES.contains(&ctx.path.as_str()) {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_token(&line.code, "thread::spawn") || has_token(&line.code, "thread::Builder") {
            out.push(finding(
                "raw-thread-spawn",
                ctx,
                idx + 1,
                line,
                "raw thread spawn outside the sanctioned worker-pool module — \
                 submit work to metam-pool (crates/pool/src/lib.rs)"
                    .into(),
            ));
        }
    }
}

// --- unjustified-atomic-ordering ---------------------------------------

const STRONG_ORDERINGS: &[&str] = &[
    "Ordering::SeqCst",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// Non-`Relaxed` atomic orderings are a claim about cross-thread
/// happens-before; the claim must be written down next to the code.
fn rule_atomic_ordering(ctx: &FileContext, lines: &[Line], out: &mut Vec<Finding>) {
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let strong = STRONG_ORDERINGS.iter().find(|o| has_token(&line.code, o));
        let Some(strong) = strong else { continue };
        let justified = |l: &Line| {
            l.comments
                .iter()
                .any(|c| c.trim_start().starts_with("ordering:"))
        };
        let above = idx.checked_sub(1).and_then(|i| lines.get(i));
        if justified(line) || above.is_some_and(justified) {
            continue;
        }
        out.push(finding(
            "unjustified-atomic-ordering",
            ctx,
            idx + 1,
            line,
            format!(
                "`{strong}` without an adjacent `// ordering:` justification — \
                 state the happens-before edge or relax it"
            ),
        ));
    }
}

// --- env-read-outside-config -------------------------------------------

/// Process environment is configuration; only entry-point modules may
/// read it, everything else takes explicit arguments.
fn rule_env_read(ctx: &FileContext, lines: &[Line], out: &mut Vec<Finding>) {
    if ctx.kind == FileKind::Test
        || ctx.kind == FileKind::Bin
        || ctx.kind == FileKind::Example
        || ENV_ALLOWED.contains(&ctx.path.as_str())
        || ENV_ALLOWED_PREFIXES.iter().any(|p| ctx.path.starts_with(p))
    {
        return;
    }
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_token(&line.code, "std::env::") || has_token(&line.code, "env::var") {
            out.push(finding(
                "env-read-outside-config",
                ctx,
                idx + 1,
                line,
                "environment read outside the config entry modules \
                 (catalog/sink/bench/CLI) — thread the setting through as an \
                 argument"
                    .into(),
            ));
        }
    }
}

// --- missing-forbid-unsafe ---------------------------------------------

/// Every first-party crate root must carry `#![forbid(unsafe_code)]`.
fn rule_forbid_unsafe(ctx: &FileContext, lines: &[Line], out: &mut Vec<Finding>) {
    if !ctx.is_crate_root() {
        return;
    }
    let present = lines
        .iter()
        .any(|l| l.code.contains("#![forbid(unsafe_code)]"));
    if !present {
        let first = Line {
            raw: String::new(),
            code: String::new(),
            comments: Vec::new(),
            in_test: false,
        };
        out.push(finding(
            "missing-forbid-unsafe",
            ctx,
            1,
            lines.first().unwrap_or(&first),
            "crate root lacks `#![forbid(unsafe_code)]`".into(),
        ));
    }
}
