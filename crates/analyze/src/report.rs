//! Findings and the machine-readable report.
//!
//! `--json` mirrors the `discover --json` wire conventions: one JSON
//! object on stdout, hand-serialized (the linter is dependency-free),
//! with stable lower-snake keys. The schema is pinned by a test that
//! parses the output with the `metam-obs` JSON validator.

use std::collections::BTreeMap;

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id, e.g. `panic-in-lib`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Human explanation of what the rule protects.
    pub message: String,
}

/// One accepted suppression (kept in the report so every exemption in
/// the workspace stays visible and reviewable).
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id being allowed.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the suppressed code.
    pub line: usize,
    /// The written justification.
    pub reason: String,
}

/// Full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations, in file/line order.
    pub findings: Vec<Finding>,
    /// Accepted suppressions, in file/line order.
    pub suppressions: Vec<Suppression>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of source lines scanned.
    pub lines_scanned: usize,
}

impl Report {
    /// True when the workspace passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Per-rule finding counts.
    pub fn counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for f in &self.findings {
            *counts.entry(f.rule).or_insert(0) += 1;
        }
        counts
    }

    /// Render the human-readable report (one line per finding).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n    {}\n",
                f.file, f.line, f.rule, f.message, f.excerpt
            ));
        }
        out.push_str(&format!(
            "metam-analyze: {} finding(s), {} suppression(s), {} files, {} lines\n",
            self.findings.len(),
            self.suppressions.len(),
            self.files_scanned,
            self.lines_scanned,
        ));
        out
    }

    /// Render the `--json` report object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"tool\":\"metam-analyze\"");
        out.push_str(&format!(",\"files_scanned\":{}", self.files_scanned));
        out.push_str(&format!(",\"lines_scanned\":{}", self.lines_scanned));
        out.push_str(&format!(",\"clean\":{}", self.clean()));
        out.push_str(",\"counts\":{");
        for (i, (rule, n)) in self.counts().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_string(&mut out, rule);
            out.push_str(&format!(":{n}"));
        }
        out.push_str("},\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            write_string(&mut out, f.rule);
            out.push_str(",\"file\":");
            write_string(&mut out, &f.file);
            out.push_str(&format!(",\"line\":{}", f.line));
            out.push_str(",\"excerpt\":");
            write_string(&mut out, &f.excerpt);
            out.push_str(",\"message\":");
            write_string(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("],\"suppressions\":[");
        for (i, s) in self.suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            write_string(&mut out, &s.rule);
            out.push_str(",\"file\":");
            write_string(&mut out, &s.file);
            out.push_str(&format!(",\"line\":{}", s.line));
            out.push_str(",\"reason\":");
            write_string(&mut out, &s.reason);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Append a JSON string literal (quoted, escaped). Same escaping rules
/// as the `metam-obs` writer, duplicated so the linter stays
/// dependency-free.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let report = Report {
            findings: vec![Finding {
                rule: "panic-in-lib",
                file: "crates/x/src/a.rs".into(),
                line: 3,
                excerpt: "say \"hi\"\t".into(),
                message: "m".into(),
            }],
            suppressions: Vec::new(),
            files_scanned: 1,
            lines_scanned: 10,
        };
        let json = report.render_json();
        assert!(json.contains("\\\"hi\\\"\\t"));
        assert!(json.contains("\"counts\":{\"panic-in-lib\":1}"));
        assert!(json.contains("\"clean\":false"));
    }
}
