#![forbid(unsafe_code)]
//! The `metam-analyze` CLI.
//!
//! ```text
//! metam-analyze --workspace [--root DIR] [--json]
//! metam-analyze --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error. CI runs
//! `cargo run -q -p metam-analyze -- --workspace` before tier-1 so an
//! invariant violation fails the build with file:line findings.

use std::path::PathBuf;

const USAGE: &str = "\
usage: metam-analyze --workspace [--root DIR] [--json]
       metam-analyze --list-rules

Lints the workspace's own Rust source for invariant violations
(determinism, passivity, panic-freedom; see README \"Static analysis\").
Suppress per line with `// metam-analyze: allow(<rule>): <reason>`.

  --workspace    scan the enclosing cargo workspace (default when no
                 other mode is given)
  --root DIR     scan DIR instead of auto-detecting the workspace root
  --json         print a machine-readable report object on stdout
  --list-rules   print the rule catalog and exit";

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

fn run(args: &[String]) -> i32 {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--json" => json = true,
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory argument\n{USAGE}");
                    return 2;
                }
            },
            "--list-rules" => {
                for rule in metam_analyze::RULES {
                    println!("{rule}");
                }
                return 0;
            }
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return 2;
            }
        }
    }

    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("metam-analyze: cannot read cwd: {e}");
                    return 2;
                }
            };
            match metam_analyze::find_workspace_root(&cwd) {
                Some(d) => d,
                None => {
                    eprintln!(
                        "metam-analyze: no [workspace] Cargo.toml above {}",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };

    let report = match metam_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("metam-analyze: scan failed: {e}");
            return 2;
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.clean() {
        0
    } else {
        1
    }
}
