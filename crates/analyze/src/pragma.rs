//! Suppression pragmas.
//!
//! A finding is silenced per line with a comment of the form
//!
//! ```text
//! // metam-analyze: allow(<rule-id>): <reason>
//! ```
//!
//! placed either trailing on the offending line or on its own line
//! directly above it. The reason is **mandatory** — a pragma without one
//! (or naming an unknown rule) is itself reported under the
//! `invalid-pragma` rule, so suppressions can never silently rot into
//! unreviewed exemptions.

/// A parsed, well-formed suppression.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// The rule id being allowed.
    pub rule: String,
    /// The written justification (never empty).
    pub reason: String,
}

/// Why a pragma-shaped comment was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum PragmaError {
    /// `metam-analyze:` comment without a parsable `allow(<rule>)`.
    Malformed,
    /// `allow(<rule>)` present but no trailing reason text.
    MissingReason(String),
    /// The named rule id is not one the linter knows.
    UnknownRule(String),
}

const PREFIX: &str = "metam-analyze:";
const ALLOW: &str = "allow(";

/// Parse a comment body. Returns `None` when the comment is not
/// addressed to the linter at all.
pub fn parse(comment: &str, known_rules: &[&str]) -> Option<Result<Pragma, PragmaError>> {
    let trimmed = comment.trim();
    let rest = trimmed.strip_prefix(PREFIX)?.trim_start();
    let Some(after_allow) = rest.strip_prefix(ALLOW) else {
        return Some(Err(PragmaError::Malformed));
    };
    let Some(close) = after_allow.find(')') else {
        return Some(Err(PragmaError::Malformed));
    };
    let rule = after_allow[..close].trim().to_string();
    if !known_rules.contains(&rule.as_str()) {
        return Some(Err(PragmaError::UnknownRule(rule)));
    }
    let reason = after_allow[close + 1..]
        .trim_start_matches([':', '-', '—', ' ', '\t'])
        .trim()
        .to_string();
    if reason.is_empty() {
        return Some(Err(PragmaError::MissingReason(rule)));
    }
    Some(Ok(Pragma { rule, reason }))
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["panic-in-lib", "raw-thread-spawn"];

    #[test]
    fn well_formed_pragma_parses() {
        let p = parse(
            " metam-analyze: allow(panic-in-lib): worker panic must propagate",
            RULES,
        );
        let p = p.expect("addressed to linter").expect("well-formed");
        assert_eq!(p.rule, "panic-in-lib");
        assert_eq!(p.reason, "worker panic must propagate");
    }

    #[test]
    fn unrelated_comment_is_ignored() {
        assert!(parse(" just a note about unwrap()", RULES).is_none());
    }

    #[test]
    fn missing_reason_is_rejected() {
        let err = parse(" metam-analyze: allow(panic-in-lib)", RULES)
            .expect("addressed to linter")
            .expect_err("no reason given");
        assert_eq!(err, PragmaError::MissingReason("panic-in-lib".into()));
        // Punctuation with no text after it is still no reason.
        let err = parse(" metam-analyze: allow(panic-in-lib):   ", RULES)
            .expect("addressed")
            .expect_err("blank reason");
        assert_eq!(err, PragmaError::MissingReason("panic-in-lib".into()));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let err = parse(" metam-analyze: allow(no-such-rule): because", RULES)
            .expect("addressed")
            .expect_err("unknown rule");
        assert_eq!(err, PragmaError::UnknownRule("no-such-rule".into()));
    }

    #[test]
    fn malformed_allow_is_rejected() {
        let err = parse(" metam-analyze: disallow(panic-in-lib): x", RULES)
            .expect("addressed")
            .expect_err("malformed");
        assert_eq!(err, PragmaError::Malformed);
    }
}
