#![forbid(unsafe_code)]
//! **metam-analyze** — the workspace invariant linter.
//!
//! Metam's reproduction rests on invariants that ordinary tests can only
//! sample: byte-identical deterministic output under parallel ingestion,
//! observer passivity (instrumented runs bit-identical to bare ones),
//! and panic-free library paths behind typed errors. This crate
//! mechanizes them as a static-analysis pass over the workspace's own
//! Rust source — a comment/string/`#[cfg(test)]`-aware lexer
//! ([`lexer`]) plus a rule engine ([`rules`]) — run by CI as the
//! `metam-analyze` binary, which fails the build on findings.
//!
//! Rule catalog (ids are what pragmas name):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `nondeterministic-iteration` | no unordered hash iteration in output-affecting crates |
//! | `panic-in-lib` | library code returns typed errors, never aborts |
//! | `timing-outside-guard` | metam-core reads the clock only behind the observer gate |
//! | `raw-thread-spawn` | threads only in the sanctioned worker-pool and serve daemon modules |
//! | `unjustified-atomic-ordering` | non-`Relaxed` orderings carry an `// ordering:` note |
//! | `env-read-outside-config` | env reads only in catalog/sink/bench/serve/CLI entry modules |
//! | `missing-forbid-unsafe` | every crate root carries `#![forbid(unsafe_code)]` |
//! | `invalid-pragma` | suppressions are well-formed and carry a reason |
//!
//! Suppression is per line: `// metam-analyze: allow(<rule>): <reason>`
//! trailing the offending line or directly above it. The reason is
//! mandatory and surfaces in the report, so every exemption in the
//! workspace stays reviewable.
//!
//! `shims/` is excluded: those crates are stand-ins for third-party
//! dependencies and are not first-party code.

pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

pub use report::{Finding, Report, Suppression};
pub use rules::{FileContext, FileKind, RULES};

/// Directories under the workspace root that hold first-party source.
const SCAN_ROOTS: &[&str] = &["src", "crates", "tests", "examples", "benches"];

/// Analyze a single source text under a workspace-relative path label.
/// This is the entry point fixture tests use.
pub fn analyze_source(path_label: &str, text: &str) -> Report {
    let mut report = Report::default();
    let ctx = FileContext::classify(path_label);
    let lines = lexer::lex(text);
    rules::check_file(&ctx, &lines, &mut report);
    report
}

/// Analyze every first-party `.rs` file under `root` (a workspace
/// checkout). Files are visited in sorted path order so reports are
/// deterministic.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = Report::default();
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileContext::classify(&rel);
        let lines = lexer::lex(&text);
        rules::check_file(&ctx, &lines, &mut report);
    }
    Ok(report)
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `target/` build output and `shims/` third-party stand-ins
            // are not first-party source.
            if name == "target" || name == "shims" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_crate_and_kind() {
        let c = FileContext::classify("crates/lake/src/catalog.rs");
        assert_eq!(c.crate_name, "lake");
        assert_eq!(c.kind, FileKind::Lib);
        let c = FileContext::classify("src/bin/metam.rs");
        assert_eq!(c.crate_name, "metam");
        assert_eq!(c.kind, FileKind::Bin);
        let c = FileContext::classify("crates/bench/benches/join.rs");
        assert_eq!(c.kind, FileKind::Bench);
        let c = FileContext::classify("tests/session_api.rs");
        assert_eq!(c.crate_name, "metam");
        assert_eq!(c.kind, FileKind::Test);
    }

    #[test]
    fn finds_workspace_root_from_nested_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("inside the workspace");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/analyze").is_dir());
    }
}
