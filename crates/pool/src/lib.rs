#![forbid(unsafe_code)]
//! The workspace's **sanctioned worker pool**: deterministic scoped
//! fan-out shared by the lake scanner and the search engine.
//!
//! [`map`] runs a pure function over a slice on `threads` scoped workers
//! and returns the results **in input order** — each worker owns a
//! contiguous chunk of the input and writes into the matching slots of
//! the output, so the merged vector is position-stable regardless of
//! scheduling. Thread count never changes results, only wall-clock;
//! `threads <= 1` (or a single item) takes a plain sequential loop with
//! no thread machinery at all.
//!
//! This module (plus the raw-`Result` variant [`try_map`]) is the only
//! place in the workspace allowed to spawn threads: `metam-analyze`'s
//! `raw-thread-spawn` rule points offenders here. Workers must stay
//! pure — no RNG, no shared mutable state, no I/O ordering assumptions —
//! because callers rely on the sequential path being byte-identical.

#![warn(missing_docs)]

/// Apply `f` to every item of `items` across up to `threads` scoped
/// workers, returning outputs in input order.
///
/// The worker count is clamped to `1..=items.len()`; with one worker the
/// call degenerates to `items.iter().map(f).collect()` on the calling
/// thread. A panicking worker re-raises on the caller.
pub fn map<I, T, F>(items: &[I], threads: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let threads = threads.min(items.len()).max(1);
    let mut results: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    if threads == 1 {
        for (slot, item) in results.iter_mut().zip(items) {
            *slot = Some(f(item));
        }
    } else {
        let chunk = items.len().div_ceil(threads);
        let f = &f;
        crossbeam::thread::scope(|scope| {
            for (result_chunk, item_chunk) in results.chunks_mut(chunk).zip(items.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (slot, item) in result_chunk.iter_mut().zip(item_chunk) {
                        *slot = Some(f(item));
                    }
                });
            }
        })
        // metam-analyze: allow(panic-in-lib): a worker panic is already a bug aborting the caller; re-raising preserves the panic payload
        .expect("pool worker panicked");
    }
    results
        .into_iter()
        // metam-analyze: allow(panic-in-lib): chunks exactly tile the item list, so every slot was written by one worker
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// [`map`] for fallible work: collects per-item `Result`s in input order
/// without short-circuiting (the caller decides how to merge errors, the
/// way the lake scan reports every failed file).
pub fn try_map<I, T, E, F>(items: &[I], threads: usize, f: F) -> Vec<Result<T, E>>
where
    I: Sync,
    T: Send,
    E: Send,
    F: Fn(&I) -> Result<T, E> + Sync,
{
    map(items, threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = map(&items, threads, |&x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<usize> = Vec::new();
        assert!(map(&empty, 4, |&x| x).is_empty());
        assert_eq!(map(&[7usize], 4, |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_matches_sequential_bitwise() {
        // f64 work merged in order must be bit-identical to a serial loop.
        let items: Vec<f64> = (0..101).map(|i| i as f64 * 0.37).collect();
        let work = |x: &f64| (x.sin() * 1e6).mul_add(0.5, x.sqrt());
        let seq: Vec<f64> = items.iter().map(work).collect();
        let par = map(&items, 5, work);
        assert_eq!(
            seq.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn try_map_reports_every_error_positionally() {
        let items: Vec<usize> = (0..10).collect();
        let out = try_map(&items, 3, |&x| if x % 3 == 0 { Err(x) } else { Ok(x) });
        for (i, r) in out.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(*r, Err(i));
            } else {
                assert_eq!(*r, Ok(i));
            }
        }
    }
}
