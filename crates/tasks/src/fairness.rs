//! Fairness-aware classification (§VI-A.4 "Fair Classification").
//!
//! The task internally performs fairness-aware feature selection — any
//! feature whose |correlation| with the sensitive attribute exceeds the
//! threshold is discarded — then trains a forest and reports macro
//! F-score. Augmentations that predict the target *through* the sensitive
//! attribute therefore gain nothing.

use metam_core::Task;
use metam_ml::dataset::{encode_table, TargetKind};
use metam_ml::forest::{RandomForest, RandomForestConfig};
use metam_ml::metrics::f1_macro;
use metam_ml::split::train_test_split;
use metam_ml::tree::{TreeConfig, TreeTask};
use metam_table::Table;

use crate::util::drop_idlike_columns;

/// Fair classification task.
pub struct FairClassificationTask {
    /// Target column name.
    pub target: String,
    /// Sensitive attribute column name.
    pub sensitive: String,
    /// |corr| threshold above which a feature is considered unfair.
    pub corr_threshold: f64,
    /// Seed.
    pub seed: u64,
}

impl FairClassificationTask {
    /// Default fairness task (threshold 0.4 as in our datagen trap).
    pub fn new(
        target: impl Into<String>,
        sensitive: impl Into<String>,
        seed: u64,
    ) -> FairClassificationTask {
        FairClassificationTask {
            target: target.into(),
            sensitive: sensitive.into(),
            corr_threshold: 0.4,
            seed,
        }
    }
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    if n < 3.0 {
        return 0.0;
    }
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let cov: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| (x - ma) * (y - mb))
        .sum::<f64>()
        / n;
    let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum::<f64>() / n;
    let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum::<f64>() / n;
    if va < 1e-15 || vb < 1e-15 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

impl Task for FairClassificationTask {
    fn name(&self) -> &str {
        "fair-classification"
    }

    fn utility(&self, table: &Table) -> f64 {
        let clean = drop_idlike_columns(table, &[self.target.as_str(), self.sensitive.as_str()]);
        let Ok(data) = encode_table(&clean, &self.target, TargetKind::Classification) else {
            return 0.0;
        };
        if data.len() < 20 || data.n_features() == 0 {
            return 0.0;
        }
        let Some(sensitive_idx) = data.feature_names.iter().position(|n| n == &self.sensitive)
        else {
            return 0.0;
        };
        let sensitive: Vec<f64> = data.features.iter().map(|r| r[sensitive_idx]).collect();

        // Fairness-aware selection: keep fair features only (and drop the
        // sensitive attribute itself from the model).
        let keep: Vec<usize> = (0..data.n_features())
            .filter(|&f| {
                if f == sensitive_idx {
                    return false;
                }
                let col: Vec<f64> = data.features.iter().map(|r| r[f]).collect();
                pearson(&col, &sensitive).abs() <= self.corr_threshold
            })
            .collect();
        if keep.is_empty() {
            return 0.0;
        }
        let fair = data.select_features(&keep);
        let n_classes = fair.n_classes.unwrap_or(2).max(2);
        let (train, val) = train_test_split(&fair, 0.3, self.seed);
        let forest = RandomForest::fit(
            &train,
            TreeTask::Classification { n_classes },
            RandomForestConfig {
                n_trees: 8,
                tree: TreeConfig {
                    max_depth: 6,
                    ..Default::default()
                },
                seed: self.seed,
            },
        );
        f1_macro(
            &forest.predict_batch(&val.features),
            &val.targets,
            n_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::fairness::{build_fairness, FairnessConfig};
    use metam_table::join::left_join_column;

    fn join(s: &metam_datagen::Scenario, table: &str, col: &str, newname: &str) -> Table {
        let t = s.tables.iter().find(|t| t.name == table).unwrap();
        let c = left_join_column(&s.din, 0, t, 0, t.column_index(col).unwrap())
            .unwrap()
            .with_name(newname);
        s.din.with_column(c).unwrap()
    }

    #[test]
    fn unfair_augmentation_gains_nothing_fair_one_helps() {
        let s = build_fairness(&FairnessConfig::default());
        let task = FairClassificationTask::new("income_label", "age", 0);
        let base = task.utility(&s.din);
        let unfair = task.utility(&join(&s, "profile_00", "score_0", "aug0_score"));
        let fair = task.utility(&join(&s, "employment_00", "tenure_0", "aug1_tenure"));
        assert!(
            fair > base + 0.03,
            "fair useful feature must help: base={base} fair={fair}"
        );
        assert!(
            unfair <= base + 0.03,
            "unfair feature must be filtered: base={base} unfair={unfair}"
        );
    }

    #[test]
    fn missing_sensitive_column_scores_zero() {
        let s = build_fairness(&FairnessConfig::default());
        let task = FairClassificationTask::new("income_label", "nope", 0);
        assert_eq!(task.utility(&s.din), 0.0);
    }
}
