//! How-to analysis task (§VI-A "How-to analysis").
//!
//! "What attributes should be updated to move the outcome?" — the task
//! discovers causal drivers of the outcome among the available attributes
//! and reports the fraction of the true drivers recovered.

use metam_causal::causal_drivers;
use metam_core::Task;
use metam_table::Table;

use crate::util::{aug_matches, numeric_columns};

/// How-to task.
pub struct HowToTask {
    /// Outcome column (in `Din`).
    pub outcome: String,
    /// Ground-truth driver attribute base names.
    pub drivers: Vec<String>,
    /// Significance level.
    pub alpha: f64,
    /// Minimum standardized effect for an attribute to count as a driver.
    pub effect_threshold: f64,
}

impl HowToTask {
    /// Default how-to task.
    pub fn new(outcome: impl Into<String>, drivers: Vec<String>) -> HowToTask {
        HowToTask {
            outcome: outcome.into(),
            drivers,
            alpha: 0.05,
            effect_threshold: 0.05,
        }
    }
}

impl Task for HowToTask {
    fn name(&self) -> &str {
        "how-to"
    }

    fn utility(&self, table: &Table) -> f64 {
        if self.drivers.is_empty() {
            return 0.0;
        }
        let (columns, names) = numeric_columns(table);
        let Some(y_idx) = names.iter().position(|n| n == &self.outcome) else {
            return 0.0;
        };
        let found = causal_drivers(&columns, y_idx, self.alpha, self.effect_threshold);
        let recovered = self
            .drivers
            .iter()
            .filter(|truth| found.iter().any(|&f| aug_matches(&names[f], truth)))
            .count();
        recovered as f64 / self.drivers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::causal_scenario::{build_causal, CausalConfig, CausalKind};
    use metam_datagen::TaskSpec;
    use metam_table::join::left_join_column;

    #[test]
    fn joining_true_driver_raises_utility() {
        let s = build_causal(&CausalConfig {
            kind: CausalKind::HowTo,
            ..Default::default()
        });
        let TaskSpec::HowTo { outcome, drivers } = &s.spec else {
            panic!()
        };
        let task = HowToTask::new(outcome.clone(), drivers.clone());
        assert_eq!(task.utility(&s.din), 0.0);

        let sh = s
            .tables
            .iter()
            .find(|t| t.name == "study_hours_records")
            .unwrap();
        let col = left_join_column(&s.din, 0, sh, 0, sh.column_index("study_hours").unwrap())
            .unwrap()
            .with_name("aug0_study_hours");
        let u = task.utility(&s.din.with_column(col).unwrap());
        assert!(u > 0.0, "study_hours is a true driver: u={u}");
    }

    #[test]
    fn noise_attribute_is_not_a_driver() {
        let s = build_causal(&CausalConfig {
            kind: CausalKind::HowTo,
            ..Default::default()
        });
        let TaskSpec::HowTo { outcome, drivers } = &s.spec else {
            panic!()
        };
        let task = HowToTask::new(outcome.clone(), drivers.clone());
        let noise = s
            .tables
            .iter()
            .find(|t| t.name.starts_with("survey_"))
            .unwrap();
        let vc = noise
            .columns()
            .iter()
            .position(|c| c.name.as_deref().is_some_and(|n| n.starts_with("response")))
            .unwrap();
        let col = left_join_column(&s.din, 0, noise, 0, vc)
            .unwrap()
            .with_name("aug0_response");
        assert_eq!(task.utility(&s.din.with_column(col).unwrap()), 0.0);
    }
}
