//! What-if analysis task (§VI-A "What-if analysis").
//!
//! "What attributes would be causally affected if X were updated?" — the
//! task runs constraint-based discovery over the (augmented) table's
//! numeric attributes and reports the fraction of the *truly* affected
//! attributes it recovered (p ≤ 0.05), exactly the paper's utility.

use metam_causal::affected_attributes;
use metam_core::Task;
use metam_table::Table;

use crate::util::{aug_matches, numeric_columns};

/// What-if task.
pub struct WhatIfTask {
    /// The attribute being hypothetically updated (a `Din` column).
    pub intervened: String,
    /// Ground-truth affected attribute base names.
    pub affected: Vec<String>,
    /// Significance level.
    pub alpha: f64,
}

impl WhatIfTask {
    /// Default what-if task at α = 0.05.
    pub fn new(intervened: impl Into<String>, affected: Vec<String>) -> WhatIfTask {
        WhatIfTask {
            intervened: intervened.into(),
            affected,
            alpha: 0.05,
        }
    }
}

impl Task for WhatIfTask {
    fn name(&self) -> &str {
        "what-if"
    }

    fn utility(&self, table: &Table) -> f64 {
        if self.affected.is_empty() {
            return 0.0;
        }
        let (columns, names) = numeric_columns(table);
        let Some(x_idx) = names.iter().position(|n| n == &self.intervened) else {
            return 0.0;
        };
        let found = affected_attributes(&columns, x_idx, self.alpha);
        let recovered = self
            .affected
            .iter()
            .filter(|truth| found.iter().any(|&f| aug_matches(&names[f], truth)))
            .count();
        recovered as f64 / self.affected.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::causal_scenario::{build_causal, CausalConfig};
    use metam_datagen::TaskSpec;
    use metam_table::join::left_join_column;

    #[test]
    fn utility_rises_as_affected_attributes_join() {
        let s = build_causal(&CausalConfig::default());
        let TaskSpec::WhatIf {
            intervened,
            affected,
        } = &s.spec
        else {
            panic!()
        };
        let task = WhatIfTask::new(intervened.clone(), affected.clone());
        let base = task.utility(&s.din);
        assert_eq!(base, 0.0, "no affected attributes visible yet");

        // Join writing_score (a true descendant).
        let w = s
            .tables
            .iter()
            .find(|t| t.name == "writing_score_records")
            .unwrap();
        let col = left_join_column(&s.din, 0, w, 0, w.column_index("writing_score").unwrap())
            .unwrap()
            .with_name("aug0_writing_score");
        let t1 = s.din.with_column(col).unwrap();
        let u1 = task.utility(&t1);
        assert!(u1 > 0.0, "one of {} affected found: {u1}", affected.len());

        // Join math_score too.
        let m = s
            .tables
            .iter()
            .find(|t| t.name == "math_score_records")
            .unwrap();
        let col2 = left_join_column(&t1, 0, m, 0, m.column_index("math_score").unwrap())
            .unwrap()
            .with_name("aug1_math_score");
        let u2 = task.utility(&t1.with_column(col2).unwrap());
        assert!(
            u2 > u1,
            "more affected attributes → higher recall: {u1} → {u2}"
        );
    }

    #[test]
    fn irrelevant_columns_do_not_count() {
        let s = build_causal(&CausalConfig::default());
        let TaskSpec::WhatIf {
            intervened,
            affected,
        } = &s.spec
        else {
            panic!()
        };
        let task = WhatIfTask::new(intervened.clone(), affected.clone());
        let noise = s
            .tables
            .iter()
            .find(|t| t.name.starts_with("survey_"))
            .unwrap();
        let vc = noise
            .columns()
            .iter()
            .position(|c| c.name.as_deref().is_some_and(|n| n.starts_with("response")))
            .unwrap();
        let col = left_join_column(&s.din, 0, noise, 0, vc)
            .unwrap()
            .with_name("aug0_response_0");
        let u = task.utility(&s.din.with_column(col).unwrap());
        assert_eq!(u, 0.0);
    }
}
