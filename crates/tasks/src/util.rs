//! Shared helpers: feature hygiene and numeric extraction.

use metam_table::{DataType, Table};

/// Drop id-like string columns (≥ 80 % distinct values) — join keys and
/// row ids carry no signal and would let trees overfit on label-encoded
/// noise. Columns named in `keep` survive regardless.
pub fn drop_idlike_columns(table: &Table, keep: &[&str]) -> Table {
    let mut indices = Vec::new();
    for (i, col) in table.columns().iter().enumerate() {
        let name = table.column_display_name(i);
        if keep.contains(&name.as_str()) {
            indices.push(i);
            continue;
        }
        if col.dtype() == DataType::Str {
            let non_null = col.len() - col.null_count();
            if non_null > 0 && col.distinct_count() * 5 >= non_null * 4 {
                continue; // id-like, drop
            }
        }
        indices.push(i);
    }
    // metam-analyze: allow(panic-in-lib): indices come from enumerating this table's own columns, so they are in range
    table.select(&indices).expect("indices are in range")
}

/// Numeric view of every numeric column: `(column values, display names)`.
/// Missing values are mean-imputed so causal tests get complete data.
pub fn numeric_columns(table: &Table) -> (Vec<Vec<f64>>, Vec<String>) {
    let mut cols = Vec::new();
    let mut names = Vec::new();
    for i in table.numeric_column_indices() {
        let raw = table.columns()[i].as_f64();
        let present: Vec<f64> = raw.iter().flatten().copied().collect();
        if present.len() < 3 {
            continue;
        }
        let mean = present.iter().sum::<f64>() / present.len() as f64;
        cols.push(raw.into_iter().map(|v| v.unwrap_or(mean)).collect());
        names.push(table.column_display_name(i));
    }
    (cols, names)
}

/// Does an augmented column name (like `aug12_writing_score`) refer to the
/// base attribute `attr`? Matches on suffix after the materializer prefix.
pub fn aug_matches(column_name: &str, attr: &str) -> bool {
    if column_name == attr {
        return true;
    }
    match column_name.strip_prefix("aug") {
        Some(rest) => rest.split_once('_').is_some_and(|(_, base)| base == attr),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;

    #[test]
    fn idlike_strings_are_dropped() {
        let t = Table::from_columns(
            "t",
            vec![
                Column::from_strings(
                    Some("id".into()),
                    (0..50).map(|i| Some(format!("k{i}"))).collect(),
                ),
                Column::from_strings(
                    Some("cat".into()),
                    (0..50)
                        .map(|i| Some(if i % 2 == 0 { "a" } else { "b" }.to_string()))
                        .collect(),
                ),
                Column::from_floats(Some("x".into()), (0..50).map(|i| Some(i as f64)).collect()),
            ],
        )
        .unwrap();
        let d = drop_idlike_columns(&t, &[]);
        assert_eq!(d.ncols(), 2);
        assert!(d.column_by_name("id").is_err());
        let kept = drop_idlike_columns(&t, &["id"]);
        assert_eq!(kept.ncols(), 3);
    }

    #[test]
    fn numeric_columns_impute_means() {
        let t = Table::from_columns(
            "t",
            vec![Column::from_floats(
                Some("x".into()),
                vec![Some(1.0), None, Some(3.0), Some(2.0)],
            )],
        )
        .unwrap();
        let (cols, names) = numeric_columns(&t);
        assert_eq!(names, vec!["x".to_string()]);
        assert_eq!(cols[0][1], 2.0);
    }

    #[test]
    fn aug_matching() {
        assert!(aug_matches("aug12_writing_score", "writing_score"));
        assert!(aug_matches("writing_score", "writing_score"));
        assert!(!aug_matches("aug12_writing_score", "math_score"));
        assert!(!aug_matches("augmented", "mented"));
    }
}
