//! Random-forest regression task (§VI-A "Regression").
//!
//! Utility = 1 − MAE on targets normalized to `[0, 1]` — the collisions
//! prediction setting.

use metam_core::Task;
use metam_ml::dataset::{encode_table, TargetKind};
use metam_ml::forest::{RandomForest, RandomForestConfig};
use metam_ml::metrics::regression_utility;
use metam_ml::split::train_test_split;
use metam_ml::tree::{TreeConfig, TreeTask};
use metam_table::Table;

use crate::util::drop_idlike_columns;

/// Regression task over a named numeric target.
pub struct RegressionTask {
    /// Target column name.
    pub target: String,
    /// Split/model seed.
    pub seed: u64,
    /// Seeded split/fit repetitions averaged per query.
    pub repeats: usize,
}

impl RegressionTask {
    /// Default regression task.
    pub fn new(target: impl Into<String>, seed: u64) -> RegressionTask {
        RegressionTask {
            target: target.into(),
            seed,
            repeats: 3,
        }
    }
}

impl Task for RegressionTask {
    fn name(&self) -> &str {
        "regression"
    }

    fn utility(&self, table: &Table) -> f64 {
        let clean = drop_idlike_columns(table, &[self.target.as_str()]);
        let Ok(data) = encode_table(&clean, &self.target, TargetKind::Regression) else {
            return 0.0;
        };
        if data.len() < 20 || data.n_features() == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        let repeats = self.repeats.max(1);
        for r in 0..repeats {
            let seed = self.seed ^ (r as u64).wrapping_mul(0x9E3779B9);
            let (train, val) = train_test_split(&data, 0.3, seed);
            let forest = RandomForest::fit(
                &train,
                TreeTask::Regression,
                RandomForestConfig {
                    n_trees: 8,
                    tree: TreeConfig {
                        max_depth: 6,
                        ..Default::default()
                    },
                    seed,
                },
            );
            let preds = forest.predict_batch(&val.features);
            total += regression_utility(&preds, &val.targets);
        }
        total / repeats as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};
    use metam_table::join::left_join_column;

    #[test]
    fn informative_augmentation_raises_utility() {
        let s = build_supervised(&SupervisedConfig {
            n_rows: 350,
            n_informative: 2,
            n_irrelevant_tables: 2,
            n_erroneous_tables: 1,
            classification: false,
            ..Default::default()
        });
        let task = RegressionTask::new("label", 0);
        let base = task.utility(&s.din);
        let crime = s.tables.iter().find(|t| t.name == "crime_stats").unwrap();
        let col = left_join_column(
            &s.din,
            0,
            crime,
            0,
            crime.column_index("crime_stats_value").unwrap(),
        )
        .unwrap()
        .with_name("aug0_crime");
        let boosted = task.utility(&s.din.with_column(col).unwrap());
        assert!(boosted > base, "base={base} boosted={boosted}");
        assert!((0.0..=1.0).contains(&base));
        assert!((0.0..=1.0).contains(&boosted));
    }

    #[test]
    fn tiny_tables_score_zero() {
        let t = Table::from_columns(
            "t",
            vec![metam_table::Column::from_floats(
                Some("label".into()),
                vec![Some(1.0), Some(2.0)],
            )],
        )
        .unwrap();
        assert_eq!(RegressionTask::new("label", 0).utility(&t), 0.0);
    }
}
