//! AutoML classification task (Fig. 4a).
//!
//! One utility query runs the whole model grid (our TPOT/auto-sklearn
//! stand-in) and reports the winner's validation accuracy on a held-out
//! evaluation split.

use metam_core::Task;
use metam_ml::automl::AutoMl;
use metam_ml::dataset::{encode_table, TargetKind};
use metam_ml::metrics::accuracy;
use metam_ml::split::train_test_split;
use metam_table::Table;

use crate::util::drop_idlike_columns;

/// AutoML classification over a named target.
pub struct AutoMlTask {
    /// Target column name.
    pub target: String,
    /// Grid/split seed.
    pub seed: u64,
}

impl AutoMlTask {
    /// New AutoML task.
    pub fn new(target: impl Into<String>, seed: u64) -> AutoMlTask {
        AutoMlTask {
            target: target.into(),
            seed,
        }
    }
}

impl Task for AutoMlTask {
    fn name(&self) -> &str {
        "automl-classification"
    }

    fn utility(&self, table: &Table) -> f64 {
        let clean = drop_idlike_columns(table, &[self.target.as_str()]);
        let Ok(data) = encode_table(&clean, &self.target, TargetKind::Classification) else {
            return 0.0;
        };
        if data.len() < 30 || data.n_features() == 0 {
            return 0.0;
        }
        // Outer split: AutoML searches on `search`, we score on `eval`.
        let (search, eval) = train_test_split(&data, 0.25, self.seed ^ 0xE7A1);
        let model = AutoMl::fit_classification(&search, self.seed);
        accuracy(&model.predict_batch(&eval.features), &eval.targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};
    use metam_table::join::left_join_column;

    #[test]
    fn automl_utility_improves_with_signal() {
        let s = build_supervised(&SupervisedConfig {
            n_rows: 400,
            n_informative: 2,
            n_irrelevant_tables: 1,
            n_erroneous_tables: 0,
            ..Default::default()
        });
        let task = AutoMlTask::new("label", 0);
        let base = task.utility(&s.din);
        let crime = s.tables.iter().find(|t| t.name == "crime_stats").unwrap();
        let col = left_join_column(
            &s.din,
            0,
            crime,
            0,
            crime.column_index("crime_stats_value").unwrap(),
        )
        .unwrap()
        .with_name("aug0_crime");
        let boosted = task.utility(&s.din.with_column(col).unwrap());
        assert!(boosted > base, "base={base} boosted={boosted}");
    }
}
