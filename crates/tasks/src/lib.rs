#![forbid(unsafe_code)]
//! # metam-tasks
//!
//! Downstream task implementations (paper §II-B and §VI). Every task
//! implements [`metam_core::Task`] — a black box mapping a (possibly
//! augmented) table to a utility in `[0, 1]` — and is deterministic given
//! its seed, so the query engine's memoization is sound.
//!
//! * [`classification`] — random-forest classification (macro F-score),
//! * [`regression`] — random-forest regression (1 − normalized MAE),
//! * [`automl`] — grid-search AutoML classification (Fig. 4a),
//! * [`fairness`] — fairness-aware classification (drops
//!   sensitive-correlated features before training, §VI-A.4),
//! * [`whatif`] — what-if causal analysis (fraction of truly affected
//!   attributes recovered at p ≤ 0.05),
//! * [`howto`] — how-to causal analysis (fraction of true drivers
//!   recovered),
//! * [`entity_linking`] — linking against a synthetic knowledge graph,
//! * [`clustering`] — k-center clustering (1 − largest cluster radius),
//! * [`unions`] — record-addition classification (Fig. 4b),
//! * [`builder`] — [`build_task`]: instantiate the right task from a
//!   datagen [`metam_datagen::TaskSpec`].

#![warn(missing_docs)]

pub mod automl;
pub mod builder;
pub mod classification;
pub mod clustering;
pub mod entity_linking;
pub mod fairness;
pub mod howto;
pub mod regression;
pub mod unions;
pub mod util;
pub mod whatif;

pub use builder::build_task;
pub use classification::ClassificationTask;
pub use clustering::ClusteringFitTask;
pub use regression::RegressionTask;
