//! Entity-linking task (§VI-A.4 "Entity Linking").
//!
//! A synthetic knowledge graph stands in for Wikidata (see DESIGN.md). A
//! mention links automatically when its name is unambiguous; ambiguous
//! names ("Birmingham") need a disambiguating context value — e.g. a state
//! abbreviation — from one of the augmented columns. Utility = linking
//! accuracy against the ground truth.

use std::collections::BTreeMap;

use metam_core::Task;
use metam_table::Table;

/// One knowledge-graph entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    /// Surface name (e.g. "Birmingham").
    pub name: String,
    /// Disambiguating attribute (e.g. state "AL").
    pub context: String,
}

impl Entity {
    /// Canonical id, `name|context`.
    pub fn id(&self) -> String {
        format!("{}|{}", self.name, self.context)
    }
}

/// A toy knowledge graph: entities indexed by surface name.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeGraph {
    by_name: BTreeMap<String, Vec<Entity>>,
}

impl KnowledgeGraph {
    /// Build from entity ids (`name|context`), deduplicated. To make the
    /// ambiguity realistic every name also gets one foreign decoy entity
    /// (the paper's "Birmingham, UK").
    pub fn from_truth(truth: &[String]) -> KnowledgeGraph {
        let mut kg = KnowledgeGraph::default();
        for t in truth {
            if let Some((name, context)) = t.split_once('|') {
                kg.insert(Entity {
                    name: name.to_string(),
                    context: context.to_string(),
                });
            }
        }
        let names: Vec<String> = kg.by_name.keys().cloned().collect();
        for name in names {
            kg.insert(Entity {
                name,
                context: "UK".to_string(),
            });
        }
        kg
    }

    /// Insert an entity (no duplicates).
    pub fn insert(&mut self, e: Entity) {
        let list = self.by_name.entry(e.name.clone()).or_default();
        if !list.contains(&e) {
            list.push(e);
        }
    }

    /// Entities with a given surface name.
    pub fn lookup(&self, name: &str) -> &[Entity] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Total entity count.
    pub fn len(&self) -> usize {
        self.by_name.values().map(Vec::len).sum()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

/// The linking task.
pub struct EntityLinkingTask {
    /// Column of the mentions.
    pub mention: String,
    /// Ground-truth entity id per row.
    pub truth: Vec<String>,
    /// The knowledge graph.
    pub kg: KnowledgeGraph,
}

impl EntityLinkingTask {
    /// Build the task (and its KG) from a ground-truth assignment.
    pub fn new(mention: impl Into<String>, truth: Vec<String>) -> EntityLinkingTask {
        let kg = KnowledgeGraph::from_truth(&truth);
        EntityLinkingTask {
            mention: mention.into(),
            truth,
            kg,
        }
    }

    /// Link one mention given its row's context values. Returns the chosen
    /// entity id, or `None` when the mention stays ambiguous.
    fn link(&self, name: &str, context_values: &[String]) -> Option<String> {
        let candidates = self.kg.lookup(name);
        match candidates.len() {
            0 => None,
            1 => Some(candidates[0].id()),
            _ => {
                // Disambiguate through any context value matching an
                // entity's context attribute.
                for v in context_values {
                    if let Some(e) = candidates.iter().find(|e| &e.context == v) {
                        return Some(e.id());
                    }
                }
                None
            }
        }
    }
}

impl Task for EntityLinkingTask {
    fn name(&self) -> &str {
        "entity-linking"
    }

    fn utility(&self, table: &Table) -> f64 {
        let Ok(mention_idx) = table.column_index(&self.mention) else {
            return 0.0;
        };
        if self.truth.is_empty() || table.nrows() != self.truth.len() {
            return 0.0;
        }
        // Context columns: every *string* column other than the mention.
        let context_cols: Vec<usize> = table
            .string_column_indices()
            .into_iter()
            .filter(|&i| i != mention_idx)
            .collect();
        let mention_col = &table.columns()[mention_idx];
        let mut correct = 0usize;
        for row in 0..table.nrows() {
            let name = match mention_col.get(row) {
                metam_table::Value::Str(s) => s,
                _ => continue,
            };
            let context: Vec<String> = context_cols
                .iter()
                .filter_map(|&c| match table.columns()[c].get(row) {
                    metam_table::Value::Str(s) => Some(s),
                    _ => None,
                })
                .collect();
            if self.link(&name, &context) == Some(self.truth[row].clone()) {
                correct += 1;
            }
        }
        correct as f64 / self.truth.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::linking::{build_linking, LinkingConfig};
    use metam_datagen::TaskSpec;
    use metam_table::join::left_join_column;

    #[test]
    fn kg_contains_decoys() {
        let kg = KnowledgeGraph::from_truth(&["Springfield|IL".to_string()]);
        assert_eq!(kg.lookup("Springfield").len(), 2, "truth + UK decoy");
    }

    #[test]
    fn state_augmentation_unlocks_linking() {
        let s = build_linking(&LinkingConfig::default());
        let TaskSpec::EntityLinking { mention, truth } = &s.spec else {
            panic!()
        };
        let task = EntityLinkingTask::new(mention.clone(), truth.clone());
        let base = task.utility(&s.din);
        assert!(base < 0.2, "everything ambiguous at baseline: {base}");

        let st = s.tables.iter().find(|t| t.name == "city_states").unwrap();
        let col = left_join_column(&s.din, 0, st, 0, st.column_index("state_abbrev").unwrap())
            .unwrap()
            .with_name("aug0_state_abbrev");
        let boosted = task.utility(&s.din.with_column(col).unwrap());
        assert!(boosted > 0.9, "state column disambiguates: {boosted}");
    }

    #[test]
    fn irrelevant_augmentation_gains_nothing() {
        let s = build_linking(&LinkingConfig::default());
        let TaskSpec::EntityLinking { mention, truth } = &s.spec else {
            panic!()
        };
        let task = EntityLinkingTask::new(mention.clone(), truth.clone());
        let base = task.utility(&s.din);
        let misc = s
            .tables
            .iter()
            .find(|t| t.name.starts_with("city_misc_"))
            .unwrap();
        let tag_idx = misc
            .columns()
            .iter()
            .position(|c| c.name.as_deref().is_some_and(|n| n.starts_with("tag_")))
            .unwrap();
        let col = left_join_column(&s.din, 0, misc, 0, tag_idx)
            .unwrap()
            .with_name("aug0_tag");
        let u = task.utility(&s.din.with_column(col).unwrap());
        assert!((u - base).abs() < 1e-9);
    }
}
