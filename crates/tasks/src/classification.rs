//! Random-forest classification task (§VI-A "Classification").
//!
//! Utility = macro F-score of a forest trained on a seeded split of the
//! (augmented) table — the paper's Price/Schools setting.

use metam_core::Task;
use metam_ml::dataset::{encode_table, TargetKind};
use metam_ml::forest::{RandomForest, RandomForestConfig};
use metam_ml::metrics::f1_macro;
use metam_ml::split::train_test_split;
use metam_ml::tree::{TreeConfig, TreeTask};
use metam_table::Table;

use crate::util::drop_idlike_columns;

/// Classification task over a named target column.
pub struct ClassificationTask {
    /// Target column name.
    pub target: String,
    /// Split/model seed.
    pub seed: u64,
    /// Forest size (kept small — the utility is queried thousands of
    /// times per experiment).
    pub n_trees: usize,
    /// Tree depth.
    pub max_depth: usize,
    /// Number of seeded split/fit repetitions averaged per query —
    /// variance reduction so the utility reflects the augmentation, not
    /// split luck.
    pub repeats: usize,
}

impl ClassificationTask {
    /// Task with the default (paper-scale) model.
    pub fn new(target: impl Into<String>, seed: u64) -> ClassificationTask {
        ClassificationTask {
            target: target.into(),
            seed,
            n_trees: 8,
            max_depth: 6,
            repeats: 3,
        }
    }
}

impl Task for ClassificationTask {
    fn name(&self) -> &str {
        "classification"
    }

    fn utility(&self, table: &Table) -> f64 {
        let clean = drop_idlike_columns(table, &[self.target.as_str()]);
        let Ok(data) = encode_table(&clean, &self.target, TargetKind::Classification) else {
            return 0.0;
        };
        if data.len() < 20 || data.n_features() == 0 {
            return 0.0;
        }
        let n_classes = data.n_classes.unwrap_or(2).max(2);
        let mut total = 0.0;
        let repeats = self.repeats.max(1);
        for r in 0..repeats {
            let seed = self.seed ^ (r as u64).wrapping_mul(0x9E3779B9);
            let (train, val) = train_test_split(&data, 0.3, seed);
            let forest = RandomForest::fit(
                &train,
                TreeTask::Classification { n_classes },
                RandomForestConfig {
                    n_trees: self.n_trees,
                    tree: TreeConfig {
                        max_depth: self.max_depth,
                        ..Default::default()
                    },
                    seed,
                },
            );
            let preds = forest.predict_batch(&val.features);
            total += f1_macro(&preds, &val.targets, n_classes);
        }
        total / repeats as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};
    use metam_table::join::left_join_column;

    fn scenario() -> metam_datagen::Scenario {
        build_supervised(&SupervisedConfig {
            n_rows: 400,
            n_informative: 2,
            n_irrelevant_tables: 2,
            n_erroneous_tables: 1,
            ..Default::default()
        })
    }

    #[test]
    fn informative_augmentation_raises_utility() {
        let s = scenario();
        let task = ClassificationTask::new("label", 0);
        let base = task.utility(&s.din);
        assert!((0.4..0.95).contains(&base), "base={base}");

        let crime = s.tables.iter().find(|t| t.name == "crime_stats").unwrap();
        let col = left_join_column(
            &s.din,
            0,
            crime,
            0,
            crime.column_index("crime_stats_value").unwrap(),
        )
        .unwrap()
        .with_name("aug0_crime");
        let augmented = s.din.with_column(col).unwrap();
        let boosted = task.utility(&augmented);
        assert!(
            boosted > base + 0.05,
            "augmentation must help: base={base} boosted={boosted}"
        );
    }

    #[test]
    fn utility_is_deterministic() {
        let s = scenario();
        let task = ClassificationTask::new("label", 7);
        assert_eq!(task.utility(&s.din), task.utility(&s.din));
    }

    #[test]
    fn missing_target_scores_zero() {
        let s = scenario();
        let task = ClassificationTask::new("nonexistent", 0);
        assert_eq!(task.utility(&s.din), 0.0);
    }
}
