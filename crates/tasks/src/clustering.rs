//! Clustering task (§VI-A.4 "Clustering").
//!
//! The task clusters the rows (seeded k-means over all numeric columns,
//! each min-max normalized) and scores the clustering against the
//! ground-truth categories by *purity*. The paper's ONI augmentation is
//! "highly correlated with the ground-truth clusters and therefore helps
//! to improve clustering quality" — with purity as the quality metric,
//! a category-aligned augmentation lifts utility and noise does not.

use metam_core::Task;
use metam_table::Table;

use crate::util::numeric_columns;

/// k-means + purity clustering task.
pub struct ClusteringTask {
    /// Number of clusters.
    pub k: usize,
    /// Ground-truth category per row (the evaluation harness's labels).
    pub truth: Vec<usize>,
    /// Seed for the k-means++ initialization.
    pub seed: u64,
}

impl ClusteringTask {
    /// New clustering task.
    pub fn new(k: usize, truth: Vec<usize>) -> ClusteringTask {
        ClusteringTask {
            k: k.max(1),
            truth,
            seed: 0,
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// k-means with several seeded restarts; keeps the assignment with the
/// lowest within-cluster sum of squares (Lloyd gets stuck in local minima
/// on mixed tight/noisy dimensions otherwise).
pub(crate) fn kmeans(points: &[Vec<f64>], k: usize, seed: u64, iters: usize) -> Vec<usize> {
    let mut best: Option<(f64, Vec<usize>)> = None;
    for restart in 0..8u64 {
        let assignment = kmeans_once(points, k, seed ^ (restart.wrapping_mul(0x9E37)), iters);
        let cost = wcss(points, &assignment, k);
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, assignment));
        }
    }
    best.map(|(_, a)| a).unwrap_or_default()
}

/// Within-cluster sum of squares for an assignment.
fn wcss(points: &[Vec<f64>], assignment: &[usize], k: usize) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let dims = points[0].len();
    let mut sums = vec![vec![0.0; dims]; k.max(1)];
    let mut counts = vec![0usize; k.max(1)];
    for (p, &a) in points.iter().zip(assignment) {
        counts[a] += 1;
        for (s, &v) in sums[a].iter_mut().zip(p) {
            *s += v;
        }
    }
    let centers: Vec<Vec<f64>> = sums
        .iter()
        .zip(&counts)
        .map(|(s, &c)| {
            s.iter()
                .map(|v| if c > 0 { v / c as f64 } else { 0.0 })
                .collect()
        })
        .collect();
    points
        .iter()
        .zip(assignment)
        .map(|(p, &a)| sq_dist(p, &centers[a]))
        .sum()
}

/// One deterministic k-means++ initialization followed by Lloyd iterations;
/// returns the cluster assignment per point.
fn kmeans_once(points: &[Vec<f64>], k: usize, seed: u64, iters: usize) -> Vec<usize> {
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let mut state = seed ^ 0xC0FFEE;
    // k-means++: first center random, next ∝ squared distance.
    let mut centers: Vec<Vec<f64>> = vec![points[(splitmix(&mut state) as usize) % n].clone()];
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centers[0])).collect();
    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            (splitmix(&mut state) as usize) % n
        } else {
            let mut draw = (splitmix(&mut state) as f64 / u64::MAX as f64) * total;
            let mut idx = 0;
            for (i, &d) in d2.iter().enumerate() {
                if draw < d {
                    idx = i;
                    break;
                }
                draw -= d;
                idx = i;
            }
            idx
        };
        let center = points[next].clone();
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(sq_dist(p, &center));
        }
        centers.push(center);
    }

    let dims = points[0].len();
    let mut assignment = vec![0usize; n];
    for _ in 0..iters {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = sq_dist(p, center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Recompute centers.
        let mut sums = vec![vec![0.0; dims]; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &v) in sums[assignment[i]].iter_mut().zip(p) {
                *s += v;
            }
        }
        for (c, center) in centers.iter_mut().enumerate() {
            if counts[c] > 0 {
                for (coord, s) in center.iter_mut().zip(&sums[c]) {
                    *coord = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    assignment
}

/// Purity: Σ over clusters of the majority-category count, over n.
pub(crate) fn purity(assignment: &[usize], truth: &[usize], k: usize) -> f64 {
    if assignment.is_empty() || assignment.len() != truth.len() {
        return 0.0;
    }
    let n_cats = truth.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![vec![0usize; n_cats]; k.max(1)];
    for (&a, &t) in assignment.iter().zip(truth) {
        if a < counts.len() && t < n_cats {
            counts[a][t] += 1;
        }
    }
    let majority: usize = counts
        .iter()
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .sum();
    majority as f64 / assignment.len() as f64
}

/// Mean silhouette coefficient of an assignment (Euclidean distances).
/// Scale-free, so it can arbitrate between feature subspaces.
pub(crate) fn silhouette(points: &[Vec<f64>], assignment: &[usize], k: usize) -> f64 {
    let n = points.len();
    if n < 3 || k < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let mut sums = vec![0.0f64; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = sq_dist(&points[i], &points[j]).sqrt();
            sums[assignment[j]] += d;
            counts[assignment[j]] += 1;
        }
        let own = assignment[i];
        if counts[own] == 0 {
            continue;
        }
        let a = sums[own] / counts[own] as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            continue;
        }
        total += (b - a) / a.max(b).max(1e-12);
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Min-max normalize each column to `[0, 1]`.
fn normalize_columns(columns: &[Vec<f64>]) -> Vec<Vec<f64>> {
    columns
        .iter()
        .map(|col| {
            let lo = col.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let span = (hi - lo).max(1e-12);
            col.iter().map(|v| (v - lo) / span).collect()
        })
        .collect()
}

/// Cluster over the candidate feature subspaces — every single column,
/// plus all columns together — and keep the subspace whose k-means
/// clustering has the best (scale-free) silhouette. Standard practice when
/// some attributes are cluster-informative and others are noise. Returns
/// `(silhouette, assignment)` of the winner.
fn best_subspace_clustering(
    normalized: &[Vec<f64>],
    k: usize,
    seed: u64,
) -> Option<(f64, Vec<usize>)> {
    let n = normalized.first().map_or(0, Vec::len);
    let mut subspaces: Vec<Vec<usize>> = (0..normalized.len()).map(|i| vec![i]).collect();
    if normalized.len() > 1 {
        subspaces.push((0..normalized.len()).collect());
    }
    let mut best: Option<(f64, Vec<usize>)> = None;
    for subspace in subspaces {
        let points: Vec<Vec<f64>> = (0..n)
            .map(|r| subspace.iter().map(|&c| normalized[c][r]).collect())
            .collect();
        let assignment = kmeans(&points, k, seed, 25);
        let score = silhouette(&points, &assignment, k);
        if best.as_ref().is_none_or(|(s, _)| score > *s) {
            best = Some((score, assignment));
        }
    }
    best
}

impl Task for ClusteringTask {
    fn name(&self) -> &str {
        "clustering"
    }

    fn utility(&self, table: &Table) -> f64 {
        let (columns, _names) = numeric_columns(table);
        if columns.is_empty() || columns[0].len() != self.truth.len() {
            return 0.0;
        }
        let normalized = normalize_columns(&columns);
        match best_subspace_clustering(&normalized, self.k, self.seed) {
            Some((_, assignment)) => purity(&assignment, &self.truth, self.k),
            None => 0.0,
        }
    }
}

/// Unsupervised clustering-fit task: no ground-truth labels required, so it
/// runs over any real lake (the ROADMAP's "expose clustering once it can
/// run without planted truth"). Utility is the silhouette coefficient of
/// the best-separating feature subspace, mapped from `[-1, 1]` to `[0, 1]`
/// — augmenting a column that carves the rows into `k` crisp groups lifts
/// it, noise does not.
pub struct ClusteringFitTask {
    /// Number of clusters.
    pub k: usize,
    /// Seed for the k-means++ initialization.
    pub seed: u64,
}

impl ClusteringFitTask {
    /// New unsupervised clustering task with `k` clusters.
    pub fn new(k: usize, seed: u64) -> ClusteringFitTask {
        ClusteringFitTask { k: k.max(2), seed }
    }
}

impl Task for ClusteringFitTask {
    fn name(&self) -> &str {
        "clustering-fit"
    }

    fn utility(&self, table: &Table) -> f64 {
        let (columns, _names) = numeric_columns(table);
        if columns.is_empty() || columns[0].len() < 3 {
            return 0.0;
        }
        let normalized = normalize_columns(&columns);
        match best_subspace_clustering(&normalized, self.k, self.seed) {
            Some((silhouette, _)) => ((silhouette + 1.0) / 2.0).clamp(0.0, 1.0),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::clustering::{build_clustering, ClusteringConfig};
    use metam_table::join::left_join_column;

    #[test]
    fn kmeans_separates_two_blobs() {
        let mut points = Vec::new();
        for i in 0..20 {
            points.push(vec![0.1 + (i as f64) * 0.001]);
            points.push(vec![0.9 - (i as f64) * 0.001]);
        }
        let a = kmeans(&points, 2, 0, 20);
        // All even indices (blob 1) share a cluster, odd indices the other.
        assert!(a.chunks(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn purity_perfect_and_chance() {
        let truth = vec![0, 0, 1, 1];
        assert_eq!(purity(&[0, 0, 1, 1], &truth, 2), 1.0);
        assert_eq!(
            purity(&[1, 1, 0, 0], &truth, 2),
            1.0,
            "label permutation is fine"
        );
        assert_eq!(purity(&[0, 0, 0, 0], &truth, 2), 0.5);
    }

    fn scenario_utilities() -> (f64, f64, f64) {
        let s = build_clustering(&ClusteringConfig::default());
        let metam_datagen::TaskSpec::Clustering { k, truth } = &s.spec else {
            panic!()
        };
        let task = ClusteringTask::new(*k, truth.clone());
        let base = task.utility(&s.din);

        let oni = s
            .tables
            .iter()
            .find(|t| t.name == "nutrient_intake")
            .unwrap();
        let col = left_join_column(&s.din, 0, oni, 0, oni.column_index("oni_score").unwrap())
            .unwrap()
            .with_name("aug0_oni");
        let boosted = task.utility(&s.din.with_column(col).unwrap());

        let noisy = s
            .tables
            .iter()
            .find(|t| t.name.starts_with("pantry_"))
            .unwrap();
        let vc = noisy
            .columns()
            .iter()
            .position(|c| c.name.as_deref().is_some_and(|n| n.starts_with("shelf_")))
            .unwrap();
        let ncol = left_join_column(&s.din, 0, noisy, 0, vc)
            .unwrap()
            .with_name("aug1_shelf");
        let noised = task.utility(&s.din.with_column(ncol).unwrap());
        (base, boosted, noised)
    }

    #[test]
    fn oni_augmentation_lifts_purity() {
        let (base, boosted, _) = scenario_utilities();
        assert!(base < 0.75, "satiety alone clusters poorly: {base}");
        assert!(
            boosted > base + 0.15,
            "ONI must help: base={base} boosted={boosted}"
        );
        assert!(boosted > 0.9, "ONI nearly solves it: {boosted}");
    }

    #[test]
    fn noise_augmentation_does_not_help() {
        let (base, _, noised) = scenario_utilities();
        assert!(
            noised <= base + 0.1,
            "noise must not look useful: base={base} noised={noised}"
        );
    }

    #[test]
    fn unsupervised_fit_rewards_separating_augmentation() {
        // Same scenario, but scored without any planted truth: the ONI
        // column separates the rows into crisp clusters, so the silhouette
        // utility must rise; a noisy shelf column must not beat it.
        let s = build_clustering(&ClusteringConfig::default());
        let metam_datagen::TaskSpec::Clustering { k, .. } = &s.spec else {
            panic!()
        };
        let task = ClusteringFitTask::new(*k, 0);
        let base = task.utility(&s.din);
        assert!((0.0..=1.0).contains(&base));

        let oni = s
            .tables
            .iter()
            .find(|t| t.name == "nutrient_intake")
            .unwrap();
        let col = left_join_column(&s.din, 0, oni, 0, oni.column_index("oni_score").unwrap())
            .unwrap()
            .with_name("aug0_oni");
        let boosted = task.utility(&s.din.with_column(col).unwrap());
        assert!(
            boosted > base + 0.05,
            "a crisply clustered augmentation must lift the fit: base={base} boosted={boosted}"
        );
        assert!((0.0..=1.0).contains(&boosted));
    }

    #[test]
    fn unsupervised_fit_handles_degenerate_tables() {
        use metam_table::{Column, Table};
        let task = ClusteringFitTask::new(3, 1);
        let empty = Table::from_columns(
            "t",
            vec![Column::from_strings(
                Some("s".into()),
                vec![Some("a".into()), Some("b".into())],
            )],
        )
        .unwrap();
        assert_eq!(task.utility(&empty), 0.0, "no numeric columns");
        assert!(ClusteringFitTask::new(0, 1).k >= 2, "k is floored");
    }
}
