//! Union (record-addition) task (Fig. 4b).
//!
//! Augmentations are *markers*: the materialized column `augN_union_marker_c`
//! tells the task to union record table `c` into the training data. The
//! validation split always comes from the original `Din` rows, so good
//! (in-distribution) batches raise accuracy while shifted batches drag it
//! down.

use metam_core::Task;
use metam_ml::dataset::{encode_table, TargetKind};
use metam_ml::forest::{RandomForest, RandomForestConfig};
use metam_ml::metrics::f1_macro;
use metam_ml::split::train_test_split;
use metam_ml::tree::{TreeConfig, TreeTask};
use metam_table::union::union_tables;
use metam_table::Table;

use crate::util::drop_idlike_columns;

/// The unions task. Holds the record tables; marker columns select them.
pub struct UnionTask {
    /// Target column name.
    pub target: String,
    /// Union record tables, indexed by marker id.
    pub union_tables: Vec<Table>,
    /// Fixed held-out evaluation table (the paper's validation dataset).
    /// Falls back to a seeded split of the input rows when absent.
    pub eval_table: Option<Table>,
    /// Seed.
    pub seed: u64,
}

impl UnionTask {
    /// New unions task.
    pub fn new(target: impl Into<String>, union_tables: Vec<Table>, seed: u64) -> UnionTask {
        UnionTask {
            target: target.into(),
            union_tables,
            eval_table: None,
            seed,
        }
    }

    /// With a fixed evaluation table.
    pub fn with_eval(mut self, eval: Option<Table>) -> UnionTask {
        self.eval_table = eval;
        self
    }

    /// Parse selected union ids from the marker columns present.
    fn selected_unions(&self, table: &Table) -> Vec<usize> {
        let mut ids = Vec::new();
        for i in 0..table.ncols() {
            let name = table.column_display_name(i);
            // Matches `...union_marker_<c>` (materialized as
            // `augN_union_marker_<c>`).
            if let Some(pos) = name.find("union_marker_") {
                if let Ok(c) = name[pos + "union_marker_".len()..].parse::<usize>() {
                    if c < self.union_tables.len() && !ids.contains(&c) {
                        ids.push(c);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids
    }
}

impl Task for UnionTask {
    fn name(&self) -> &str {
        "unions-classification"
    }

    fn utility(&self, table: &Table) -> f64 {
        let selected = self.selected_unions(table);
        // Strip marker columns and id-like columns; keep real features.
        let feature_indices: Vec<usize> = (0..table.ncols())
            .filter(|&i| !table.column_display_name(i).contains("union_marker_"))
            .collect();
        let Ok(base) = table.select(&feature_indices) else {
            return 0.0;
        };
        let base = drop_idlike_columns(&base, &[self.target.as_str()]);

        // Evaluation rows: the dedicated held-out table when available,
        // otherwise a seeded split of the input rows.
        let val = if let Some(eval) = &self.eval_table {
            let cleaned = drop_idlike_columns(eval, &[self.target.as_str()]);
            let Ok(data) = encode_table(&cleaned, &self.target, TargetKind::Classification) else {
                return 0.0;
            };
            data
        } else {
            let Ok(base_data) = encode_table(&base, &self.target, TargetKind::Classification)
            else {
                return 0.0;
            };
            if base_data.len() < 20 {
                return 0.0;
            }
            train_test_split(&base_data, 0.3, self.seed).1
        };

        // Training table: original rows ∪ selected union tables.
        let mut train_table = base.clone();
        for &c in &selected {
            let cleaned = drop_idlike_columns(&self.union_tables[c], &[self.target.as_str()]);
            if let Ok(u) = union_tables(&train_table, &cleaned) {
                train_table = u;
            }
        }
        let Ok(train_data) = encode_table(&train_table, &self.target, TargetKind::Classification)
        else {
            return 0.0;
        };
        let n_classes = train_data.n_classes.unwrap_or(2).max(2);
        let forest = RandomForest::fit(
            &train_data,
            TreeTask::Classification { n_classes },
            RandomForestConfig {
                n_trees: 8,
                tree: TreeConfig {
                    max_depth: 6,
                    ..Default::default()
                },
                seed: self.seed,
            },
        );
        f1_macro(
            &forest.predict_batch(&val.features),
            &val.targets,
            n_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::unions::{build_unions, UnionsConfig};
    use metam_datagen::TaskSpec;
    use metam_table::Column;

    fn with_marker(din: &Table, c: usize) -> Table {
        din.with_column(Column::from_floats(
            Some(format!("aug{c}_union_marker_{c}")),
            vec![Some(1.0); din.nrows()],
        ))
        .unwrap()
    }

    #[test]
    fn selected_unions_parses_marker_names() {
        let s = build_unions(&UnionsConfig::default());
        let TaskSpec::Unions { target } = &s.spec else {
            panic!()
        };
        let task = UnionTask::new(target.clone(), s.union_tables.clone(), 0);
        let t = with_marker(&with_marker(&s.din, 3), 0);
        assert_eq!(task.selected_unions(&t), vec![0, 3]);
        assert!(task.selected_unions(&s.din).is_empty());
    }

    #[test]
    fn good_union_does_not_hurt_bad_union_does() {
        let s = build_unions(&UnionsConfig {
            seed: 3,
            ..Default::default()
        });
        let TaskSpec::Unions { target } = &s.spec else {
            panic!()
        };
        let task = UnionTask::new(target.clone(), s.union_tables.clone(), 0)
            .with_eval(s.eval_table.clone());
        let base = task.utility(&s.din);
        let good = task.utility(&with_marker(&s.din, 0)); // batch 0 is good
        let bad = task.utility(&with_marker(&s.din, 15)); // batch 15 is corrupted
        assert!(base > 0.5, "base classifier works: {base}");
        assert!(
            good >= base - 0.03,
            "good batch must not hurt: base={base} good={good}"
        );
        assert!(
            bad < good,
            "corrupted batch must underperform: good={good} bad={bad}"
        );
        assert!(
            good > bad + 0.05,
            "separation must be clear: good={good} bad={bad}"
        );
    }

    #[test]
    fn good_batches_accumulate_gains() {
        let s = build_unions(&UnionsConfig {
            seed: 5,
            ..Default::default()
        });
        let TaskSpec::Unions { target } = &s.spec else {
            panic!()
        };
        let task = UnionTask::new(target.clone(), s.union_tables.clone(), 0)
            .with_eval(s.eval_table.clone());
        let base = task.utility(&s.din);
        let mut t = s.din.clone();
        for c in 0..4 {
            t = with_marker(&t, c);
        }
        let all_good = task.utility(&t);
        assert!(
            all_good > base + 0.02,
            "4 good batches must lift a data-starved model: {base} → {all_good}"
        );
    }
}
