//! Instantiate a [`Task`] from a datagen [`TaskSpec`].

use metam_core::Task;
use metam_datagen::{Scenario, TaskSpec};

use crate::automl::AutoMlTask;
use crate::classification::ClassificationTask;
use crate::clustering::ClusteringTask;
use crate::entity_linking::EntityLinkingTask;
use crate::fairness::FairClassificationTask;
use crate::howto::HowToTask;
use crate::regression::RegressionTask;
use crate::unions::UnionTask;
use crate::whatif::WhatIfTask;

/// Build the downstream task a scenario describes. `seed` controls the
/// task-internal randomness (splits, model fits) and is independent of the
/// scenario's data seed.
pub fn build_task(scenario: &Scenario, seed: u64) -> Box<dyn Task> {
    match &scenario.spec {
        TaskSpec::Classification { target } => Box::new(ClassificationTask::new(target, seed)),
        TaskSpec::AutoMlClassification { target } => Box::new(AutoMlTask::new(target, seed)),
        TaskSpec::Regression { target } => Box::new(RegressionTask::new(target, seed)),
        TaskSpec::WhatIf {
            intervened,
            affected,
        } => Box::new(WhatIfTask::new(intervened, affected.clone())),
        TaskSpec::HowTo { outcome, drivers } => Box::new(HowToTask::new(outcome, drivers.clone())),
        TaskSpec::FairClassification { target, sensitive } => {
            Box::new(FairClassificationTask::new(target, sensitive, seed))
        }
        TaskSpec::EntityLinking { mention, truth } => {
            Box::new(EntityLinkingTask::new(mention, truth.clone()))
        }
        TaskSpec::Clustering { k, truth } => Box::new(ClusteringTask::new(*k, truth.clone())),
        TaskSpec::Unions { target } => Box::new(
            UnionTask::new(target, scenario.union_tables.clone(), seed)
                .with_eval(scenario.eval_table.clone()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_datagen::supervised::{build_supervised, SupervisedConfig};

    #[test]
    fn builder_matches_spec() {
        let s = build_supervised(&SupervisedConfig::default());
        let t = build_task(&s, 0);
        assert_eq!(t.name(), "classification");
        let u = t.utility(&s.din);
        assert!((0.0..=1.0).contains(&u));
    }

    #[test]
    fn builder_handles_every_spec_kind() {
        use metam_datagen::causal_scenario::{build_causal, CausalConfig, CausalKind};
        let s = build_causal(&CausalConfig::default());
        assert_eq!(build_task(&s, 0).name(), "what-if");
        let s = build_causal(&CausalConfig {
            kind: CausalKind::HowTo,
            ..Default::default()
        });
        assert_eq!(build_task(&s, 0).name(), "how-to");
        let s = metam_datagen::linking::build_linking(&Default::default());
        assert_eq!(build_task(&s, 0).name(), "entity-linking");
        let s = metam_datagen::clustering::build_clustering(&Default::default());
        assert_eq!(build_task(&s, 0).name(), "clustering");
        let s = metam_datagen::fairness::build_fairness(&Default::default());
        assert_eq!(build_task(&s, 0).name(), "fair-classification");
        let s = metam_datagen::unions::build_unions(&Default::default());
        assert_eq!(build_task(&s, 0).name(), "unions-classification");
    }
}
