//! IDENTIFY-MINIMAL: the minimality post-check (paper Definition 6).
//!
//! Iteratively drop augmentations whose removal keeps utility ≥ θ; the
//! result is minimal — removing any remaining element breaks the
//! threshold. Queries issued here count like any others (they hit the same
//! engine).

use std::collections::BTreeSet;

use metam_discovery::CandidateId;

use crate::engine::{QueryEngine, QueryPlan, StopSearch};
use crate::observer::QueryKind;

/// Reduce `solution` to a minimal set with utility ≥ `theta`.
///
/// Scans in ascending id order and restarts after every removal, so the
/// outcome is deterministic (removal probes are speculatively prefetched
/// a worker-pool window at a time, but committed strictly in scan order).
/// If the budget runs out mid-check, the current (possibly non-minimal)
/// set is returned.
pub fn identify_minimal(
    engine: &mut QueryEngine<'_>,
    solution: &BTreeSet<CandidateId>,
    theta: f64,
) -> BTreeSet<CandidateId> {
    let mut current = solution.clone();
    'outer: loop {
        let ids: Vec<CandidateId> = current.iter().copied().collect();
        let mut idx = 0;
        while idx < ids.len() {
            // A successful removal restarts the scan and discards the rest
            // of the window — wrong speculation only wastes wall-clock.
            let window_end = ids.len().min(idx + engine.threads());
            let plans: Vec<QueryPlan> = ids[idx..window_end]
                .iter()
                .map(|id| {
                    let mut without = current.clone();
                    without.remove(id);
                    QueryPlan::new(QueryKind::Minimality, without)
                })
                .collect();
            engine.prefetch(&plans);
            for plan in &plans {
                match engine.evaluate(plan) {
                    Ok(u) if u >= theta => {
                        current = plan.set.clone();
                        continue 'outer;
                    }
                    Ok(_) => {}
                    Err(StopSearch) => return current,
                }
            }
            idx = window_end;
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::engine::SearchInputs;
    use crate::task::LinearSyntheticTask;

    #[test]
    fn redundant_members_are_dropped() {
        let (din, candidates, mat) = fixture(4);
        // Candidate 0 alone reaches θ; 1 and 2 are dead weight.
        let mut weights = vec![0.0; candidates.len()];
        weights[0] = 0.6;
        weights[1] = 0.0;
        weights[2] = 0.0;
        let task = LinearSyntheticTask { base: 0.2, weights };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, 1000);
        let solution: BTreeSet<usize> = [0, 1, 2].into();
        let minimal = identify_minimal(&mut engine, &solution, 0.8);
        assert_eq!(minimal, [0].into());
    }

    #[test]
    fn result_is_actually_minimal() {
        let (din, candidates, mat) = fixture(4);
        // Need both 0 and 1 to reach θ = 0.75.
        let mut weights = vec![0.0; candidates.len()];
        weights[0] = 0.3;
        weights[1] = 0.3;
        let task = LinearSyntheticTask { base: 0.2, weights };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, 1000);
        let solution: BTreeSet<usize> = [0, 1, 2, 3].into();
        let minimal = identify_minimal(&mut engine, &solution, 0.75);
        assert_eq!(minimal, [0, 1].into());
        // Definition 6: removing any member must now break θ.
        for &id in &minimal {
            let mut without = minimal.clone();
            without.remove(&id);
            assert!(engine.utility_of(&without).unwrap() < 0.75);
        }
    }

    #[test]
    fn budget_exhaustion_returns_current_set() {
        let (din, candidates, mat) = fixture(3);
        let task = LinearSyntheticTask {
            base: 0.9,
            weights: vec![0.0; candidates.len()],
        };
        let profiles = vec![vec![0.5]; candidates.len()];
        let names = vec!["p".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: None,
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let mut engine = QueryEngine::new(&inputs, 0);
        let solution: BTreeSet<usize> = [0, 1].into();
        let out = identify_minimal(&mut engine, &solution, 0.5);
        assert_eq!(out, solution, "no budget → unchanged");
    }
}
