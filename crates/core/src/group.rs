//! The group-querying mechanism (IDENTIFY-GROUP, §IV-B).
//!
//! Builds size-`t` candidate subsets by Thompson-sampling `t` clusters and
//! drawing one random member from each. `t` starts at 1 and escalates once
//! all (practically: a capped number of) size-`t` groups have been queried,
//! implementing P1's small-subsets-first combinatorial testing.

use std::collections::BTreeSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::bandit::ThompsonSampler;
use crate::cluster::Clustering;

/// State of the group mechanism across the search.
#[derive(Debug, Clone)]
pub struct GroupState {
    /// Current subset size `t`.
    pub t: usize,
    /// Distinct size-`t` groups already queried.
    tried: BTreeSet<Vec<usize>>,
    /// Practical cap on groups per size before escalating `t`.
    cap: usize,
}

/// `C(n, k)` with saturation.
fn binomial_saturating(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut result: usize = 1;
    for i in 0..k {
        result = result.saturating_mul(n - i) / (i + 1);
        if result == usize::MAX {
            return usize::MAX;
        }
    }
    result
}

impl GroupState {
    /// New state with subset size 1 and a per-size group cap.
    pub fn new(cap: usize) -> GroupState {
        GroupState {
            t: 1,
            tried: BTreeSet::new(),
            cap: cap.max(1),
        }
    }

    /// How many distinct groups of the current size have been tried.
    pub fn tried_count(&self) -> usize {
        self.tried.len()
    }

    /// Propose the next group of candidates, or `None` when no fresh group
    /// can be built (e.g. every candidate shares one cluster and t > 1).
    ///
    /// Escalates `t` when the per-size budget — `min(C(|C|, t), cap)` —
    /// is exhausted ("the value of t is increased when all sets of size
    /// less than t have been queried").
    pub fn propose<R: Rng>(
        &mut self,
        clustering: &Clustering,
        sampler: &ThompsonSampler,
        rng: &mut R,
    ) -> Option<Vec<usize>> {
        let n_clusters = clustering.len();
        if n_clusters == 0 {
            return None;
        }
        // Escalate when this size's budget is exhausted.
        let budget = binomial_saturating(n_clusters, self.t).min(self.cap);
        if self.tried.len() >= budget {
            if self.t >= n_clusters {
                return None;
            }
            self.t += 1;
            self.tried.clear();
        }

        // A few attempts to find an unseen group; sampling is cheap.
        for _ in 0..8 {
            let arms = sampler.sample_top(self.t.min(n_clusters), rng);
            let mut group: Vec<usize> = arms
                .iter()
                .filter_map(|&cluster| clustering.clusters[cluster].choose(rng).copied())
                .collect();
            group.sort_unstable();
            group.dedup();
            if group.is_empty() {
                return None;
            }
            if self.tried.insert(group.clone()) {
                return Some(group);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial_saturating(5, 2), 10);
        assert_eq!(binomial_saturating(4, 0), 1);
        assert_eq!(binomial_saturating(3, 5), 0);
    }

    #[test]
    fn proposes_singletons_first() {
        let clustering = Clustering::singletons(4);
        let sampler = ThompsonSampler::new(4);
        let mut state = GroupState::new(100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let g = state.propose(&clustering, &sampler, &mut rng).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(state.t, 1);
    }

    #[test]
    fn escalates_t_after_exhausting_singletons() {
        let clustering = Clustering::singletons(3);
        let sampler = ThompsonSampler::new(3);
        let mut state = GroupState::new(100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen_sizes = Vec::new();
        for _ in 0..10 {
            if let Some(g) = state.propose(&clustering, &sampler, &mut rng) {
                seen_sizes.push(g.len());
            }
        }
        assert!(seen_sizes.contains(&1));
        assert!(seen_sizes.contains(&2), "t must escalate: {seen_sizes:?}");
    }

    #[test]
    fn groups_are_distinct_per_size() {
        let clustering = Clustering::singletons(5);
        let sampler = ThompsonSampler::new(5);
        let mut state = GroupState::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut groups = Vec::new();
        for _ in 0..5 {
            if let Some(g) = state.propose(&clustering, &sampler, &mut rng) {
                if g.len() == 1 {
                    groups.push(g);
                }
            }
        }
        let mut dedup = groups.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), groups.len());
    }

    #[test]
    fn empty_clustering_returns_none() {
        let clustering = crate::cluster::cluster_partition(&[], 0.05, 0);
        let sampler = ThompsonSampler::new(0);
        let mut state = GroupState::new(10);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert!(state.propose(&clustering, &sampler, &mut rng).is_none());
    }
}
