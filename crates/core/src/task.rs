//! The black-box task contract (paper Definition 5) and synthetic tasks.

use metam_table::Table;

/// A downstream task: anything that maps a (possibly augmented) dataset to
/// a utility score in `[0, 1]`. Metam never looks inside — it only queries.
pub trait Task: Send + Sync {
    /// Human-readable task name.
    fn name(&self) -> &str;

    /// Utility of the task when run on `table` (Definition 5). Must be
    /// deterministic for a fixed input table; higher is better.
    fn utility(&self, table: &Table) -> f64;
}

/// A synthetic task whose utility is a capped sum of per-augmentation
/// contributions: `u = min(1, base + Σ weight(aug))`.
///
/// Augmented columns are recognized by the `augID_` prefix the materializer
/// stamps. Monotone and submodular-ish; used by unit tests and the
/// scalability benches where a real model fit would drown the measurement.
pub struct LinearSyntheticTask {
    /// Utility of the bare `Din`.
    pub base: f64,
    /// Contribution of candidate `i` when its column is present.
    pub weights: Vec<f64>,
}

/// Parse the candidate id out of a materialized column name (`aug{id}_...`).
pub fn parse_aug_id(name: &str) -> Option<usize> {
    let rest = name.strip_prefix("aug")?;
    let end = rest.find('_')?;
    rest[..end].parse().ok()
}

impl Task for LinearSyntheticTask {
    fn name(&self) -> &str {
        "linear-synthetic"
    }

    fn utility(&self, table: &Table) -> f64 {
        let mut u = self.base;
        for col in table.columns() {
            if let Some(id) = col.name.as_deref().and_then(parse_aug_id) {
                u += self.weights.get(id).copied().unwrap_or(0.0);
            }
        }
        u.clamp(0.0, 1.0)
    }
}

/// The set-cover gadget from Theorem 1: candidate `i` covers a fixed set of
/// elements; utility = covered fraction of the universe. NP-hardness
/// reduction *and* a convenient monotone, submodular ground truth.
pub struct SetCoverTask {
    /// `covers[i]` = elements covered by candidate `i`.
    pub covers: Vec<Vec<usize>>,
    /// Universe size `n`.
    pub universe: usize,
}

impl Task for SetCoverTask {
    fn name(&self) -> &str {
        "set-cover"
    }

    fn utility(&self, table: &Table) -> f64 {
        if self.universe == 0 {
            return 0.0;
        }
        let mut covered = vec![false; self.universe];
        for col in table.columns() {
            if let Some(id) = col.name.as_deref().and_then(parse_aug_id) {
                if let Some(elems) = self.covers.get(id) {
                    for &e in elems {
                        if e < self.universe {
                            covered[e] = true;
                        }
                    }
                }
            }
        }
        covered.iter().filter(|&&c| c).count() as f64 / self.universe as f64
    }
}

/// A deliberately *non-monotone* synthetic task: one "poison" candidate
/// subtracts utility. Exercises the monotonicity-certification path (P3).
pub struct NonMonotoneTask {
    /// Base utility.
    pub base: f64,
    /// Per-candidate deltas; may be negative.
    pub deltas: Vec<f64>,
}

impl Task for NonMonotoneTask {
    fn name(&self) -> &str {
        "non-monotone-synthetic"
    }

    fn utility(&self, table: &Table) -> f64 {
        let mut u = self.base;
        for col in table.columns() {
            if let Some(id) = col.name.as_deref().and_then(parse_aug_id) {
                u += self.deltas.get(id).copied().unwrap_or(0.0);
            }
        }
        u.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metam_table::Column;

    fn table_with_augs(ids: &[usize]) -> Table {
        let mut t = Table::from_columns(
            "din",
            vec![Column::from_floats(
                Some("y".into()),
                vec![Some(1.0), Some(2.0)],
            )],
        )
        .unwrap();
        for &id in ids {
            t.add_column(Column::from_floats(
                Some(format!("aug{id}_x")),
                vec![Some(0.0), Some(1.0)],
            ))
            .unwrap();
        }
        t
    }

    #[test]
    fn parse_aug_id_roundtrip() {
        assert_eq!(parse_aug_id("aug42_crime_rate"), Some(42));
        assert_eq!(parse_aug_id("aug7_"), Some(7));
        assert_eq!(parse_aug_id("crime"), None);
        assert_eq!(parse_aug_id("augx_1"), None);
    }

    #[test]
    fn linear_task_caps_at_one() {
        let task = LinearSyntheticTask {
            base: 0.5,
            weights: vec![0.3, 0.4],
        };
        assert_eq!(task.utility(&table_with_augs(&[])), 0.5);
        assert!((task.utility(&table_with_augs(&[0])) - 0.8).abs() < 1e-12);
        assert_eq!(task.utility(&table_with_augs(&[0, 1])), 1.0);
    }

    #[test]
    fn set_cover_counts_union() {
        let task = SetCoverTask {
            covers: vec![vec![0, 1], vec![1, 2], vec![3]],
            universe: 4,
        };
        assert_eq!(task.utility(&table_with_augs(&[])), 0.0);
        assert_eq!(task.utility(&table_with_augs(&[0])), 0.5);
        assert_eq!(task.utility(&table_with_augs(&[0, 1])), 0.75);
        assert_eq!(task.utility(&table_with_augs(&[0, 1, 2])), 1.0);
    }

    #[test]
    fn non_monotone_can_decrease() {
        let task = NonMonotoneTask {
            base: 0.6,
            deltas: vec![0.2, -0.3],
        };
        assert!(task.utility(&table_with_augs(&[1])) < task.utility(&table_with_augs(&[])));
    }
}
