//! Quality-score estimation (§IV-B QUALITY-SCORE).
//!
//! `score(P) = profile_score(P) + utility_score(P)` where:
//!
//! * `profile_score` = `w · p`, a prior from profile values; the importance
//!   weights `w` start uniform and are re-learned after every query by the
//!   ridge closed form `β = (XᵀX + λI)⁻¹ Xᵀ q` that Lemma 4 analyzes,
//! * `utility_score` = the observed utility *gain* for queried candidates,
//!   propagated within a cluster as `(1 − d(P, P′)) · score(P′)` to
//!   unqueried candidates (property P2).

use metam_ml::matrix::ridge_solve;
use metam_ml::Matrix;
use metam_profile::linf_distance;

use crate::cluster::Clustering;

/// Refit the ridge weights every this many observations.
const REFIT_INTERVAL: usize = 4;
/// Only this many most-recent observations enter a refit.
const REFIT_WINDOW: usize = 512;

/// Online quality-score model over a fixed candidate set.
#[derive(Debug, Clone)]
pub struct QualityModel {
    /// Profile importance weights (normalized, non-negative).
    weights: Vec<f64>,
    /// Observed `(candidate, gain)` pairs.
    observations: Vec<(usize, f64)>,
    /// Per-candidate utility-based score.
    utility_scores: Vec<f64>,
    /// Whether cluster propagation of utility scores is active (turned off
    /// when the homogeneity check fails, §IV-B Generalization).
    propagate: bool,
    /// Whether weights are re-learned (ablation: fixed uniform otherwise).
    learn_weights: bool,
}

impl QualityModel {
    /// New model with uniform weights over `n_profiles`.
    pub fn new(n_candidates: usize, n_profiles: usize, learn_weights: bool) -> QualityModel {
        let w = if n_profiles == 0 {
            0.0
        } else {
            1.0 / n_profiles as f64
        };
        QualityModel {
            weights: vec![w; n_profiles],
            observations: Vec::new(),
            utility_scores: vec![0.0; n_candidates],
            propagate: true,
            learn_weights,
        }
    }

    /// Current profile weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Disable intra-cluster utility propagation (homogeneity failed).
    pub fn disable_propagation(&mut self) {
        self.propagate = false;
    }

    /// Is propagation active?
    pub fn propagation_enabled(&self) -> bool {
        self.propagate
    }

    /// Record the outcome of querying `candidate`: `gain` = utility
    /// increase over the pre-query dataset (clamped at 0 — a harmful
    /// augmentation has no *positive* evidence). Updates the candidate's
    /// utility score, propagates within its cluster, and refits weights.
    pub fn record(
        &mut self,
        candidate: usize,
        gain: f64,
        profiles: &[Vec<f64>],
        clustering: &Clustering,
    ) {
        let gain = gain.max(0.0);
        self.observations.push((candidate, gain));
        self.utility_scores[candidate] = gain;
        if self.propagate {
            let cluster = clustering.cluster_of(candidate);
            for &other in &clustering.clusters[cluster] {
                if other == candidate {
                    continue;
                }
                let d = linf_distance(&profiles[candidate], &profiles[other]);
                let propagated = (1.0 - d).max(0.0) * gain;
                // Keep the best evidence seen for `other` so far.
                if propagated > self.utility_scores[other] {
                    self.utility_scores[other] = propagated;
                }
            }
        }
        if self.learn_weights && self.observations.len().is_multiple_of(REFIT_INTERVAL) {
            self.refit_weights(profiles);
        }
    }

    /// Ridge refit of profile weights against observed gains (Lemma 4's
    /// closed form). Needs at least 3 observations; negative weights clamp
    /// to 0 (importances) and the vector renormalizes to sum 1, falling
    /// back to uniform when everything clamps away.
    ///
    /// Only the most recent [`REFIT_WINDOW`] observations enter the fit,
    /// keeping the per-refit cost `O(window · l² + l³)` independent of the
    /// query count — necessary for the 100-profile scalability sweeps.
    fn refit_weights(&mut self, profiles: &[Vec<f64>]) {
        let l = self.weights.len();
        if l == 0 || self.observations.len() < 3 {
            return;
        }
        let start = self.observations.len().saturating_sub(REFIT_WINDOW);
        let window = &self.observations[start..];
        let rows: Vec<Vec<f64>> = window.iter().map(|&(c, _)| profiles[c].clone()).collect();
        let targets: Vec<f64> = window.iter().map(|&(_, g)| g).collect();
        let x = Matrix::from_rows(&rows);
        if let Some(beta) = ridge_solve(&x, &targets, 1e-3) {
            let clamped: Vec<f64> = beta.iter().map(|&b| b.max(0.0)).collect();
            let sum: f64 = clamped.iter().sum();
            if sum > 1e-12 {
                self.weights = clamped.iter().map(|&b| b / sum).collect();
            } else {
                self.weights = vec![1.0 / l as f64; l];
            }
        }
    }

    /// Profile-based prior of one candidate.
    pub fn profile_score(&self, candidate: usize, profiles: &[Vec<f64>]) -> f64 {
        profiles[candidate]
            .iter()
            .zip(&self.weights)
            .map(|(p, w)| p * w)
            .sum()
    }

    /// Utility-based component of one candidate.
    pub fn utility_score(&self, candidate: usize) -> f64 {
        self.utility_scores[candidate]
    }

    /// Full quality score (JPSCORE in Algorithm 1).
    pub fn quality_score(&self, candidate: usize, profiles: &[Vec<f64>]) -> f64 {
        self.profile_score(candidate, profiles) + self.utility_score(candidate)
    }

    /// Argmax of the quality score over `eligible` (ties → smaller index).
    pub fn best_candidate(
        &self,
        eligible: impl Iterator<Item = usize>,
        profiles: &[Vec<f64>],
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for c in eligible {
            let s = self.quality_score(c, profiles);
            match best {
                Some((_, bs)) if s <= bs => {}
                _ => best = Some((c, s)),
            }
        }
        best.map(|(c, _)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster_partition;

    fn profiles() -> Vec<Vec<f64>> {
        // Candidates 0,1 nearly identical (one cluster); candidate 2 far.
        vec![vec![0.9, 0.1], vec![0.88, 0.12], vec![0.1, 0.9]]
    }

    #[test]
    fn initial_weights_uniform() {
        let m = QualityModel::new(3, 2, true);
        assert_eq!(m.weights(), &[0.5, 0.5]);
        assert_eq!(m.quality_score(0, &profiles()), 0.5);
    }

    #[test]
    fn gain_propagates_within_cluster_only() {
        let p = profiles();
        let clustering = cluster_partition(&p, 0.1, 0);
        let mut m = QualityModel::new(3, 2, false);
        m.record(0, 0.4, &p, &clustering);
        assert_eq!(m.utility_score(0), 0.4);
        assert!(
            m.utility_score(1) > 0.3,
            "near-duplicate inherits most of the gain"
        );
        assert_eq!(m.utility_score(2), 0.0, "far candidate untouched");
    }

    #[test]
    fn propagation_can_be_disabled() {
        let p = profiles();
        let clustering = cluster_partition(&p, 0.1, 0);
        let mut m = QualityModel::new(3, 2, false);
        m.disable_propagation();
        m.record(0, 0.4, &p, &clustering);
        assert_eq!(m.utility_score(1), 0.0);
    }

    #[test]
    fn weights_learn_the_predictive_profile() {
        // Profile 0 predicts gain; profile 1 is anti-correlated noise.
        let p: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 / 20.0, ((i * 7) % 5) as f64 / 5.0])
            .collect();
        let clustering = Clustering::singletons(20);
        let mut m = QualityModel::new(20, 2, true);
        for i in 0..20 {
            m.record(i, p[i][0] * 0.5, &p, &clustering);
        }
        assert!(
            m.weights()[0] > 0.8,
            "predictive profile should dominate: {:?}",
            m.weights()
        );
    }

    #[test]
    fn negative_gain_clamped() {
        let p = profiles();
        let clustering = Clustering::singletons(3);
        let mut m = QualityModel::new(3, 2, false);
        m.record(2, -0.5, &p, &clustering);
        assert_eq!(m.utility_score(2), 0.0);
    }

    #[test]
    fn best_candidate_prefers_high_scores() {
        let p = profiles();
        let m = QualityModel::new(3, 2, false);
        // Uniform weights: scores 0.5, 0.5, 0.5 → tie → smallest index.
        assert_eq!(m.best_candidate(0..3, &p), Some(0));
        assert_eq!(m.best_candidate(std::iter::empty(), &p), None);
    }
}
