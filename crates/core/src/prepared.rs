//! The unified "everything materialized for searching" bundle.
//!
//! Every data world — synthetic scenarios, on-disk CSV lakes, custom
//! [`DataSource`](https://docs.rs/metam) implementations — funnels into one
//! [`Prepared`] value via [`assemble`]: index the repository, enumerate
//! candidate augmentations (Definition 4), evaluate the profile vectors on
//! a seeded row sample (§VI "Settings"), and bundle the downstream task.
//! Search methods then borrow [`Prepared::inputs`].

use std::sync::Arc;

use metam_discovery::path::PathConfig;
use metam_discovery::{
    generate_candidates, Candidate, DiscoveryIndex, Materializer, TableDescriptor, TableProvider,
};
use metam_profile::ProfileSet;
use metam_table::Table;

use crate::engine::SearchInputs;
use crate::task::Task;

/// The repository a prepare run searches over, in either of its two
/// equivalent forms: tables already in memory (the scenario path), or
/// payload-free descriptors plus a deferred [`TableProvider`] (the
/// sketch-backed catalog path, where table data loads lazily only when a
/// candidate materializes). [`assemble`] accepts `impl Into<Repository>`,
/// so existing `Vec<Arc<Table>>` call sites are unchanged.
pub enum Repository {
    /// Materialized repository tables, indexed in order.
    Eager(Vec<Arc<Table>>),
    /// Descriptors (typically from persisted catalog sketches) plus a
    /// provider resolving the same indices to payloads on demand.
    Deferred {
        /// Payload-free per-table descriptors, in repository order.
        descriptors: Vec<TableDescriptor>,
        /// Lazy source of the corresponding table payloads.
        provider: Box<dyn TableProvider>,
    },
}

impl Repository {
    /// Number of repository tables.
    pub fn len(&self) -> usize {
        match self {
            Repository::Eager(tables) => tables.len(),
            Repository::Deferred { descriptors, .. } => descriptors.len(),
        }
    }

    /// `true` when the repository holds no tables.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for Repository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Repository::Eager(tables) => f.debug_tuple("Eager").field(&tables.len()).finish(),
            Repository::Deferred { descriptors, .. } => f
                .debug_struct("Deferred")
                .field("descriptors", &descriptors.len())
                .finish_non_exhaustive(),
        }
    }
}

impl From<Vec<Arc<Table>>> for Repository {
    fn from(tables: Vec<Arc<Table>>) -> Repository {
        Repository::Eager(tables)
    }
}

/// Assembly knobs shared by every data source.
#[derive(Debug, Clone)]
pub struct AssembleOptions {
    /// Join-path enumeration limits.
    pub path: PathConfig,
    /// Cap on generated candidates.
    pub max_candidates: usize,
    /// Rows sampled for profile estimation (paper: 100).
    pub profile_sample: usize,
    /// Seed for profile sampling.
    pub seed: u64,
}

impl Default for AssembleOptions {
    fn default() -> Self {
        AssembleOptions {
            path: PathConfig::default(),
            max_candidates: 100_000,
            profile_sample: 100,
            seed: 0,
        }
    }
}

/// A data source with everything materialized for searching: the input
/// dataset, candidate augmentations, their profile vectors, a materializer
/// over the repository, and the downstream task. One type serves both the
/// synthetic-scenario and on-disk-lake worlds.
pub struct Prepared {
    /// The input dataset `Din`.
    pub din: Table,
    /// Index of the target column in `din`, if supervised.
    pub target_column: Option<usize>,
    /// Candidate augmentations.
    pub candidates: Vec<Candidate>,
    /// Profile vectors per candidate.
    pub profiles: Vec<Vec<f64>>,
    /// Profile names.
    pub profile_names: Vec<String>,
    /// Materializer over the repository tables.
    pub materializer: Materializer,
    /// The instantiated downstream task.
    pub task: Box<dyn Task>,
    /// Planted relevance per candidate, when the source carries ground
    /// truth (synthetic scenarios) — used by Fig. 8's "queries to ground
    /// truth" metric. `None` for real lakes.
    pub relevance: Option<Vec<f64>>,
    /// Worker threads for batched query execution (1 = sequential);
    /// forwarded into [`SearchInputs::threads`]. Never changes results.
    pub threads: usize,
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("din", &self.din.name)
            .field("target_column", &self.target_column)
            .field("candidates", &self.candidates.len())
            .field("profile_names", &self.profile_names)
            .field("task", &self.task.name())
            .field("relevance", &self.relevance.is_some())
            .finish_non_exhaustive()
    }
}

impl Prepared {
    /// Borrow as the search-input bundle every method consumes.
    pub fn inputs(&self) -> SearchInputs<'_> {
        SearchInputs {
            din: &self.din,
            target_column: self.target_column,
            candidates: &self.candidates,
            profiles: &self.profiles,
            profile_names: &self.profile_names,
            materializer: &self.materializer,
            task: self.task.as_ref(),
            threads: self.threads,
        }
    }
}

/// Assemble search inputs from a resolved input dataset and repository:
/// index the tables, enumerate candidates, evaluate profiles, bundle the
/// task. This is the single assembly path behind `metam::session::Session`
/// and the deprecated `prepare*` free functions.
///
/// The repository is either eager tables (a `Vec<Arc<Table>>` converts
/// implicitly) or a [`Repository::Deferred`] descriptor set whose index is
/// built without touching payloads — candidate generation is identical in
/// both cases, only *when* table data loads differs.
pub fn assemble(
    din: Table,
    repository: impl Into<Repository>,
    target_column: Option<usize>,
    task: Box<dyn Task>,
    profile_set: &ProfileSet,
    options: &AssembleOptions,
) -> Prepared {
    let repository = repository.into();
    let (index, materializer) = {
        let mut span = metam_obs::span("prepare.index", &din.name);
        span.field("tables", repository.len() as f64);
        match repository {
            Repository::Eager(tables) => (
                DiscoveryIndex::build(tables.clone()),
                Materializer::new(tables),
            ),
            Repository::Deferred {
                descriptors,
                provider,
            } => {
                span.field("deferred", 1.0);
                (
                    DiscoveryIndex::from_catalog(descriptors),
                    Materializer::lazy(provider),
                )
            }
        }
    };
    let candidates = {
        let mut span = metam_obs::span("prepare.candidates", &din.name);
        let candidates = generate_candidates(&din, &index, &options.path, options.max_candidates);
        span.field("candidates", candidates.len() as f64);
        candidates
    };
    let profiles = {
        let mut span = metam_obs::span("prepare.profiles", &din.name);
        span.field("candidates", candidates.len() as f64);
        profile_set.evaluate_all(
            &din,
            target_column,
            &candidates,
            &materializer,
            options.profile_sample,
            options.seed,
        )
    };
    let profile_names = profile_set.names().into_iter().map(String::from).collect();
    Prepared {
        din,
        target_column,
        candidates,
        profiles,
        profile_names,
        materializer,
        task,
        relevance: None,
        threads: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::LinearSyntheticTask;
    use metam_profile::default_profiles;
    use metam_table::Column;

    #[test]
    fn assemble_aligns_candidates_and_profiles() {
        let n = 30;
        let din = Table::from_columns(
            "din",
            vec![
                Column::from_strings(
                    Some("zip".into()),
                    (0..n).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_floats(Some("y".into()), (0..n).map(|i| Some(i as f64)).collect()),
            ],
        )
        .unwrap();
        let ext = Table::from_columns(
            "ext",
            vec![
                Column::from_strings(
                    Some("zipcode".into()),
                    (0..n).map(|i| Some(format!("z{i}"))).collect(),
                ),
                Column::from_floats(
                    Some("v".into()),
                    (0..n).map(|i| Some(i as f64 * 2.0)).collect(),
                ),
            ],
        )
        .unwrap();
        let task = Box::new(LinearSyntheticTask {
            base: 0.5,
            weights: vec![0.1],
        });
        let prepared = assemble(
            din,
            vec![Arc::new(ext)],
            Some(1),
            task,
            &default_profiles(),
            &AssembleOptions::default(),
        );
        assert!(!prepared.candidates.is_empty());
        assert_eq!(prepared.candidates.len(), prepared.profiles.len());
        assert_eq!(prepared.profile_names.len(), 5);
        assert!(prepared.relevance.is_none());
        let inputs = prepared.inputs();
        assert_eq!(inputs.target_column, Some(1));
        assert_eq!(inputs.candidates.len(), prepared.candidates.len());
    }
}
