//! CLUSTER-PARTITION (paper Algorithm 2): greedy k-center ε-cover.
//!
//! Gonzalez's farthest-point heuristic, run until every candidate lies
//! within L∞ distance ε of its center. Lemma 2 bounds the number of centers
//! by O(1/ε^l); the benches verify the linear-in-n runtime claim of Fig. 6.

use metam_profile::linf_distance;

/// A partition of candidates into ε-radius clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Candidate index of each cluster's center, in creation order.
    pub centers: Vec<usize>,
    /// `assignment[i]` = cluster index of candidate `i`.
    pub assignment: Vec<usize>,
    /// Members per cluster (sorted).
    pub clusters: Vec<Vec<usize>>,
    /// Distance of each candidate to its center.
    pub distances: Vec<f64>,
}

impl Clustering {
    /// Number of clusters (`|C|`).
    pub fn len(&self) -> usize {
        self.centers.len()
    }

    /// `true` when there are no clusters (no candidates).
    pub fn is_empty(&self) -> bool {
        self.centers.is_empty()
    }

    /// Cluster index of a candidate.
    pub fn cluster_of(&self, candidate: usize) -> usize {
        self.assignment[candidate]
    }

    /// Achieved radius (max distance of any candidate to its center).
    pub fn radius(&self) -> f64 {
        self.distances.iter().copied().fold(0.0, f64::max)
    }

    /// Degenerate clustering with every candidate its own cluster (the `Nc`
    /// ablation variant / the fallback when homogeneity fails).
    pub fn singletons(n: usize) -> Clustering {
        Clustering {
            centers: (0..n).collect(),
            assignment: (0..n).collect(),
            clusters: (0..n).map(|i| vec![i]).collect(),
            distances: vec![0.0; n],
        }
    }
}

/// Greedy k-center until every point is within `epsilon` of a center.
///
/// The first center is the candidate with index `seed % n` ("choose
/// random" in the paper; we make the draw explicit and reproducible).
/// Subsequent centers are the farthest point from its center, ties broken
/// by the smallest index.
pub fn cluster_partition(profiles: &[Vec<f64>], epsilon: f64, seed: u64) -> Clustering {
    let n = profiles.len();
    if n == 0 {
        return Clustering {
            centers: Vec::new(),
            assignment: Vec::new(),
            clusters: Vec::new(),
            distances: Vec::new(),
        };
    }
    let first = (seed % n as u64) as usize;
    let mut centers = vec![first];
    let mut assignment = vec![0usize; n];
    let mut distances: Vec<f64> = profiles
        .iter()
        .map(|p| linf_distance(p, &profiles[first]))
        .collect();

    loop {
        // Farthest candidate from its center.
        let (far_idx, far_dist) = distances.iter().copied().enumerate().fold(
            (0usize, f64::NEG_INFINITY),
            |(bi, bd), (i, d)| {
                if d > bd {
                    (i, d)
                } else {
                    (bi, bd)
                }
            },
        );
        if far_dist <= epsilon {
            break;
        }
        let new_center = centers.len();
        centers.push(far_idx);
        // Reassign: only points closer to the new center move.
        for i in 0..n {
            let d = linf_distance(&profiles[i], &profiles[far_idx]);
            if d < distances[i] {
                distances[i] = d;
                assignment[i] = new_center;
            }
        }
    }

    let mut clusters = vec![Vec::new(); centers.len()];
    for (i, &c) in assignment.iter().enumerate() {
        clusters[c].push(i);
    }
    Clustering {
        centers,
        assignment,
        clusters,
        distances,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for i in 0..10 {
            v.push(vec![0.1 + (i as f64) * 0.002, 0.1]);
        }
        for i in 0..10 {
            v.push(vec![0.9 - (i as f64) * 0.002, 0.9]);
        }
        v
    }

    #[test]
    fn blobs_form_two_clusters() {
        let c = cluster_partition(&two_blobs(), 0.05, 0);
        assert_eq!(c.len(), 2);
        // Every member of each blob shares a cluster.
        let first = c.cluster_of(0);
        assert!((0..10).all(|i| c.cluster_of(i) == first));
        let second = c.cluster_of(10);
        assert!((10..20).all(|i| c.cluster_of(i) == second));
        assert_ne!(first, second);
    }

    #[test]
    fn radius_respects_epsilon() {
        let c = cluster_partition(&two_blobs(), 0.05, 3);
        assert!(c.radius() <= 0.05 + 1e-12);
    }

    #[test]
    fn epsilon_zero_gives_singletons_for_distinct_points() {
        let profiles: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 / 10.0]).collect();
        let c = cluster_partition(&profiles, 0.0, 1);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn huge_epsilon_gives_one_cluster() {
        let c = cluster_partition(&two_blobs(), 2.0, 1);
        assert_eq!(c.len(), 1);
        assert_eq!(c.clusters[0].len(), 20);
    }

    #[test]
    fn clusters_partition_the_candidates() {
        let c = cluster_partition(&two_blobs(), 0.05, 7);
        let mut all: Vec<usize> = c.clusters.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_given_seed() {
        let p = two_blobs();
        assert_eq!(
            cluster_partition(&p, 0.05, 9),
            cluster_partition(&p, 0.05, 9)
        );
    }

    #[test]
    fn singletons_helper() {
        let c = Clustering::singletons(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.cluster_of(2), 2);
        assert_eq!(c.radius(), 0.0);
    }

    #[test]
    fn empty_input_is_safe() {
        let c = cluster_partition(&[], 0.1, 0);
        assert!(c.is_empty());
    }
}
