#![forbid(unsafe_code)]
//! # metam-core
//!
//! The paper's contribution: **goal-oriented data discovery**. Given an
//! input dataset `Din`, a black-box task with a utility function
//! `u(·) ∈ [0, 1]`, and a set of candidate augmentations discovered from a
//! repository, Metam adaptively *queries* the task with augmented versions
//! of `Din` to find a minimal augmentation set reaching utility `θ`
//! (Problem II.1).
//!
//! Layout:
//!
//! * [`task`] — the [`Task`] trait (the paper's black-box contract) plus
//!   synthetic tasks used in tests and scalability benches (including the
//!   set-cover gadget from Theorem 1),
//! * [`engine`] — the [`QueryEngine`]: memoized utility evaluation, query
//!   accounting, budget enforcement, monotonicity certification (P3), and
//!   the utility-vs-queries trace behind every figure,
//! * [`cluster`] — Algorithm 2, the greedy k-center ε-cover over profile
//!   vectors (P2),
//! * [`quality`] — quality scores: ridge-learned profile weights (Lemma 4)
//!   plus cluster-propagated utility scores,
//! * [`bandit`] — Thompson sampling over clusters,
//! * [`group`] — the group-querying mechanism with escalating subset size
//!   `t` (P1, combinatorial testing),
//! * [`metam`] — Algorithm 1 itself,
//! * [`observer`] — the [`RunObserver`] streaming hook (per-round progress
//!   callbacks for CLIs and benches),
//! * [`prepared`] — the unified [`Prepared`] bundle + [`assemble`], the one
//!   assembly path every data source (synthetic scenario, CSV lake) uses,
//! * [`minimal`] — the minimality post-check (Definition 6),
//! * [`baselines`] — Uniform, Overlap, MW, iARDA and Join-Everything,
//! * [`runner`] — a uniform interface running any method to a trace,
//! * [`trace`] — trace points and curve resampling shared by the bench
//!   harness.

#![warn(missing_docs)]

pub mod bandit;
pub mod baselines;
pub mod cluster;
pub mod engine;
pub mod group;
pub mod metam;
pub mod minimal;
pub mod observer;
pub mod prepared;
pub mod quality;
pub mod runner;
pub mod task;
pub mod trace;

pub use cluster::{cluster_partition, Clustering};
pub use engine::{QueryEngine, SearchInputs, StopSearch};
pub use metam::{Metam, MetamConfig, MetamResult, StopReason};
pub use observer::{NoopObserver, QueryEvent, QueryKind, RoundEvent, RunObserver};
pub use prepared::{assemble, AssembleOptions, Prepared, Repository};
pub use runner::{run_method, run_method_with_observer, Method, RunResult};
pub use task::Task;
pub use trace::{utility_at, TracePoint};
