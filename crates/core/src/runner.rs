//! A uniform interface over Metam and the baselines — the bench harness
//! runs every figure through this.

use metam_discovery::CandidateId;

use crate::baselines;
use crate::engine::SearchInputs;
use crate::metam::{Metam, MetamConfig};
use crate::observer::{NoopObserver, RunObserver};
use crate::trace::TracePoint;

/// A method the harness can run.
#[derive(Debug, Clone)]
pub enum Method {
    /// Metam with a full configuration.
    Metam(MetamConfig),
    /// Uniform random querying.
    Uniform {
        /// Shuffle seed.
        seed: u64,
    },
    /// Overlap-ranked querying.
    Overlap,
    /// Multiplicative weights over profile experts.
    Mw {
        /// Expert-draw seed.
        seed: u64,
    },
    /// iARDA ranking (needs `SearchInputs::target_column`).
    IArda {
        /// Whether the downstream task is classification.
        classification: bool,
        /// Scoring seed.
        seed: u64,
    },
    /// Join everything, query once.
    JoinAll,
}

impl Method {
    /// Display name used in figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Metam(_) => "Metam",
            Method::Uniform { .. } => "Uniform",
            Method::Overlap => "Overlap",
            Method::Mw { .. } => "MW",
            Method::IArda { .. } => "iARDA",
            Method::JoinAll => "JoinAll",
        }
    }
}

/// Outcome of one run of any method.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Method display name.
    pub method: String,
    /// Selected augmentation ids (ascending).
    pub selected: Vec<CandidateId>,
    /// Final solution utility.
    pub utility: f64,
    /// Utility of the bare `Din`.
    pub base_utility: f64,
    /// Queries spent.
    pub queries: usize,
    /// Best-utility trace.
    pub trace: Vec<TracePoint>,
}

/// Run `method` with the given θ and query budget.
pub fn run_method(
    method: &Method,
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
) -> RunResult {
    run_method_with_observer(method, inputs, theta, max_queries, &mut NoopObserver)
}

/// [`run_method`] with streaming callbacks: every method (Metam and all
/// baselines) raises per-query [`QueryEvent`](crate::observer::QueryEvent)s
/// through the shared engine, plus `on_search_start`/`on_finish`.
/// Observation is passive — results are identical to [`run_method`].
pub fn run_method_with_observer(
    method: &Method,
    inputs: &SearchInputs<'_>,
    theta: Option<f64>,
    max_queries: usize,
    observer: &mut dyn RunObserver,
) -> RunResult {
    match method {
        Method::Metam(config) => {
            let mut cfg = config.clone();
            cfg.theta = theta;
            cfg.max_queries = max_queries;
            let r = Metam::new(cfg).run_with_observer(inputs, observer);
            RunResult {
                method: "Metam".to_string(),
                selected: r.selected,
                utility: r.utility,
                base_utility: r.base_utility,
                queries: r.queries,
                trace: r.trace,
            }
        }
        Method::Uniform { seed } => {
            baselines::run_uniform_with_observer(inputs, theta, max_queries, *seed, observer)
        }
        Method::Overlap => {
            baselines::run_overlap_with_observer(inputs, theta, max_queries, observer)
        }
        Method::Mw { seed } => {
            baselines::run_mw_with_observer(inputs, theta, max_queries, *seed, observer)
        }
        Method::IArda {
            classification,
            seed,
        } => baselines::run_iarda_with_observer(
            inputs,
            theta,
            max_queries,
            *classification,
            *seed,
            observer,
        ),
        Method::JoinAll => baselines::run_join_all_with_observer(inputs, max_queries, observer),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::test_fixtures::fixture;
    use crate::task::LinearSyntheticTask;

    #[test]
    fn all_methods_run_and_respect_budget() {
        let (din, candidates, mat) = fixture(8);
        let mut weights = vec![0.0; candidates.len()];
        weights[3] = 0.4;
        let task = LinearSyntheticTask { base: 0.3, weights };
        let profiles = vec![vec![0.5, 0.2]; candidates.len()];
        let names = vec!["overlap".to_string(), "corr".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: Some(1),
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let methods = [
            Method::Metam(MetamConfig::default()),
            Method::Uniform { seed: 1 },
            Method::Overlap,
            Method::Mw { seed: 1 },
            Method::IArda {
                classification: false,
                seed: 1,
            },
            Method::JoinAll,
        ];
        for m in &methods {
            let r = run_method(m, &inputs, Some(0.65), 60);
            assert!(r.queries <= 60, "{} overspent: {}", r.method, r.queries);
            assert!(r.utility >= r.base_utility - 1e-9 || m.name() == "JoinAll");
            assert!(!r.trace.is_empty(), "{} must record a trace", r.method);
        }
    }

    #[test]
    fn metam_beats_uniform_on_needle_in_haystack() {
        let (din, candidates, mat) = fixture(30);
        let n = candidates.len();
        // One needle; profiles point at it (correlation-like signal).
        let mut weights = vec![0.0; n];
        weights[17] = 0.5;
        let task = LinearSyntheticTask {
            base: 0.3,
            weights: weights.clone(),
        };
        let profiles: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![if i == 17 {
                    0.95
                } else {
                    (i % 10) as f64 / 30.0
                }]
            })
            .collect();
        let names = vec!["corr".to_string()];
        let inputs = SearchInputs {
            din: &din,
            target_column: Some(1),
            candidates: &candidates,
            profiles: &profiles,
            profile_names: &names,
            materializer: &mat,
            task: &task,
            threads: 1,
        };
        let metam = run_method(
            &Method::Metam(MetamConfig {
                seed: 5,
                ..Default::default()
            }),
            &inputs,
            Some(0.75),
            200,
        );
        let uniform = run_method(&Method::Uniform { seed: 5 }, &inputs, Some(0.75), 200);
        assert!(metam.utility >= 0.75);
        assert!(
            metam.queries <= uniform.queries,
            "metam {} vs uniform {}",
            metam.queries,
            uniform.queries
        );
    }
}
